#![warn(missing_docs)]

//! # MAD: Memory-Aware Design Techniques for Accelerating FHE
//!
//! Umbrella crate for the MICRO '23 reproduction. Re-exports the five
//! component crates:
//!
//! - [`math`] (`fhe-math`): modular arithmetic, NTT, RNS, canonical-
//!   embedding FFT.
//! - [`scheme`] (`ckks`): the functional RNS-CKKS library with hybrid key
//!   switching, hoisting, and bootstrapping.
//! - [`sim`] (`simfhe`): the SimFHE cost model, MAD optimizations,
//!   hardware designs, throughput metric and parameter search.
//! - [`apps`] (`fhe-apps`): HELR logistic regression and ResNet-20
//!   workloads.
//! - [`program`] (`fhe-program`): the encrypted-program IR executor and
//!   workload library (the IR itself lives in [`sim`]'s `program`
//!   module).
//! - [`serve`] (`fhe-serve`): the multi-tenant serving runtime with its
//!   byte-budgeted switching-key cache.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Example
//!
//! ```
//! // How much DRAM does one bootstrap move, before and after MAD?
//! use mad::sim::{CostModel, MadConfig, SchemeParams};
//! let before = CostModel::new(SchemeParams::baseline(), MadConfig::baseline()).bootstrap();
//! let after = CostModel::new(SchemeParams::mad_practical(), MadConfig::all()).bootstrap();
//! assert!(after.cost.dram_total() < before.cost.dram_total() / 2);
//! ```

pub use ckks as scheme;
pub use fhe_apps as apps;
pub use fhe_math as math;
pub use fhe_program as program;
pub use fhe_serve as serve;
pub use simfhe as sim;
