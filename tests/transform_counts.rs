//! Cross-validation of the SimFHE cost model against the functional
//! library: the number of whole-limb NTT/iNTT transforms the model
//! charges for `ModUp`, `ModDown`, `Rescale` and `KeySwitch` must equal
//! the number the real implementation executes (counted by
//! `fhe_math::ntt::counters`).
//!
//! This binary runs in its own process (Cargo integration test), so the
//! process-global counters see only this file's work; the tests
//! themselves run serially via a mutex.

use mad::math::ntt::counters;
use mad::math::poly::rescale as poly_rescale;
use mad::scheme::keyswitch::{decompose_and_raise, keyswitch};
use mad::scheme::{CkksContext, CkksParams, Encoder, Encryptor, KeyGenerator};
use mad::sim::{CostModel, MadConfig, SchemeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, OnceLock};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("serial lock")
}

// L = 5, dnum = 3 makes the simulator's α = ⌈(L+1)/dnum⌉ and the
// functional library's α = ⌈L/dnum⌉ coincide (both 2), so the
// transform-count formulas are directly comparable.
const LEVELS: usize = 5;
const DNUM: usize = 3;

fn ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(6)
            .levels(LEVELS)
            .scale_bits(30)
            .first_modulus_bits(36)
            .special_modulus_bits(32)
            .dnum(DNUM)
            .build()
            .unwrap(),
    )
}

fn sim_model() -> CostModel {
    CostModel::new(
        SchemeParams {
            log_n: 6,
            log_q: 30,
            limbs: LEVELS,
            dnum: DNUM,
            fft_iter: 1,
        },
        MadConfig::baseline(),
    )
}

/// Builds a fresh ciphertext at `ell` limbs with everything precomputed,
/// returning (context, ciphertext, keygen artifacts) without counting the
/// setup's NTTs.
fn fresh_ciphertext(
    ell: usize,
) -> (
    Arc<CkksContext>,
    mad::scheme::Ciphertext,
    mad::scheme::RelinKey,
) {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(9001);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let values: Vec<mad::math::cfft::Complex> = (0..encoder.slots())
        .map(|i| mad::math::cfft::Complex::new(0.01 * i as f64, 0.0))
        .collect();
    let pt = encoder.encode(&values, ell, ctx.params().scale()).unwrap();
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
    (ctx, ct, rlk)
}

#[test]
fn mod_up_transform_counts_match_model() {
    let _guard = serial();
    for ell in [3usize, 4, 5] {
        let (ctx, ct, _) = fresh_ciphertext(ell);
        let model = sim_model();
        counters::reset();
        let digits = decompose_and_raise(&ctx, ct.c1());
        let fwd = counters::forward_count();
        let inv = counters::inverse_count();
        // Expected: per functional digit j, the model's ModUp transforms
        // with that digit's actual width.
        let (mut want_fwd, mut want_inv) = (0u64, 0u64);
        for j in 0..digits.len() {
            let width = ctx.digit_range(ell, j).len();
            let (f, i) = model.mod_up_transforms(ell, width);
            want_fwd += f;
            want_inv += i;
        }
        assert_eq!(fwd, want_fwd, "forward NTTs at ℓ = {ell}");
        assert_eq!(inv, want_inv, "inverse NTTs at ℓ = {ell}");
    }
}

#[test]
fn full_keyswitch_transform_counts_match_model() {
    let _guard = serial();
    for ell in [2usize, 4, 5] {
        let (ctx, ct, rlk) = fresh_ciphertext(ell);
        let model = sim_model();
        counters::reset();
        let _ = keyswitch(&ctx, ct.c1(), rlk.switching_key());
        let fwd = counters::forward_count();
        let inv = counters::inverse_count();
        let k = ctx.p_basis().len();
        let beta = ctx.params().beta_at(ell);
        let (mut want_fwd, mut want_inv) = (0u64, 0u64);
        for j in 0..beta {
            let width = ctx.digit_range(ell, j).len();
            let (f, i) = model.mod_up_transforms(ell, width);
            want_fwd += f;
            want_inv += i;
        }
        // Two ModDowns dropping the k special limbs each.
        let (f, i) = model.mod_down_transforms(ell, k);
        want_fwd += 2 * f;
        want_inv += 2 * i;
        assert_eq!(fwd, want_fwd, "forward NTTs at ℓ = {ell}");
        assert_eq!(inv, want_inv, "inverse NTTs at ℓ = {ell}");
    }
}

#[test]
fn rescale_transform_counts_match_model() {
    let _guard = serial();
    let ell = 5;
    let (_ctx, ct, _) = fresh_ciphertext(ell);
    let model = sim_model();
    counters::reset();
    let _ = poly_rescale(ct.c0());
    let _ = poly_rescale(ct.c1());
    let (want_fwd, want_inv) = model.rescale_transforms(ell);
    assert_eq!(counters::forward_count(), want_fwd);
    assert_eq!(counters::inverse_count(), want_inv);
}

#[test]
fn counters_reset_cleanly() {
    let _guard = serial();
    counters::reset();
    assert_eq!(counters::forward_count(), 0);
    assert_eq!(counters::inverse_count(), 0);
}
