//! The paper's headline claims, asserted against the reproduction.
//!
//! Each test cites the claim it checks; tolerances reflect that we rebuilt
//! the simulator from the paper's description rather than its code (see
//! EXPERIMENTS.md for the full paper-vs-measured record).

use mad::sim::throughput::{run_mad_bootstrap, PublishedDesign};
use mad::sim::{AlgoOpts, CachingLevel, CostModel, HardwareConfig, MadConfig, SchemeParams};

fn baseline_model() -> CostModel {
    CostModel::new(
        SchemeParams::baseline(),
        MadConfig {
            caching: CachingLevel::OneLimb,
            algo: AlgoOpts {
                modup_hoist: true,
                ..AlgoOpts::none()
            },
        },
    )
}

#[test]
fn claim_all_primitives_have_low_arithmetic_intensity() {
    // Abstract / §2.3: "all FHE operations exhibit low arithmetic
    // intensity (<1 Op/byte)" for small caches — for the Table-2 API ops.
    let m = baseline_model();
    let ops = [
        m.pt_add(35),
        m.add(35),
        m.pt_mult(35),
        m.mult(35),
        m.rotate(35),
        m.bootstrap().cost,
    ];
    for c in ops {
        assert!(
            c.arithmetic_intensity() < 1.0,
            "AI {} not < 1",
            c.arithmetic_intensity()
        );
    }
}

#[test]
fn claim_bootstrapping_is_memory_bound_on_all_published_designs() {
    // §1/§5: prior compute-accelerated implementations are bottlenecked by
    // main-memory bandwidth (before MAD, at small caches).
    let b = baseline_model().bootstrap();
    for hw in HardwareConfig::all_designs() {
        let small = hw.with_cache_mb(6.0);
        assert!(
            small.is_memory_bound(&b.cost),
            "{} should be memory-bound pre-MAD",
            hw.name
        );
    }
}

#[test]
fn claim_caching_opts_reduce_dram_without_touching_compute() {
    // §3.1: "the number of compute operations remains constant, but we
    // reduce the number of DRAM transfers".
    let base = baseline_model().bootstrap();
    let cached = CostModel::new(
        SchemeParams::baseline(),
        MadConfig {
            caching: CachingLevel::LimbReorder,
            algo: AlgoOpts {
                modup_hoist: true,
                ..AlgoOpts::none()
            },
        },
    )
    .bootstrap();
    assert_eq!(base.cost.ops(), cached.cost.ops());
    let reduction = 1.0 - cached.cost.dram_total() as f64 / base.cost.dram_total() as f64;
    assert!(
        reduction > 0.25,
        "caching should cut total DRAM substantially (got {:.0}%)",
        reduction * 100.0
    );
}

#[test]
fn claim_mad_improves_bootstrapping_ai_by_large_factor() {
    // Abstract: "improves bootstrapping arithmetic intensity by 3×".
    // Our stricter cache accounting reproduces ~2× (EXPERIMENTS.md).
    let before = baseline_model().bootstrap().cost.arithmetic_intensity();
    let after = CostModel::new(SchemeParams::mad_practical(), MadConfig::all())
        .bootstrap()
        .cost
        .arithmetic_intensity();
    assert!(
        (0.6..0.9).contains(&before),
        "baseline AI {before:.2} (paper: 0.72)"
    );
    assert!(
        after / before > 1.7,
        "AI gain {:.2}x (paper: 3x)",
        after / before
    );
}

#[test]
fn claim_gpu_gains_large_bootstrapping_speedup_from_mad() {
    // Table 6: GPU + MAD ≈ 7× higher bootstrapping throughput. We
    // reproduce ≥ 3× under a single consistent model.
    let gpu = PublishedDesign::table6()[0];
    let run = run_mad_bootstrap(
        SchemeParams::mad_practical(),
        &HardwareConfig::gpu().with_cache_mb(32.0),
    );
    let gain = run.throughput_display / gpu.throughput_display();
    assert!(gain > 3.0, "GPU MAD gain {gain:.1}x (paper: ~7x)");
}

#[test]
fn claim_large_cache_asics_lose_throughput_at_32mb() {
    // Table 6: applying MAD at 32 MB on BTS/ARK/CraterLake yields *lower*
    // throughput than their original 256–512 MB designs — the win is the
    // 8–16× smaller (cheaper) on-chip memory, not raw speed.
    let designs = [
        (PublishedDesign::table6()[2], HardwareConfig::bts()),
        (PublishedDesign::table6()[3], HardwareConfig::ark()),
        (PublishedDesign::table6()[4], HardwareConfig::craterlake()),
    ];
    for (published, hw) in designs {
        let run = run_mad_bootstrap(SchemeParams::mad_practical(), &hw.with_cache_mb(32.0));
        assert!(
            run.throughput_display < published.throughput_display(),
            "{}: MAD at 32 MB should not beat the 256-512 MB original",
            hw.name
        );
    }
}

#[test]
fn claim_asics_become_compute_bound_under_mad() {
    // §4.2: "after applying our MAD optimizations these three designs
    // become compute-bound, and cannot take advantage of the large
    // on-chip memory".
    let b = CostModel::new(SchemeParams::mad_practical(), MadConfig::all()).bootstrap();
    for hw in [HardwareConfig::bts(), HardwareConfig::craterlake()] {
        let hw32 = hw.with_cache_mb(32.0);
        assert!(
            !hw32.is_memory_bound(&b.cost),
            "{} should be compute-bound under MAD",
            hw.name
        );
    }
}

#[test]
fn claim_moddown_reduction_helps_despite_lower_ai() {
    // §2.3: ModDown merge/hoisting *decrease* arithmetic intensity while
    // still improving performance, because they remove O(N log N) NTTs.
    let caching = CachingLevel::LimbReorder;
    let without = CostModel::new(
        SchemeParams::mad_practical(),
        MadConfig {
            caching,
            algo: AlgoOpts {
                modup_hoist: true,
                moddown_merge: true,
                ..AlgoOpts::none()
            },
        },
    )
    .bootstrap();
    let with = CostModel::new(
        SchemeParams::mad_practical(),
        MadConfig {
            caching,
            algo: AlgoOpts {
                modup_hoist: true,
                moddown_merge: true,
                moddown_hoist: true,
                ..AlgoOpts::none()
            },
        },
    )
    .bootstrap();
    // AI drops (key reads rise faster than compute falls) …
    assert!(with.cost.arithmetic_intensity() < without.cost.arithmetic_intensity());
    // … but compute-bound performance improves.
    assert!(with.cost.ops() < without.cost.ops());
}

#[test]
fn claim_level_budget_matches_table6_log_q1() {
    // Table 6: log Q1 = 1080 for the GPU baseline, 950 for MAD.
    let base = CostModel::new(SchemeParams::baseline(), MadConfig::baseline()).bootstrap();
    assert_eq!(base.log_q1, 1080);
    let mad = CostModel::new(SchemeParams::mad_optimal(), MadConfig::all()).bootstrap();
    assert_eq!(mad.log_q1, 950);
}

#[test]
fn claim_no_benefit_beyond_32mb() {
    // §4.2: "any increase in the on-chip memory beyond 32 MB does not
    // improve the bootstrapping throughput."
    let at = |mb: f64| {
        run_mad_bootstrap(
            SchemeParams::mad_practical(),
            &HardwareConfig::gpu().with_cache_mb(mb),
        )
        .runtime_ms
    };
    let t32 = at(32.0);
    for mb in [64.0, 256.0, 512.0] {
        assert!(
            (at(mb) / t32 - 1.0).abs() < 1e-9,
            "cache {mb} MB changed the runtime"
        );
    }
    // While below 32 MB, performance degrades.
    assert!(at(4.0) > t32);
}
