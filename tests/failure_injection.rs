//! Failure injection: corrupted ciphertexts, mismatched keys, and abused
//! APIs must fail loudly (detectable garbage or a documented panic), never
//! silently return plausible-but-wrong results.

use mad::math::cfft::Complex;
use mad::math::poly::RnsPoly;
use mad::scheme::noise;
use mad::scheme::{
    Ciphertext, CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(6)
            .levels(3)
            .scale_bits(32)
            .first_modulus_bits(40)
            .dnum(3)
            .build()
            .unwrap(),
    )
}

fn setup(
    seed: u64,
) -> (
    Arc<CkksContext>,
    Encoder,
    Encryptor,
    Decryptor,
    KeyGenerator,
    StdRng,
) {
    let c = ctx();
    (
        c.clone(),
        Encoder::new(c.clone()),
        Encryptor::new(c.clone()),
        Decryptor::new(c.clone()),
        KeyGenerator::new(c),
        StdRng::seed_from_u64(seed),
    )
}

fn encrypt_ones(
    ctx: &Arc<CkksContext>,
    encoder: &Encoder,
    encryptor: &Encryptor,
    sk: &mad::scheme::SecretKey,
    rng: &mut StdRng,
) -> (Ciphertext, Vec<Complex>) {
    let values = vec![Complex::new(1.0, 0.0); encoder.slots()];
    let pt = encoder.encode(&values, 2, ctx.params().scale()).unwrap();
    (encryptor.encrypt_symmetric(rng, &pt, sk), values)
}

/// Flips one residue in one limb of `c0` — a single-bit-style DRAM fault.
fn corrupt(ct: &Ciphertext) -> Ciphertext {
    let mut c0 = ct.c0().clone();
    let q0 = c0.basis().modulus(0).value();
    let limb = c0.limb_mut(0);
    limb[7] = (limb[7] + q0 / 3) % q0;
    Ciphertext::new(c0, ct.c1().clone(), ct.scale())
}

#[test]
fn single_limb_corruption_is_loud() {
    let (ctx, encoder, encryptor, _dec, keygen, mut rng) = setup(1);
    let sk = keygen.secret_key(&mut rng);
    let (ct, values) = encrypt_ones(&ctx, &encoder, &encryptor, &sk, &mut rng);
    let healthy = noise::measure(&ct, &sk, &values, &encoder);
    let corrupted = noise::measure(&corrupt(&ct), &sk, &values, &encoder);
    // An evaluation-domain fault smears across every slot: error explodes
    // by tens of bits — unmistakable, not a subtle bias.
    assert!(healthy.log2_slot_error < -20.0);
    assert!(
        corrupted.log2_slot_error > healthy.log2_slot_error + 15.0,
        "corruption must be detectable: {} vs {}",
        corrupted.log2_slot_error,
        healthy.log2_slot_error
    );
}

#[test]
fn decrypting_with_the_wrong_key_yields_garbage() {
    let (ctx, encoder, encryptor, decryptor, keygen, mut rng) = setup(2);
    let sk = keygen.secret_key(&mut rng);
    let wrong = keygen.secret_key(&mut rng);
    let (ct, values) = encrypt_ones(&ctx, &encoder, &encryptor, &sk, &mut rng);
    let out = encoder.decode(&decryptor.decrypt(&ct, &wrong));
    // RLWE security in miniature: the wrong key decodes to noise of
    // magnitude ~q/Δ, nowhere near the message.
    let max_dev = out
        .iter()
        .zip(&values)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_dev > 10.0, "wrong key looked plausible: {max_dev}");
}

#[test]
fn relinearizing_with_a_rotation_key_yields_garbage() {
    // Using the wrong switching key is a type-level hazard the API cannot
    // prevent (both are SwitchingKeys); verify it cannot silently pass.
    let (ctx, encoder, encryptor, decryptor, keygen, mut rng) = setup(3);
    let sk = keygen.secret_key(&mut rng);
    let (ct, values) = encrypt_ones(&ctx, &encoder, &encryptor, &sk, &mut rng);
    let rotation_key = keygen.galois_key(&mut rng, &sk, ctx.rotation_element(1));
    let ev = Evaluator::new(ctx.clone());
    // Key-switch c1 with a key for σ_5(s) instead of s².
    let (v, u) = mad::scheme::keyswitch::keyswitch(&ctx, ct.c1(), &rotation_key);
    let mut c0 = ct.c0().clone();
    c0.add_assign(&v);
    let bogus = Ciphertext::new(c0, u, ct.scale());
    let out = encoder.decode(&decryptor.decrypt(&bogus, &sk));
    let max_dev = out
        .iter()
        .zip(&values)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_dev > 1.0, "wrong switching key looked plausible");
    let _ = ev;
}

#[test]
#[should_panic(expected = "limb count mismatch")]
fn mismatched_limb_counts_panic_not_corrupt() {
    let (ctx, encoder, encryptor, _dec, keygen, mut rng) = setup(4);
    let sk = keygen.secret_key(&mut rng);
    let values = vec![Complex::new(1.0, 0.0); 4];
    let scale = ctx.params().scale();
    let a = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&values, 3, scale).unwrap(), &sk);
    let b = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&values, 1, scale).unwrap(), &sk);
    // Bypass the Evaluator's alignment on purpose: raw polynomial add must
    // refuse rather than read out of bounds or truncate.
    let mut c0 = a.c0().clone();
    c0.add_assign(b.c0());
}

#[test]
#[should_panic(expected = "unreduced")]
fn unreduced_residues_are_rejected_in_debug() {
    // from_flat validates residues in debug builds.
    let c = ctx();
    let basis = c.level_basis(1).clone();
    let bad = vec![u64::MAX; 64];
    let _ = RnsPoly::from_flat(basis, bad, mad::math::poly::Representation::Coefficient);
}
