//! Determinism and randomization guarantees: seeded runs reproduce
//! bit-exactly (keys, ciphertexts, serialized bytes, simulator outputs),
//! while distinct seeds produce distinct randomness.

use mad::scheme::serialize::serialize_ciphertext;
use mad::scheme::{CkksContext, CkksParams, Encoder, Encryptor, KeyGenerator};
use mad::sim::search::{search, SearchSpace};
use mad::sim::{CostModel, HardwareConfig, MadConfig, SchemeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(2)
            .scale_bits(30)
            .first_modulus_bits(36)
            .dnum(2)
            .build()
            .unwrap(),
    )
}

fn encrypt_with_seed(seed: u64) -> Vec<u8> {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(seed);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let pt = encoder
        .encode(
            &[mad::math::cfft::Complex::new(0.5, 0.5)],
            2,
            ctx.params().scale(),
        )
        .unwrap();
    serialize_ciphertext(&encryptor.encrypt_symmetric(&mut rng, &pt, &sk))
}

#[test]
fn same_seed_reproduces_ciphertexts_bit_exactly() {
    assert_eq!(encrypt_with_seed(42), encrypt_with_seed(42));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(encrypt_with_seed(1), encrypt_with_seed(2));
}

#[test]
fn context_construction_is_deterministic() {
    // Prime generation searches downward deterministically.
    let a = ctx();
    let b = ctx();
    for (ma, mb) in a.full_basis().moduli().iter().zip(b.full_basis().moduli()) {
        assert_eq!(ma.value(), mb.value());
    }
}

#[test]
fn simulator_is_a_pure_function() {
    let run = || {
        let m = CostModel::new(SchemeParams::mad_practical(), MadConfig::all());
        let b = m.bootstrap();
        (b.cost.ops(), b.cost.dram_total(), b.orientation_switches)
    };
    assert_eq!(run(), run());
}

#[test]
fn search_order_is_stable() {
    let space = SearchSpace {
        log_q: vec![50, 54],
        limbs: vec![34, 40],
        dnum: vec![2, 3],
        fft_iter: vec![3, 6],
        ..SearchSpace::default()
    };
    let hw = HardwareConfig::gpu().with_cache_mb(32.0);
    let first: Vec<_> = search(&space, &hw).iter().map(|r| r.run.params).collect();
    let second: Vec<_> = search(&space, &hw).iter().map(|r| r.run.params).collect();
    assert_eq!(first, second);
}
