//! Cross-crate integration: the functional scheme, the applications and
//! the simulator working together through the umbrella crate.

use mad::apps::{synthetic_mnist_like, HelrShape, PlainLr};
use mad::math::cfft::Complex;
use mad::scheme::{
    CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator,
};
use mad::sim::hardware::HardwareConfig;
use mad::sim::{CostModel, MadConfig, SchemeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn functional_pipeline_through_umbrella_reexports() {
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(7)
            .levels(4)
            .scale_bits(36)
            .first_modulus_bits(44)
            .dnum(2)
            .build()
            .unwrap(),
    );
    let mut rng = StdRng::seed_from_u64(500);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());

    let xs: Vec<Complex> = (0..encoder.slots())
        .map(|i| Complex::new(0.02 * i as f64 - 0.5, 0.0))
        .collect();
    let pt = encoder.encode(&xs, 4, ctx.params().scale()).unwrap();
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
    // p(x) = (x² + x) computed homomorphically two ways must agree.
    let sq_std = evaluator.mul(&ct, &ct, &rlk);
    let sq_mrg = evaluator.mul_merged(&ct, &ct, &rlk);
    for sq in [sq_std, sq_mrg] {
        let sum = evaluator.add(&sq, &evaluator.drop_to(&ct, sq.limb_count()));
        let out = encoder.decode(&decryptor.decrypt(&sum, &sk));
        for (i, (o, x)) in out.iter().zip(&xs).enumerate() {
            let want = x.re * x.re + x.re;
            assert!((o.re - want).abs() < 1e-3, "slot {i}: {} vs {want}", o.re);
        }
    }
}

#[test]
fn simulated_helr_improves_under_mad_on_every_design() {
    // Crosses fhe-apps (schedule) and simfhe (cost + hardware): MAD must
    // reduce HELR training time on each memory-bound design.
    let shape = HelrShape::default();
    let base_w = mad::apps::helr_workload(&SchemeParams::baseline(), shape);
    let mad_w = mad::apps::helr_workload(&SchemeParams::mad_practical(), shape);
    let base_cost =
        CostModel::new(SchemeParams::baseline(), MadConfig::baseline()).workload_cost(&base_w);
    let mad_cost =
        CostModel::new(SchemeParams::mad_practical(), MadConfig::all()).workload_cost(&mad_w);
    for hw in [HardwareConfig::gpu(), HardwareConfig::f1()] {
        let hw32 = hw.with_cache_mb(32.0);
        let before = hw32.runtime_seconds(&base_cost);
        let after = hw32.runtime_seconds(&mad_cost);
        assert!(
            after < before,
            "{}: MAD must speed up HELR ({before:.3}s -> {after:.3}s)",
            hw.name
        );
    }
}

#[test]
fn plaintext_reference_learns_what_the_schedule_models() {
    // The workload's iteration count and the plaintext trainer line up:
    // running the reference for the scheduled iteration count converges.
    let mut rng = StdRng::seed_from_u64(321);
    let data = synthetic_mnist_like(&mut rng, 256, 24);
    let shape = HelrShape {
        iterations: 30,
        features: 24,
        batch: 256,
    };
    let w = mad::apps::helr_workload(&SchemeParams::baseline(), shape);
    assert!(w.op_count() > 0);
    let mut model = PlainLr::new(24, 1.0);
    for _ in 0..shape.iterations {
        model.step(&data);
    }
    assert!(model.accuracy(&data) > 0.85);
}

#[test]
fn simulator_and_functional_library_agree_on_structure() {
    // The simulator's per-level digit count β matches the functional
    // library's decomposition for the same shape parameters.
    let params = CkksParams::builder()
        .log_degree(6)
        .levels(6)
        .scale_bits(30)
        .first_modulus_bits(36)
        .dnum(3)
        .build()
        .unwrap();
    let ctx = CkksContext::new(params);
    let sim_params = SchemeParams {
        log_n: 6,
        log_q: 30,
        limbs: 6,
        dnum: 3,
        fft_iter: 1,
    };
    for ell in 1..=6usize {
        let functional_beta = ctx.params().beta_at(ell);
        // The simulator uses the paper's ⌈(ℓ+1)/α⌉ convention (it counts
        // the raised limb); the functional library splits exactly ℓ limbs.
        // Both must never exceed dnum and must cover all limbs.
        assert!(functional_beta <= 3);
        assert!(sim_params.beta_at(ell) <= 3);
        let covered: usize = (0..functional_beta)
            .map(|j| ctx.digit_range(ell, j).len())
            .sum();
        assert_eq!(covered, ell, "digits must tile ℓ = {ell}");
    }
}

#[test]
fn mad_reduces_dram_for_every_primitive_at_scale() {
    let base = CostModel::new(SchemeParams::baseline(), MadConfig::baseline());
    let mad = CostModel::new(SchemeParams::baseline(), MadConfig::all());
    for ell in [10usize, 20, 35] {
        assert!(mad.mult(ell).dram_total() <= base.mult(ell).dram_total());
        assert!(mad.rotate(ell).dram_total() <= base.rotate(ell).dram_total());
        assert!(mad.rescale(ell).dram_total() <= base.rescale(ell).dram_total());
    }
}
