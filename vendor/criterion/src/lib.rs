//! Minimal offline drop-in for the subset of `criterion 0.5` this workspace
//! uses: `Criterion::bench_function`, benchmark groups with
//! `bench_with_input`/`throughput`, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId`, `Throughput`, `BatchSize`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is a deliberately simple warmup-then-measure loop reporting
//! mean ns/iter (plus derived throughput) on stdout. There is no statistical
//! analysis, plotting, or HTML report; the numbers are for relative
//! comparisons inside one run — exactly how this repo's BENCH jobs use them.
//!
//! Two environment variables adapt the harness to CI:
//!
//! - `CRITERION_QUICK=1` shrinks the per-benchmark time budgets ~10× —
//!   smoke-test mode, checking that every benchmark runs rather than
//!   producing stable numbers.
//! - `CRITERION_JSON=<path>` appends one JSON object per benchmark
//!   (`{"name", "mean_ns", "iters", "throughput"?}`, JSON-lines format)
//!   to `<path>`, for machine-readable artifacts.

use std::fmt::Display;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark time budgets (kept small: CI runs every bench). The
/// quick mode cuts them ~10× for smoke runs.
fn budgets() -> (Duration, Duration) {
    static QUICK: OnceLock<bool> = OnceLock::new();
    let quick = *QUICK
        .get_or_init(|| std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0"));
    if quick {
        (Duration::from_millis(8), Duration::from_millis(40))
    } else {
        (Duration::from_millis(80), Duration::from_millis(400))
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            mean_ns: f64::NAN,
            iters: 0,
        }
    }

    /// Times `routine` in a tight loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let (warmup, measure) = budgets();
        // Warmup and per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warmup || warm_iters < 3 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let target = (measure.as_nanos() as f64 / per_iter.max(1.0)) as u64;
        let iters = target.clamp(3, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let (warmup, measure) = budgets();
        // Warmup: one timed probe to size the measurement loop.
        let mut probe_total = Duration::ZERO;
        let mut warm_iters = 0u64;
        while probe_total < warmup || warm_iters < 3 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            probe_total += start.elapsed();
            warm_iters += 1;
            if warm_iters >= 100_000 {
                break;
            }
        }
        let per_iter = probe_total.as_nanos() as f64 / warm_iters as f64;
        let target = (measure.as_nanos() as f64 / per_iter.max(1.0)) as u64;
        let iters = target.clamp(3, 1_000_000);

        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// How `iter_batched` amortizes setup; ignored by this stub (inputs are
/// always per-iteration), kept for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

fn report(name: &str, mean_ns: f64, iters: u64, throughput: Option<Throughput>) {
    let time = if mean_ns >= 1e9 {
        format!("{:.4} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.4} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.4} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.2} ns")
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            format!("  thrpt: {:.3} Melem/s", rate / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            format!("  thrpt: {:.3} MiB/s", rate / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<56} time: {time:>12}  ({iters} iters){extra}");
    write_json_record(name, mean_ns, iters, throughput);
}

/// Appends one JSON-lines record to `$CRITERION_JSON`, if set. Failures
/// are reported once and never abort the benchmark run.
fn write_json_record(name: &str, mean_ns: f64, iters: u64, throughput: Option<Throughput>) {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    let Some(path) = PATH.get_or_init(|| {
        std::env::var("CRITERION_JSON")
            .ok()
            .filter(|p| !p.is_empty())
    }) else {
        return;
    };
    // Benchmark names come from source literals; escape defensively anyway.
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => " ".chars().collect(),
            c => vec![c],
        })
        .collect();
    let throughput_field = match throughput {
        Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
        Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
        None => String::new(),
    };
    let line = format!(
        "{{\"name\":\"{escaped}\",\"mean_ns\":{mean_ns:.2},\"iters\":{iters}{throughput_field}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        static WARNED: OnceLock<()> = OnceLock::new();
        WARNED.get_or_init(|| eprintln!("criterion: cannot write CRITERION_JSON={path}: {e}"));
    }
}

/// Top-level benchmark registry/driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honor `cargo bench -- <filter>` the way criterion does: any
        // non-flag argument filters benchmark names by substring.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.enabled(name) {
            let mut b = Bencher::new();
            f(&mut b);
            report(name, b.mean_ns, b.iters, None);
        }
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        if self.criterion.enabled(&full) {
            let mut b = Bencher::new();
            f(&mut b);
            report(&full, b.mean_ns, b.iters, self.throughput);
        }
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.enabled(&full) {
            let mut b = Bencher::new();
            f(&mut b, input);
            report(&full, b.mean_ns, b.iters, self.throughput);
        }
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s in group bench calls.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
