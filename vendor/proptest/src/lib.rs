//! Minimal offline drop-in for the subset of `proptest 1.x` this workspace
//! uses.
//!
//! Supports the `proptest!` macro with optional `#![proptest_config(...)]`,
//! `arg in strategy` bindings, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, `any::<T>()`, range strategies, tuples, `Just`,
//! `prop_map`, `prop_oneof!`, `prop::collection::vec`, and
//! `prop::sample::select`.
//!
//! Shrinking is intentionally not implemented: on failure the macro panics
//! with the generating seed and case index so a failure is reproducible by
//! rerunning the same test binary. That trade keeps the vendored crate tiny
//! while preserving the property-testing workflow.

pub mod strategy;
pub mod test_runner;

pub mod prop {
    pub mod collection {
        pub use crate::strategy::collection::vec;
    }
    pub mod sample {
        pub use crate::strategy::sample::select;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The macro heart of the crate: expands each property into a `#[test]`
/// running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    // With a config attribute.
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng| {
                        $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), rng);)*
                        #[allow(unreachable_code, unused_mut, clippy::redundant_closure_call)]
                        let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                            (move || {
                                $body
                                ::core::result::Result::Ok(())
                            })();
                        outcome
                    },
                );
            }
        )*
    };
    // Without a config attribute: use the default.
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)*), left, right),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_and_tuples(x in 0u64..100, (a, b) in (0i64..10, -2.0f64..2.0)) {
            prop_assert!(x < 100);
            prop_assert!((0..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
        }

        fn assume_filters_cases(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        fn mapped_and_boxed(v in prop::collection::vec(1u64..5, 4),
                            pick in prop::sample::select(vec![10usize, 20, 30]),
                            w in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
            prop_assert!(pick % 10 == 0, "pick {} not a multiple of ten", pick);
            prop_assert!(w == 1 || w == 2);
        }

        fn any_values(x in any::<u64>(), flag in any::<bool>()) {
            let _ = x.wrapping_add(flag as u64);
        }
    }

    proptest! {
        fn default_config_runs(x in 0usize..4) {
            prop_assert!(x < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[should_panic(expected = "minimal failing input")]
        fn failures_panic_with_context(x in 0u64..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
