//! Case execution: config, RNG, and the pass/reject/fail loop.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration; only `cases` is consulted by this stub.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per property.
    pub cases: u32,
    /// Upper bound on rejected cases before the runner gives up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met (`prop_assume!`); try another.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG handed to strategies. Wraps the vendored `StdRng` so strategy
/// code is insulated from the generator choice.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    fn for_case(test_name: &str, case: u64) -> Self {
        // Deterministic per (test, case): failures reproduce on rerun
        // without any persistence file.
        let mut seed = 0xcbf29ce484222325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        seed ^= case.wrapping_mul(0x9e3779b97f4a7c15);
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Access the underlying generator (used by strategy implementations).
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Drives one property: generates cases until `config.cases` succeed, a
/// case fails (panic with context), or the reject budget is exhausted.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case_fn: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::for_case(test_name, case_index);
        match case_fn(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many rejected cases ({rejected}); \
                         weaken prop_assume! or widen the strategy"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                // No shrinking in this stub: report the case index as the
                // "minimal failing input" handle; reruns are deterministic.
                panic!(
                    "{test_name}: property failed at case {case_index} \
                     (deterministic; rerun reproduces it). \
                     minimal failing input: case #{case_index}\n{msg}"
                );
            }
        }
        case_index += 1;
    }
}
