//! Value-generation strategies.
//!
//! A [`Strategy`] produces one value per test case from the runner's RNG.
//! Unlike upstream proptest there is no value tree / shrinking; failures
//! report the seed instead.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values for property tests.
pub trait Strategy {
    type Value;

    /// Generates one value for a test case.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.inner().gen_range(0..self.options.len());
        self.options[idx].gen_value(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                // Mix edge values in: property tests should regularly see
                // the boundaries even without shrinking.
                match rng.inner().gen_range(0u32..16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => 1,
                    _ => rng.inner().gen::<u64>() as $t,
                }
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                match rng.inner().gen_range(0u32..16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => -1,
                    _ => rng.inner().gen::<u64>() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.inner().gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        match rng.inner().gen_range(0u32..16) {
            0 => 0.0,
            1 => 1.0,
            2 => -1.0,
            _ => {
                let unit: f64 = rng.inner().gen();
                (unit - 0.5) * 2e6
            }
        }
    }
}

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        match rng.inner().gen_range(0u32..16) {
            0 => 0,
            1 => u128::MAX,
            _ => rng.inner().gen::<u128>(),
        }
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// `any::<T>()` — the canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

pub mod collection {
    use super::*;

    /// Length specifications accepted by [`vec()`]: a fixed length or a range.
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.inner().gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::*;

    /// Strategy selecting uniformly from a fixed set of values.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.inner().gen_range(0..self.options.len());
            self.options[idx].clone()
        }
    }

    /// `prop::sample::select(values)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires a non-empty set");
        Select { options }
    }
}
