//! Concrete generators: `StdRng` (xoshiro256++) and the splitmix64 seeder.

use crate::{RngCore, SeedableRng};

/// Splitmix64 — used to expand small seeds into full generator state.
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        Self { state }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// The workspace's standard generator: xoshiro256++.
///
/// Not the upstream `rand::rngs::StdRng` algorithm (ChaCha12); streams are
/// only stable within this vendored implementation, which is all the
/// workspace relies on (seed → stream determinism inside one build).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro must not start from the all-zero state; remix through
        // splitmix64 keyed on a constant so `[0u8; 32]` still works.
        if s == [0; 4] {
            let mut sm = SplitMix64::new(0x853c49e6748fea9b);
            for word in &mut s {
                *word = sm.next();
            }
        }
        Self { s }
    }
}
