//! Distributions: `Standard`, `Uniform`, and the range-sampling machinery
//! behind `Rng::gen_range`.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution for a type: full range for integers, `[0, 1)`
/// for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                // Keep the high bits: xoshiro's low bits are its weakest.
                (rng.next_u64() >> (64 - <$t>::BITS.min(64))) as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Distribution<[u8; N]> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

pub mod uniform {
    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be drawn uniformly from a range.
    pub trait SampleUniform: PartialOrd + Copy {
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    macro_rules! uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: low >= high");
                    let span = (high as u64).wrapping_sub(low as u64);
                    // Widening-multiply rejection-free range reduction
                    // (Lemire); bias is < 2^-64 per draw.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    low + hi as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "gen_range: low > high");
                    if low as u64 == 0 && high as u64 == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    Self::sample_half_open(rng, low, high + 1)
                }
            }
        )*};
    }

    uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: low >= high");
                    let span = (high as i64).wrapping_sub(low as i64) as u64;
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    ((low as i64).wrapping_add(hi as i64)) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "gen_range: low > high");
                    if low as i64 == i64::MIN && high as i64 == i64::MAX {
                        return rng.next_u64() as i64 as $t;
                    }
                    Self::sample_half_open(rng, low, high + 1)
                }
            }
        )*};
    }

    uniform_int!(i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($t:ty, $bits:expr);*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: low >= high");
                    let unit = (rng.next_u64() >> (64 - $bits)) as $t
                        * (1.0 / (1u64 << $bits) as $t);
                    // unit ∈ [0, 1), so the result stays < high.
                    low + (high - low) * unit
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "gen_range: low > high");
                    let unit = (rng.next_u64() >> (64 - $bits)) as $t
                        / ((1u64 << $bits) - 1) as $t;
                    low + (high - low) * unit
                }
            }
        )*};
    }

    uniform_float!(f64, 53; f32, 24);

    /// Ranges accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }
}

/// Uniform distribution over `[low, high)`, pre-constructed once and sampled
/// many times (matches the upstream `Uniform::new` contract).
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: uniform::SampleUniform> Uniform<T> {
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new called with low >= high");
        Self { low, high }
    }

    pub fn new_inclusive(low: T, high: T) -> UniformInclusive<T> {
        assert!(low <= high, "Uniform::new_inclusive called with low > high");
        UniformInclusive { low, high }
    }
}

impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.low, self.high)
    }
}

/// Inclusive-range companion to [`Uniform`].
#[derive(Clone, Copy, Debug)]
pub struct UniformInclusive<T> {
    low: T,
    high: T,
}

impl<T: uniform::SampleUniform> Distribution<T> for UniformInclusive<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.low, self.high)
    }
}
