//! Minimal offline drop-in for the subset of `rand 0.8` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` API it actually calls:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::sample`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`distributions::Uniform`]. The generator behind
//! `StdRng` is xoshiro256++ (seeded via splitmix64), which is more than
//! adequate for the statistical and determinism tests in this repo. Streams
//! are *not* bit-compatible with upstream `rand`; nothing in the workspace
//! persists or compares streams across library versions, only across runs
//! of the same build.

pub mod distributions;
pub mod rngs;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// Core source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators; mirrors the upstream trait shape.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience constructor mirroring `rand::thread_rng` determinism caveats:
/// this offline stub derives its state from the system clock, which is all
/// the workspace needs (no cryptographic use; keys in tests use seeded rngs).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e3779b97f4a7c15);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let _ = a.next_u32();
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..17usize);
            assert!(y < 17);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn uniform_distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let die = Uniform::new(0u8, 3);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[die.sample(&mut rng) as usize] += 1;
        }
        for c in counts {
            assert!(c > 800, "uniform u8 draw badly skewed: {counts:?}");
        }
    }

    #[test]
    fn standard_draws_have_expected_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        let _: bool = rng.gen();
        let _: u8 = rng.gen();
        let _: u64 = rng.gen();
        let arr: [u8; 32] = rng.gen();
        assert_eq!(arr.len(), 32);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn from_seed_differs_by_seed() {
        let mut a = StdRng::from_seed([1u8; 32]);
        let mut b = StdRng::from_seed([2u8; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
