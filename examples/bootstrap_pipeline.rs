//! The CKKS bootstrapping pipeline, stage by stage — functionally at demo
//! scale, and under the SimFHE cost model at the paper's scale.
//!
//! Run with: `cargo run --release --example bootstrap_pipeline`

use mad::math::cfft::Complex;
use mad::scheme::bootstrap::{BootstrapConfig, Bootstrapper};
use mad::scheme::{
    CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator,
};
use mad::sim::{CostModel, MadConfig, SchemeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Functional bootstrap at demo scale --------------------------
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(26)
            .scale_bits(34)
            .first_modulus_bits(39)
            .special_modulus_bits(38)
            .dnum(4)
            .build()
            .expect("valid parameters"),
    );
    let mut rng = StdRng::seed_from_u64(11);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key_sparse(&mut rng, 8);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());

    let config = BootstrapConfig {
        fft_iters: 2,
        eval_mod_degree: 119,
        k_range: 9.0,
    };
    println!(
        "bootstrapper: fftIter={}, sine degree {}, K={}",
        config.fft_iters, config.eval_mod_degree, config.k_range
    );
    let bootstrapper = Bootstrapper::new(ctx.clone(), config);
    let gk = keygen.galois_keys(&mut rng, &sk, &bootstrapper.required_rotations(), true);

    let values: Vec<Complex> = (0..encoder.slots())
        .map(|i| Complex::new(0.5 * (i as f64 * 0.4).sin(), 0.3 * (i as f64 * 0.2).cos()))
        .collect();
    let pt = encoder
        .encode(&values, 1, ctx.params().scale())
        .expect("encodes");
    let exhausted = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
    println!(
        "input ciphertext: {} limb (exhausted)",
        exhausted.limb_count()
    );

    // Stage by stage, watching the limb budget.
    let raised = bootstrapper.mod_raise(&exhausted);
    println!("after ModRaise:    {} limbs", raised.limb_count());
    let slotted = bootstrapper.coeff_to_slot(&evaluator, &encoder, &raised, &gk);
    println!("after CoeffToSlot: {} limbs", slotted.limb_count());

    let refreshed = bootstrapper.bootstrap(&evaluator, &encoder, &exhausted, &gk, &rlk);
    println!("after full bootstrap: {} limbs", refreshed.limb_count());

    let back = encoder.decode(&decryptor.decrypt(&refreshed, &sk));
    let max_err = back
        .iter()
        .zip(&values)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max);
    println!("message preserved, max slot error {max_err:.4} ✓");
    assert!(max_err < 0.05);

    // --- Cost of the same pipeline at N = 2^17 ------------------------
    println!("\nSimFHE at the paper's scale:");
    for (label, params, config) in [
        (
            "baseline [20]",
            SchemeParams::baseline(),
            MadConfig::baseline(),
        ),
        (
            "with MAD      ",
            SchemeParams::mad_practical(),
            MadConfig::all(),
        ),
    ] {
        let b = CostModel::new(params, config).bootstrap();
        println!(
            "  {label}: {:6.1} Gops, {:6.1} GB DRAM, AI {:.2}, {} orientation switches, log Q1 = {}",
            b.cost.ops() as f64 / 1e9,
            b.cost.dram_total() as f64 / 1e9,
            b.cost.arithmetic_intensity(),
            b.orientation_switches,
            b.log_q1,
        );
    }

    // Per-phase breakdown under MAD: where the remaining traffic lives.
    use mad::sim::bootstrap::BootstrapPhase;
    let b = CostModel::new(SchemeParams::mad_practical(), MadConfig::all()).bootstrap();
    println!("\nMAD bootstrap by phase (DRAM share):");
    for (phase, c) in BootstrapPhase::ALL.iter().zip(&b.phases) {
        println!(
            "  {:>12}: {:5.1} GB ({:4.1}%)",
            phase.name(),
            c.dram_total() as f64 / 1e9,
            100.0 * c.dram_total() as f64 / b.cost.dram_total() as f64,
        );
    }
}
