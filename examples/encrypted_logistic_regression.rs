//! Logistic-regression training on encrypted data — a functional,
//! miniature version of the paper's HELR workload (Figure 6a–e).
//!
//! The server holds encrypted features, encrypted labels and encrypted
//! weights; every gradient step happens under encryption (the step itself
//! is `mad::apps::encrypted_lr_step`, the same routine the serving
//! runtime executes as its HELR job). After two steps the decrypted
//! weights are checked against a plaintext run of the identical
//! algorithm, and the simulator reports what full-scale HELR training
//! would cost with and without the MAD optimizations.
//!
//! Run with: `cargo run --release --example encrypted_logistic_regression`

use mad::apps::{encrypted_lr_step, lr_fold_steps, plain_lr_step, synthetic_mnist_like};
use mad::math::cfft::Complex;
use mad::scheme::{
    Ciphertext, CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator,
};
use mad::sim::hardware::HardwareConfig;
use mad::sim::{CostModel, MadConfig, SchemeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FEATURES: usize = 4;
const ITERATIONS: usize = 2;
const LEARNING_RATE: f64 = 1.0;

fn main() {
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(6)
            .levels(15)
            .scale_bits(30)
            .first_modulus_bits(40)
            .special_modulus_bits(34)
            .dnum(5)
            .build()
            .expect("valid parameters"),
    );
    let slots = ctx.params().slots();
    let mut rng = StdRng::seed_from_u64(77);
    let data = synthetic_mnist_like(&mut rng, slots, FEATURES);

    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let gk = keygen.galois_keys(&mut rng, &sk, &lr_fold_steps(slots), false);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());

    // Pack: xs[d] = feature d across the batch, y01 = labels as 0/1.
    let levels = ctx.params().levels();
    let scale = ctx.params().scale();
    let columns: Vec<Vec<f64>> = (0..FEATURES)
        .map(|d| data.features.iter().map(|row| row[d]).collect())
        .collect();
    let y01: Vec<f64> = data.labels.iter().map(|&l| (l + 1.0) / 2.0).collect();
    let encrypt_vec = |v: &[f64], rng: &mut StdRng| {
        let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let pt = encoder.encode(&cv, levels, scale).expect("encodes");
        encryptor.encrypt_symmetric(rng, &pt, &sk)
    };
    let xs: Vec<Ciphertext> = columns.iter().map(|c| encrypt_vec(c, &mut rng)).collect();
    let y_ct = encrypt_vec(&y01, &mut rng);
    let mut weights: Vec<Ciphertext> = (0..FEATURES)
        .map(|_| encrypt_vec(&vec![0.0; slots], &mut rng))
        .collect();
    let mut plain_weights = vec![0.0f64; FEATURES];

    println!("training {ITERATIONS} encrypted iterations on {slots} samples × {FEATURES} features");
    for it in 0..ITERATIONS {
        encrypted_lr_step(
            &evaluator,
            rlk.switching_key(),
            &gk,
            &mut weights,
            &xs,
            &y_ct,
            slots,
            LEARNING_RATE,
        );
        plain_lr_step(&mut plain_weights, &columns, &y01, LEARNING_RATE);
        println!(
            "  iteration {} done (weights at {} limbs)",
            it + 1,
            weights[0].limb_count()
        );
    }

    // Decrypt and compare to the plaintext run of the same algorithm.
    let decrypted: Vec<f64> = weights
        .iter()
        .map(|w| encoder.decode(&decryptor.decrypt(w, &sk))[0].re)
        .collect();
    println!("encrypted weights: {decrypted:?}");
    println!("plaintext weights: {plain_weights:?}");
    for (d, (e, p)) in decrypted.iter().zip(&plain_weights).enumerate() {
        assert!((e - p).abs() < 5e-2, "weight {d}: {e} vs {p}");
    }
    let acc = {
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(x, &y)| {
                let z: f64 = x.iter().zip(&decrypted).map(|(a, b)| a * b).sum();
                (z >= 0.0) == (y > 0.0)
            })
            .count();
        correct as f64 / slots as f64
    };
    println!("accuracy with decrypted weights: {:.1}% ✓", acc * 100.0);
    assert!(acc > 0.6, "training should beat chance");

    // --- What would full-scale HELR training cost? -------------------
    let shape = mad::apps::HelrShape::default();
    let gpu = HardwareConfig::gpu();
    for (label, params, config, cache) in [
        (
            "GPU-6 (original)",
            SchemeParams::baseline(),
            MadConfig::baseline(),
            6.0,
        ),
        (
            "GPU+MAD-32",
            SchemeParams::mad_practical(),
            MadConfig::all(),
            32.0,
        ),
    ] {
        let w = mad::apps::helr_workload(&params, shape);
        let cost = CostModel::new(params, config).workload_cost(&w);
        let hw = gpu.with_cache_mb(cache);
        println!(
            "{label}: {:.2} s for {} iterations ({} bootstraps), {}",
            hw.runtime_seconds(&cost),
            shape.iterations,
            w.bootstrap_count(),
            if hw.is_memory_bound(&cost) {
                "memory-bound"
            } else {
                "compute-bound"
            },
        );
    }
}
