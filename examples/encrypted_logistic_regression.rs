//! Logistic-regression training on encrypted data — a functional,
//! miniature version of the paper's HELR workload (Figure 6a–e).
//!
//! The server holds encrypted features, encrypted labels and encrypted
//! weights; every gradient step happens under encryption. After two
//! steps the decrypted weights are checked against a plaintext run of the
//! identical algorithm, and the simulator reports what full-scale HELR
//! training would cost with and without the MAD optimizations.
//!
//! Run with: `cargo run --release --example encrypted_logistic_regression`

use mad::apps::synthetic_mnist_like;
use mad::math::cfft::Complex;
use mad::scheme::{
    Ciphertext, CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, GaloisKeys,
    KeyGenerator, RelinKey,
};
use mad::sim::hardware::HardwareConfig;
use mad::sim::{CostModel, MadConfig, SchemeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FEATURES: usize = 4;
const ITERATIONS: usize = 2;
const LEARNING_RATE: f64 = 1.0;
// σ(x) ≈ C0 + C1·x + C3·x³ (HELR-style degree-3 approximation).
const C0: f64 = 0.5;
const C1: f64 = 0.197;
const C3: f64 = -0.004;

struct Machine {
    ctx: std::sync::Arc<CkksContext>,
    encoder: Encoder,
    evaluator: Evaluator,
    rlk: RelinKey,
    gk: GaloisKeys,
}

impl Machine {
    /// Mean over all slots via a rotate-and-add fold; the mean ends up
    /// replicated in every slot.
    fn slot_mean(&self, ct: &Ciphertext, slots: usize) -> Ciphertext {
        let mut acc = ct.clone();
        let mut step = 1i64;
        while (step as usize) < slots {
            let rotated = self.evaluator.rotate(&acc, step, &self.gk);
            acc = self.evaluator.add(&acc, &rotated);
            step *= 2;
        }
        let scaled = self.evaluator.mul_scalar_no_rescale(
            &acc,
            1.0 / slots as f64,
            self.ctx.params().scale(),
        );
        self.evaluator.rescale(&scaled)
    }

    /// One encrypted gradient-descent step. `xs[d]` holds feature `d` for
    /// every sample in the batch (one sample per slot); `y01` holds the
    /// 0/1 labels. Weights are replicated scalars, one ciphertext each.
    fn step(&self, weights: &mut [Ciphertext], xs: &[Ciphertext], y01: &Ciphertext, slots: usize) {
        let ev = &self.evaluator;
        let scale = self.ctx.params().scale();
        // z = Σ_d w_d ⊙ x_d
        let mut z: Option<Ciphertext> = None;
        for (w, x) in weights.iter().zip(xs) {
            let (wa, xa) = ev.align_levels(w, x);
            let term = ev.mul(&wa, &xa, &self.rlk);
            z = Some(match z {
                None => term,
                Some(a) => ev.add(&a, &term),
            });
        }
        let z = z.expect("at least one feature");
        // s = σ(z) = C0 + C1·z + C3·z³
        let z2 = ev.mul(&z, &z, &self.rlk);
        let (z2a, za) = ev.align_levels(&z2, &z);
        let z3 = ev.mul(&z2a, &za, &self.rlk);
        let c1z = ev.rescale(&ev.mul_scalar_no_rescale(&z, C1, scale));
        let c3z3 = ev.rescale(&ev.mul_scalar_no_rescale(&z3, C3, scale));
        let (a, b) = ev.align_levels(&c1z, &c3z3);
        let s = ev.add_scalar(&ev.add(&a, &b), C0);
        // r = s − y
        let (sa, ya) = ev.align_levels(&s, y01);
        let r = ev.sub(&sa, &ya);
        // Per-feature gradient and update.
        for (w, x) in weights.iter_mut().zip(xs) {
            let (ra, xa) = ev.align_levels(&r, x);
            let g = ev.mul(&ra, &xa, &self.rlk);
            let g_mean = self.slot_mean(&g, slots);
            let update = ev.rescale(&ev.mul_scalar_no_rescale(&g_mean, LEARNING_RATE, scale));
            let (wa, ua) = ev.align_levels(w, &update);
            *w = ev.sub(&wa, &ua);
        }
    }
}

/// The identical algorithm in the clear — the correctness reference.
fn plain_step(weights: &mut [f64], xs: &[Vec<f64>], y01: &[f64]) {
    let slots = y01.len();
    let z: Vec<f64> = (0..slots)
        .map(|b| (0..weights.len()).map(|d| weights[d] * xs[d][b]).sum())
        .collect();
    let s: Vec<f64> = z.iter().map(|&v| C0 + C1 * v + C3 * v * v * v).collect();
    for (d, w) in weights.iter_mut().enumerate() {
        let g: f64 = (0..slots).map(|b| (s[b] - y01[b]) * xs[d][b]).sum::<f64>() / slots as f64;
        *w -= LEARNING_RATE * g;
    }
}

fn main() {
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(6)
            .levels(15)
            .scale_bits(30)
            .first_modulus_bits(40)
            .special_modulus_bits(34)
            .dnum(5)
            .build()
            .expect("valid parameters"),
    );
    let slots = ctx.params().slots();
    let mut rng = StdRng::seed_from_u64(77);
    let data = synthetic_mnist_like(&mut rng, slots, FEATURES);

    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let fold_steps: Vec<i64> = (0..)
        .map(|i| 1i64 << i)
        .take_while(|&s| (s as usize) < slots)
        .collect();
    let gk = keygen.galois_keys(&mut rng, &sk, &fold_steps, false);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let machine = Machine {
        evaluator: Evaluator::new(ctx.clone()),
        encoder,
        rlk,
        gk,
        ctx: ctx.clone(),
    };

    // Pack: xs[d] = feature d across the batch, y01 = labels as 0/1.
    let levels = ctx.params().levels();
    let scale = ctx.params().scale();
    let columns: Vec<Vec<f64>> = (0..FEATURES)
        .map(|d| data.features.iter().map(|row| row[d]).collect())
        .collect();
    let y01: Vec<f64> = data.labels.iter().map(|&l| (l + 1.0) / 2.0).collect();
    let encrypt_vec = |v: &[f64], rng: &mut StdRng| {
        let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let pt = machine.encoder.encode(&cv, levels, scale).expect("encodes");
        encryptor.encrypt_symmetric(rng, &pt, &sk)
    };
    let xs: Vec<Ciphertext> = columns.iter().map(|c| encrypt_vec(c, &mut rng)).collect();
    let y_ct = encrypt_vec(&y01, &mut rng);
    let mut weights: Vec<Ciphertext> = (0..FEATURES)
        .map(|_| encrypt_vec(&vec![0.0; slots], &mut rng))
        .collect();
    let mut plain_weights = vec![0.0f64; FEATURES];

    println!("training {ITERATIONS} encrypted iterations on {slots} samples × {FEATURES} features");
    for it in 0..ITERATIONS {
        machine.step(&mut weights, &xs, &y_ct, slots);
        plain_step(&mut plain_weights, &columns, &y01);
        println!(
            "  iteration {} done (weights at {} limbs)",
            it + 1,
            weights[0].limb_count()
        );
    }

    // Decrypt and compare to the plaintext run of the same algorithm.
    let decrypted: Vec<f64> = weights
        .iter()
        .map(|w| machine.encoder.decode(&decryptor.decrypt(w, &sk))[0].re)
        .collect();
    println!("encrypted weights: {decrypted:?}");
    println!("plaintext weights: {plain_weights:?}");
    for (d, (e, p)) in decrypted.iter().zip(&plain_weights).enumerate() {
        assert!((e - p).abs() < 5e-2, "weight {d}: {e} vs {p}");
    }
    let acc = {
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(x, &y)| {
                let z: f64 = x.iter().zip(&decrypted).map(|(a, b)| a * b).sum();
                (z >= 0.0) == (y > 0.0)
            })
            .count();
        correct as f64 / slots as f64
    };
    println!("accuracy with decrypted weights: {:.1}% ✓", acc * 100.0);
    assert!(acc > 0.6, "training should beat chance");

    // --- What would full-scale HELR training cost? -------------------
    let shape = mad::apps::HelrShape::default();
    let gpu = HardwareConfig::gpu();
    for (label, params, config, cache) in [
        (
            "GPU-6 (original)",
            SchemeParams::baseline(),
            MadConfig::baseline(),
            6.0,
        ),
        (
            "GPU+MAD-32",
            SchemeParams::mad_practical(),
            MadConfig::all(),
            32.0,
        ),
    ] {
        let w = mad::apps::helr_workload(&params, shape);
        let cost = CostModel::new(params, config).workload_cost(&w);
        let hw = gpu.with_cache_mb(cache);
        println!(
            "{label}: {:.2} s for {} iterations ({} bootstraps), {}",
            hw.runtime_seconds(&cost),
            shape.iterations,
            w.bootstrap_count(),
            if hw.is_memory_bound(&cost) {
                "memory-bound"
            } else {
                "compute-bound"
            },
        );
    }
}
