//! Serving quickstart: start the multi-tenant evaluation server on a
//! loopback socket, connect two tenants that upload seeded-compressed
//! switching keys, evaluate remotely, and verify the results decrypt to
//! the expected values. Ends with the server's metrics dump, including
//! the key-cache counters that show the memory-aware trade in action,
//! and writes the request timelines to `serve-trace.json` (open it at
//! <https://ui.perfetto.dev>) plus the slow-request log to
//! `serve-slow.log`.
//!
//! Run with: `cargo run --example serve_quickstart`

use mad::math::cfft::Complex;
use mad::scheme::serialize::serialize_switching_key;
use mad::scheme::{
    CkksContext, CkksParams, Decryptor, Encoder, Encryptor, KeyGenerator, SecretKey,
};
use mad::serve::{Client, EvictionPolicy, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(6)
            .levels(6)
            .scale_bits(30)
            .first_modulus_bits(40)
            .dnum(3)
            .build()
            .expect("valid parameters"),
    );

    // A deliberately small key cache: enough for roughly three expanded
    // keys, while the two tenants below upload four between them. The
    // server evicts under pressure and regenerates evicted keys from
    // their 32-byte seeds on the next use — compute traded for memory.
    let probe = {
        let mut rng = StdRng::seed_from_u64(7);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key_compressed(&mut rng, &sk);
        let wire = serialize_switching_key(rlk.switching_key());
        mad::scheme::serialize::deserialize_switching_key(&ctx, &wire)
            .unwrap()
            .size_bytes()
    };
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 2,
            key_cache_budget: 3 * probe,
            eviction: EvictionPolicy::Lru,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    println!("server listening on {}", server.local_addr());

    let mut open_sessions = Vec::new();
    for tenant in 0u64..2 {
        let mut rng = StdRng::seed_from_u64(100 + tenant);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key_compressed(&mut rng, &sk);
        let gk = kg.galois_keys_compressed(&mut rng, &sk, &[1], false);

        let mut client = Client::connect(server.local_addr(), ctx.clone()).expect("connects");
        let sid = client.hello().expect("session");
        client
            .upload_relin(sid, rlk.switching_key())
            .expect("relin upload");
        client.upload_galois(sid, &gk).expect("galois upload");

        let (ct, sk_ref) = encrypt_ramp(&ctx, &sk, &mut rng);
        // (x + x)² rotated left by one, evaluated entirely server-side.
        let doubled = client.add(sid, &ct, &ct).expect("add");
        let squared = client.mult(sid, &doubled, &doubled).expect("mult");
        let rotated = client.rotate(sid, &squared, 1).expect("rotate");

        let decryptor = Decryptor::new(ctx.clone());
        let encoder = Encoder::new(ctx.clone());
        let out = encoder.decode(&decryptor.decrypt(&rotated, sk_ref));
        for (i, slot) in out.iter().enumerate().take(4) {
            let expect = (2.0 * (i + 1) as f64 * 0.1).powi(2);
            assert!(
                (slot.re - expect).abs() < 1e-3,
                "tenant {tenant} slot {i}: {} vs {expect}",
                slot.re
            );
        }
        println!("tenant {tenant}: remote (2x)^2 <<1 verified ✓");
        // Keep the session open so both tenants' keys compete for the
        // shared cache budget; closed sessions purge their keys.
        open_sessions.push((client, sid));
    }

    let stats = server.cache_stats();
    println!(
        "key cache: {} hits, {} misses, {} evictions, {} resident bytes",
        stats.hits, stats.misses, stats.evictions, stats.resident_bytes
    );
    for (mut client, sid) in open_sessions {
        client.close_session(sid).expect("close");
    }

    let mut client = Client::connect(server.local_addr(), ctx.clone()).expect("connects");
    let dump = client.metrics().expect("metrics");
    println!("\n--- server metrics ---\n{dump}");

    // Every request above was traced: export the timelines as Chrome
    // trace-event JSON (drop the file on https://ui.perfetto.dev) and
    // the structured slow-request log.
    let trace = client.trace_dump().expect("trace dump");
    std::fs::write("serve-trace.json", &trace).expect("write serve-trace.json");
    let slow = client.slow_log().expect("slow log");
    std::fs::write("serve-slow.log", &slow).expect("write serve-slow.log");
    println!(
        "wrote serve-trace.json ({} events) and serve-slow.log ({} slow requests)",
        trace.lines().filter(|l| l.contains("\"ph\"")).count(),
        slow.lines().count()
    );
    server.shutdown();
}

fn encrypt_ramp<'a>(
    ctx: &std::sync::Arc<CkksContext>,
    sk: &'a SecretKey,
    rng: &mut StdRng,
) -> (mad::scheme::Ciphertext, &'a SecretKey) {
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let values: Vec<Complex> = (0..ctx.params().slots())
        .map(|i| Complex::new(i as f64 * 0.1, 0.0))
        .collect();
    let pt = encoder
        .encode(&values, ctx.params().levels(), ctx.params().scale())
        .expect("encodes");
    (encryptor.encrypt_symmetric(rng, &pt, sk), sk)
}
