//! One ResNet-style convolution layer under encryption — the functional
//! counterpart of the `fhe-apps` ResNet-20 schedule (Figure 6f–h).
//!
//! A 1-D 3-tap convolution over a packed feature vector is expressed as a
//! `LinearTransform` (three nonzero diagonals, exactly how Lee et al. map
//! conv layers to rotations), applied homomorphically with the paper's
//! fully-hoisted `PtMatVecMult`, and checked against the plaintext result.
//!
//! Run with: `cargo run --release --example encrypted_convolution`

use mad::math::cfft::Complex;
use mad::scheme::hoisting::{apply_bsgs, apply_hoisted, bsgs_required_steps, LinearTransform};
use mad::scheme::{
    CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator,
};
use mad::sim::matvec::MatVecShape;
use mad::sim::{CostModel, MadConfig, SchemeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn main() {
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(7)
            .levels(4)
            .scale_bits(34)
            .first_modulus_bits(42)
            .special_modulus_bits(38)
            .dnum(2)
            .build()
            .expect("valid parameters"),
    );
    let mut rng = StdRng::seed_from_u64(31337);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());
    let slots = encoder.slots();

    // A 3-tap kernel [w₋₁, w₀, w₊₁] as a circulant linear transform:
    // y_j = w₀·x_j + w₊₁·x_{j+1} + w₋₁·x_{j-1}.
    let kernel = [-0.25f64, 0.5, 0.125];
    let mut diagonals = BTreeMap::new();
    diagonals.insert(0usize, vec![Complex::new(kernel[1], 0.0); slots]);
    diagonals.insert(1usize, vec![Complex::new(kernel[2], 0.0); slots]);
    diagonals.insert(slots - 1, vec![Complex::new(kernel[0], 0.0); slots]);
    let conv = LinearTransform::from_diagonals(diagonals, slots);

    // A synthetic feature map packed across the slots.
    let features: Vec<Complex> = (0..slots)
        .map(|i| Complex::new((i as f64 * 0.2).sin() * 0.8, 0.0))
        .collect();
    let expected = conv.apply_plain(&features);

    // Keys for every rotation either schedule needs.
    let mut steps: Vec<i64> = conv.offsets().iter().map(|&d| d as i64).collect();
    steps.extend(bsgs_required_steps(&conv, 2));
    let gk = keygen.galois_keys(&mut rng, &sk, &steps, false);

    let pt = encoder
        .encode(&features, 4, ctx.params().scale())
        .expect("encodes");
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);

    // Apply with the MAD fully-hoisted schedule and with BSGS; both must
    // agree with the plaintext convolution.
    for (name, out) in [
        (
            "hoisted",
            apply_hoisted(&evaluator, &encoder, &ct, &conv, &gk),
        ),
        ("bsgs", apply_bsgs(&evaluator, &encoder, &ct, &conv, &gk, 2)),
    ] {
        let got = encoder.decode(&decryptor.decrypt(&out, &sk));
        let max_err = got
            .iter()
            .zip(&expected)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        println!("{name:>8}: encrypted convolution max error {max_err:.2e} ✓");
        assert!(max_err < 1e-3, "{name} diverged");
    }

    // What one full ResNet-20 conv layer costs at scale, per the model.
    let layer_rot = mad::apps::resnet20_layers()[10].rotation_count();
    println!(
        "\nSimFHE: one ResNet-20 conv layer (32-ch stage, {layer_rot} rotations) at N = 2^17:"
    );
    for (label, config) in [
        ("baseline", MadConfig::baseline()),
        ("with MAD", MadConfig::all()),
    ] {
        let model = CostModel::new(SchemeParams::mad_practical(), config);
        let mv = model.pt_mat_vec_mult(MatVecShape {
            ell: 12,
            diagonals: layer_rot,
        });
        println!(
            "  {label}: {:.2} Gops, {:.2} GB DRAM, {} orientation switches",
            mv.cost.ops() as f64 / 1e9,
            mv.cost.dram_total() as f64 / 1e9,
            mv.orientation_switches,
        );
    }
}
