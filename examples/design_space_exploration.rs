//! Design-space exploration with SimFHE: the paper's §4.1 workflow.
//!
//! Sweeps the CKKS parameter space under a 128-bit security constraint,
//! ranks parameter sets by bootstrapping throughput (Eq. 3) for a 32 MB
//! on-chip memory, and then shows the roofline position of the winner on
//! each of the five accelerator designs of Table 6.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use mad::sim::hardware::HardwareConfig;
use mad::sim::report::Table;
use mad::sim::search::{search, SearchSpace};
use mad::sim::throughput::run_mad_bootstrap;

fn main() {
    let hw = HardwareConfig::gpu().with_cache_mb(32.0);
    let space = SearchSpace::default();
    println!(
        "sweeping {} candidates ({} valid after security/depth filters)…\n",
        space.candidate_count(),
        space.enumerate().len()
    );
    let results = search(&space, &hw);

    let mut top = Table::new(
        "Top parameter sets at 32 MB (GPU-class bandwidth)",
        &[
            "rank",
            "logq",
            "L",
            "dnum",
            "fftIter",
            "caching",
            "boot ms",
            "tput(10^7/s)",
        ],
    );
    for (i, r) in results.iter().take(8).enumerate() {
        let p = r.run.params;
        top.row(&[
            (i + 1).to_string(),
            p.log_q.to_string(),
            p.limbs.to_string(),
            p.dnum.to_string(),
            p.fft_iter.to_string(),
            r.run.config.caching.to_string(),
            format!("{:.1}", r.run.runtime_ms),
            format!("{:.0}", r.run.throughput_display),
        ]);
    }
    println!("{}", top.render());

    let best = results[0].run.params;
    let mut roofline = Table::new(
        "The winning parameter set across the Table-6 designs (32 MB)",
        &["design", "balance ops/B", "boot AI", "boot ms", "bound"],
    );
    for hw in HardwareConfig::all_designs() {
        let hw32 = hw.with_cache_mb(32.0);
        let run = run_mad_bootstrap(best, &hw32);
        roofline.row(&[
            hw.name.to_string(),
            format!("{:.2}", hw32.balance_point()),
            format!("{:.2}", run.bootstrap.cost.arithmetic_intensity()),
            format!("{:.1}", run.runtime_ms),
            if run.memory_bound {
                "memory"
            } else {
                "compute"
            }
            .to_string(),
        ]);
    }
    println!("{}", roofline.render());
    println!(
        "paper's Table-5 optimum for comparison: logq=50, L=40, dnum=2, fftIter=6 \
         (our stricter cache model pushes dnum up; see EXPERIMENTS.md)"
    );
}
