//! Quickstart: encrypt a vector, compute on it homomorphically, decrypt —
//! then ask the SimFHE cost model what the same operations would cost at
//! the paper's full-scale parameters.
//!
//! Run with: `cargo run --example quickstart`

use mad::math::cfft::Complex;
use mad::scheme::{
    CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator,
};
use mad::sim::{CostModel, MadConfig, SchemeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Functional CKKS at demo scale -------------------------------
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(11)
            .levels(4)
            .scale_bits(40)
            .first_modulus_bits(50)
            .dnum(2)
            .build()
            .expect("valid parameters"),
    );
    let mut rng = StdRng::seed_from_u64(2023);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let gk = keygen.galois_keys(&mut rng, &sk, &[1], false);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());

    let values: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64 * 0.1, 0.0)).collect();
    println!("input slots:   {:?}", &values[..4]);

    let pt = encoder
        .encode(&values, 4, ctx.params().scale())
        .expect("encodes");
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);

    // (x + x)² rotated left by one.
    let doubled = evaluator.add(&ct, &ct);
    let squared = evaluator.mul(&doubled, &doubled, &rlk);
    let rotated = evaluator.rotate(&squared, 1, &gk);

    let out = encoder.decode(&decryptor.decrypt(&rotated, &sk));
    println!("(2x)^2 <<1:    {:?}", &out[..4]);
    for i in 0..7 {
        let expect = (2.0 * values[i + 1].re).powi(2);
        assert!(
            (out[i].re - expect).abs() < 1e-4,
            "slot {i}: {} vs {expect}",
            out[i].re
        );
    }
    println!("homomorphic result verified against plaintext ✓");

    // --- The same ops under the SimFHE cost model at full scale ------
    let model = CostModel::new(SchemeParams::baseline(), MadConfig::baseline());
    let mad = CostModel::new(SchemeParams::mad_practical(), MadConfig::all());
    println!("\nSimFHE at N = 2^17, ℓ = 35 (one ciphertext multiplication):");
    println!("  baseline: {:?}", model.mult(35));
    println!("  with MAD: {:?}", mad.mult(35));
    println!("\nOne full bootstrap:");
    println!("  baseline: {:?}", model.bootstrap().cost);
    println!("  with MAD: {:?}", mad.bootstrap().cost);
}
