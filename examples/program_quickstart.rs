//! Program-IR quickstart: define the dot-product similarity workload
//! once as a `Program`, price it with the SimFHE cost model at the
//! paper's full scale, execute it with the functional library at demo
//! scale, then upload it to the serving runtime and run it as a single
//! `RunProgram` opcode — asserting the served outputs are byte-identical
//! to the local execution.
//!
//! Run with: `cargo run --release --example program_quickstart`

use std::collections::BTreeMap;

use mad::math::cfft::Complex;
use mad::program::{execute, workloads, ExecInputs, ExecKeys};
use mad::scheme::hoisting::LinearTransform;
use mad::scheme::serialize::serialize_ciphertext;
use mad::scheme::{
    CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator,
};
use mad::serve::{Client, ServeConfig, Server};
use mad::sim::program::ProgramEnv;
use mad::sim::{CostModel, MadConfig, SchemeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Price the workload at the paper's scale ---------------------
    // One program definition serves three consumers; the first is the
    // analytical model. Price a 64-diagonal similarity search at the
    // paper's N = 2^17 MAD-practical parameters, entering at 20 limbs.
    let model = CostModel::new(SchemeParams::mad_practical(), MadConfig::all());
    let slots_full = model.params.slots() as usize;
    let priced = workloads::dot_product_program(slots_full, 20, 64);
    let info = priced
        .validate(&ProgramEnv {
            levels: model.params.limbs,
            slots: slots_full,
        })
        .expect("program validates at paper scale");
    let cost = model.program_cost(&priced, &info);
    println!(
        "dot_product at N = 2^17 ({} instructions, relin={}, {} Galois steps):",
        priced.instrs.len(),
        info.manifest.relin,
        info.manifest.galois_steps.len()
    );
    println!("  {:?}", cost.cost);

    // --- Execute the same workload at demo scale ---------------------
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(6)
            .levels(4)
            .scale_bits(30)
            .first_modulus_bits(40)
            .dnum(2)
            .build()
            .expect("valid parameters"),
    );
    let slots = ctx.params().slots();
    let diagonals = 8;
    let prog = workloads::dot_product_program(slots, 4, diagonals);
    let info = prog
        .validate(&ProgramEnv {
            levels: ctx.params().levels(),
            slots,
        })
        .expect("program validates at demo scale");

    let mut rng = StdRng::seed_from_u64(7);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let gk = kg.galois_keys_compressed(&mut rng, &sk, &info.manifest.galois_steps, false);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let ev = Evaluator::new(ctx.clone());

    // Database rows packed as diagonals; the encrypted query scores
    // against all of them in one BSGS product.
    let mut diags = BTreeMap::new();
    for d in 0..diagonals {
        let diag: Vec<Complex> = (0..slots)
            .map(|j| Complex::new(((j * 3 + d * 5) % 7) as f64 * 0.1 - 0.2, 0.0))
            .collect();
        diags.insert(d, diag);
    }
    let query: Vec<f64> = (0..slots)
        .map(|b| ((b * 2 + 1) % 5) as f64 * 0.15)
        .collect();
    let cv: Vec<Complex> = query.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let pt = encoder
        .encode(&cv, ctx.params().levels(), ctx.params().scale())
        .expect("encodes");
    let query_ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);

    let mut inputs = ExecInputs::default();
    inputs.cts.insert("query".into(), query_ct);
    inputs.mats.insert(
        "db".into(),
        LinearTransform::from_diagonals(diags.clone(), slots),
    );
    let keys = ExecKeys {
        relin: None,
        galois: Some(&gk),
    };
    let local = execute(&ev, &encoder, &prog, &inputs, keys).expect("program executes");
    let scores: Vec<f64> = encoder
        .decode(&decryptor.decrypt(&local[0].1, &sk))
        .iter()
        .map(|c| c.re)
        .collect();
    for j in 0..slots {
        let want: f64 = (0..diagonals)
            .map(|d| diags[&d][j].re * query[(j + d) % slots])
            .sum::<f64>()
            * 0.125;
        assert!(
            (scores[j] - want).abs() < 2e-2,
            "score slot {j}: {} vs {want}",
            scores[j]
        );
    }
    println!("\nlibrary execute(): scores verified against plaintext ✓");

    // --- Serve it: upload once, run as one opcode --------------------
    let server = Server::start(ctx.clone(), ServeConfig::default()).expect("server starts");
    let mut client = Client::connect(server.local_addr(), ctx.clone()).expect("connects");
    let sid = client.hello().expect("session");
    client.upload_galois(sid, &gk).expect("galois upload");
    let pid = client.upload_program(sid, &prog).expect("program upload");
    let served = client
        .run_program(sid, pid, &prog, &inputs)
        .expect("RunProgram");
    assert_eq!(
        serialize_ciphertext(&served[0]),
        serialize_ciphertext(&local[0].1),
        "served result must be byte-identical to the local executor"
    );
    println!("RunProgram over loopback: byte-identical to execute() ✓");
    client.close_session(sid).expect("close");
    server.shutdown();
}
