//! End-to-end serial-vs-parallel bit-identity: the full scheme pipeline
//! (keygen → encrypt → multiply/relinearize → rotate → rescale, plus the
//! merged-ModDown and hoisted-rotation paths) must produce byte-for-byte
//! identical ciphertexts whether the limb-parallel kernels run on one
//! thread or many. The force flag is process-global, so a mutex serializes
//! the tests.

#![cfg(feature = "parallel")]

use ckks::hoisting::rotate_hoisted;
use ckks::{Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_math::cfft::Complex;
use fhe_math::parallel::set_forced;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, OnceLock};

fn force_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn both_modes<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = force_lock().lock().unwrap();
    set_forced(Some(false));
    let serial = f();
    set_forced(Some(true));
    let parallel = f();
    set_forced(None);
    (serial, parallel)
}

fn ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(6)
            .levels(4)
            .scale_bits(32)
            .first_modulus_bits(40)
            .special_modulus_bits(36)
            .dnum(2)
            .build()
            .unwrap(),
    )
}

/// Flattens a ciphertext to its raw words so equality is bit-equality.
fn words(ct: &Ciphertext) -> Vec<u64> {
    let mut out = ct.c0().flat().to_vec();
    out.extend_from_slice(ct.c1().flat());
    out
}

#[test]
fn multiply_relinearize_rotate_rescale_are_bit_identical() {
    let (serial, parallel) = both_modes(|| {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(101);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key(&mut rng, &sk);
        let gk = kg.galois_keys(&mut rng, &sk, &[3], false);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let ev = Evaluator::new(ctx.clone());
        let scale = ctx.params().scale();
        let a: Vec<Complex> = (0..encoder.slots())
            .map(|i| Complex::new((i as f64 / 5.0).sin(), (i as f64 / 9.0).cos()))
            .collect();
        let b: Vec<Complex> = (0..encoder.slots())
            .map(|i| Complex::new((i as f64 / 7.0).cos(), -(i as f64 / 3.0).sin()))
            .collect();
        let ca = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&a, 3, scale).unwrap(), &sk);
        let cb = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&b, 3, scale).unwrap(), &sk);
        let prod = ev.mul(&ca, &cb, &rlk);
        let merged = ev.mul_merged(&ca, &cb, &rlk);
        let rot = ev.rotate(&prod, 3, &gk);
        let scaled = ev.rescale(&ev.mul_scalar_no_rescale(&rot, 0.75, scale));
        let mut all = words(&prod);
        all.extend(words(&merged));
        all.extend(words(&rot));
        all.extend(words(&scaled));
        all
    });
    assert_eq!(serial, parallel, "serial and parallel pipelines diverged");
}

#[test]
fn hoisted_rotations_are_bit_identical() {
    let (serial, parallel) = both_modes(|| {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(202);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let steps = [1i64, 2, 5];
        let gk = kg.galois_keys(&mut rng, &sk, &steps, false);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let ev = Evaluator::new(ctx.clone());
        let scale = ctx.params().scale();
        let values: Vec<Complex> = (0..encoder.slots())
            .map(|i| Complex::new(i as f64 * 0.01, 1.0 - i as f64 * 0.02))
            .collect();
        let ct =
            encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&values, 2, scale).unwrap(), &sk);
        let rotated = rotate_hoisted(&ev, &ct, &steps, &gk);
        rotated.iter().flat_map(words).collect::<Vec<u64>>()
    });
    assert_eq!(serial, parallel, "hoisted rotations diverged");
}
