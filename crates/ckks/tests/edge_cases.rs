//! Edge cases and failure paths of the public CKKS API: documented panics
//! fire, error types render, and degenerate shapes behave.

use ckks::hoisting::LinearTransform;
use ckks::params::ParamsError;
use ckks::{CkksContext, CkksParams, Encoder, Encryptor, Evaluator, GaloisKeys, KeyGenerator};
use fhe_math::cfft::Complex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

fn ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(3)
            .scale_bits(30)
            .first_modulus_bits(36)
            .dnum(3)
            .build()
            .unwrap(),
    )
}

#[test]
fn error_types_render_human_messages() {
    let e = CkksParams::builder().levels(0).build().unwrap_err();
    assert_eq!(e, ParamsError::NoLevels);
    assert!(e.to_string().contains("level"));
    let e = CkksParams::builder().log_degree(40).build().unwrap_err();
    assert!(e.to_string().contains("log_degree"));

    let ctx = ctx();
    let enc = Encoder::new(ctx.clone());
    let too_many = vec![Complex::new(1.0, 0.0); enc.slots() + 1];
    let err = enc.encode(&too_many, 1, ctx.params().scale()).unwrap_err();
    assert!(err.to_string().contains("slots"));
}

#[test]
#[should_panic(expected = "scale mismatch")]
fn adding_mismatched_scales_panics() {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(1);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let ev = Evaluator::new(ctx.clone());
    let v = [Complex::new(1.0, 0.0)];
    let a = encryptor.encrypt_symmetric(
        &mut rng,
        &enc.encode(&v, 2, ctx.params().scale()).unwrap(),
        &sk,
    );
    let b = encryptor.encrypt_symmetric(
        &mut rng,
        &enc.encode(&v, 2, ctx.params().scale() * 4.0).unwrap(),
        &sk,
    );
    let _ = ev.add(&a, &b);
}

#[test]
#[should_panic(expected = "missing Galois key")]
fn rotating_without_a_key_panics() {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(2);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let ev = Evaluator::new(ctx.clone());
    let ct = encryptor.encrypt_symmetric(
        &mut rng,
        &enc.encode(&[Complex::new(1.0, 0.0)], 1, ctx.params().scale())
            .unwrap(),
        &sk,
    );
    let _ = ev.rotate(&ct, 3, &GaloisKeys::default());
}

#[test]
#[should_panic(expected = "needs a limb to rescale into")]
fn merged_mult_at_one_limb_panics() {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(3);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let ev = Evaluator::new(ctx.clone());
    let ct = encryptor.encrypt_symmetric(
        &mut rng,
        &enc.encode(&[Complex::new(0.5, 0.0)], 1, ctx.params().scale())
            .unwrap(),
        &sk,
    );
    let _ = ev.mul_merged(&ct, &ct, &rlk);
}

#[test]
fn linear_transform_from_diagonals_validates() {
    let n = 8;
    let mut diagonals = BTreeMap::new();
    diagonals.insert(0usize, vec![Complex::new(1.0, 0.0); n]);
    diagonals.insert(3usize, vec![Complex::new(0.5, 0.0); n]);
    let lt = LinearTransform::from_diagonals(diagonals, n);
    assert_eq!(lt.diagonal_count(), 2);
    assert_eq!(lt.offsets(), vec![0, 3]);
    // Identity + half-strength shift: y_j = v_j + 0.5·v_{j+3}.
    let v: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
    let out = lt.apply_plain(&v);
    for j in 0..n {
        let want = v[j] + v[(j + 3) % n].scale(0.5);
        assert!((out[j] - want).abs() < 1e-12);
    }
}

#[test]
#[should_panic(expected = "out of range")]
fn linear_transform_rejects_bad_diagonal_index() {
    let mut diagonals = BTreeMap::new();
    diagonals.insert(9usize, vec![Complex::default(); 8]);
    let _ = LinearTransform::from_diagonals(diagonals, 8);
}

#[test]
fn align_levels_is_commutative_in_result_level() {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(4);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let ev = Evaluator::new(ctx.clone());
    let v = [Complex::new(0.25, 0.0)];
    let scale = ctx.params().scale();
    let high = encryptor.encrypt_symmetric(&mut rng, &enc.encode(&v, 3, scale).unwrap(), &sk);
    let low = encryptor.encrypt_symmetric(&mut rng, &enc.encode(&v, 1, scale).unwrap(), &sk);
    let (a, b) = ev.align_levels(&high, &low);
    assert_eq!(a.limb_count(), 1);
    assert_eq!(b.limb_count(), 1);
    let (c, d) = ev.align_levels(&low, &high);
    assert_eq!(c.limb_count(), 1);
    assert_eq!(d.limb_count(), 1);
}

#[test]
fn conjugate_twice_is_identity() {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(5);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let gk = keygen.galois_keys(&mut rng, &sk, &[], true);
    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = ckks::Decryptor::new(ctx.clone());
    let ev = Evaluator::new(ctx.clone());
    let values: Vec<Complex> = (0..enc.slots())
        .map(|i| Complex::new(0.1 * i as f64, -0.05 * i as f64))
        .collect();
    let ct = encryptor.encrypt_symmetric(
        &mut rng,
        &enc.encode(&values, 2, ctx.params().scale()).unwrap(),
        &sk,
    );
    let twice = ev.conjugate(&ev.conjugate(&ct, &gk), &gk);
    let out = enc.decode(&decryptor.decrypt(&twice, &sk));
    for (o, w) in out.iter().zip(&values) {
        assert!((*o - *w).abs() < 1e-3);
    }
}
