//! Homomorphic polynomial evaluation against plaintext references.

use ckks::polyeval::{evaluate_chebyshev, ChebyshevSeries};
use ckks::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_math::cfft::Complex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn deep_ctx(levels: usize) -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(6)
            .levels(levels)
            .scale_bits(30)
            .first_modulus_bits(40)
            .special_modulus_bits(33)
            .dnum(4)
            .build()
            .unwrap(),
    )
}

fn run_series(series: &ChebyshevSeries, inputs: &[f64], levels: usize) -> (Vec<f64>, Vec<f64>) {
    let ctx = deep_ctx(levels);
    let mut rng = StdRng::seed_from_u64(2024);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());

    let values: Vec<Complex> = inputs
        .iter()
        .cycle()
        .take(encoder.slots())
        .map(|&x| Complex::new(x, 0.0))
        .collect();
    let pt = encoder
        .encode(&values, levels, ctx.params().scale())
        .unwrap();
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
    let out = evaluate_chebyshev(&evaluator, &rlk, &ct, series);
    let dec = encoder.decode(&decryptor.decrypt(&out, &sk));
    let got: Vec<f64> = dec.iter().take(inputs.len()).map(|c| c.re).collect();
    let want: Vec<f64> = inputs.iter().map(|&x| series.eval_plain(x)).collect();
    (got, want)
}

#[test]
fn evaluates_low_degree_polynomial() {
    // p(x) = x³ − 0.5x + 0.25 on [-1, 1], degree 3 — exact interpolation.
    let series = ChebyshevSeries::interpolate(|x| x * x * x - 0.5 * x + 0.25, 3, -1.0, 1.0);
    let inputs = [-0.9, -0.4, 0.0, 0.3, 0.77];
    let (got, want) = run_series(&series, &inputs, 9);
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!((g - w).abs() < 5e-3, "input {i}: {g} vs {w}");
    }
}

#[test]
fn evaluates_degree_15_sine() {
    let series = ChebyshevSeries::interpolate(|x| x.sin(), 15, -1.0, 1.0);
    let inputs = [-0.95, -0.5, -0.1, 0.2, 0.6, 0.99];
    let (got, want) = run_series(&series, &inputs, 12);
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!((g - w).abs() < 1e-2, "input {i}: {g} vs {w}");
    }
}

#[test]
fn evaluates_on_shifted_interval() {
    // exp on [0, 2]: checks the affine normalization path.
    let series = ChebyshevSeries::interpolate(|x| (x - 1.0).exp() * 0.3, 7, 0.0, 2.0);
    let inputs = [0.05, 0.5, 1.0, 1.5, 1.95];
    let (got, want) = run_series(&series, &inputs, 11);
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!((g - w).abs() < 1e-2, "input {i}: {g} vs {w}");
    }
}

#[test]
fn constant_series() {
    let series = ChebyshevSeries::from_coeffs(vec![0.625], -1.0, 1.0);
    let inputs = [-0.5, 0.5];
    let (got, _want) = run_series(&series, &inputs, 6);
    for g in got {
        assert!((g - 0.625).abs() < 1e-3, "{g}");
    }
}
