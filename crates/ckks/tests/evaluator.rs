//! End-to-end homomorphic correctness of the Table-2 operations, including
//! the semantic equivalence of the MAD ModDown-merge multiplication.

use ckks::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_math::cfft::Complex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct Harness {
    ctx: Arc<CkksContext>,
    encoder: Encoder,
    encryptor: Encryptor,
    decryptor: Decryptor,
    evaluator: Evaluator,
    keygen: KeyGenerator,
    rng: StdRng,
}

impl Harness {
    fn new(seed: u64) -> Self {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_degree(7)
                .levels(5)
                .scale_bits(32)
                .first_modulus_bits(40)
                .special_modulus_bits(36)
                .dnum(3)
                .build()
                .unwrap(),
        );
        Self {
            encoder: Encoder::new(ctx.clone()),
            encryptor: Encryptor::new(ctx.clone()),
            decryptor: Decryptor::new(ctx.clone()),
            evaluator: Evaluator::new(ctx.clone()),
            keygen: KeyGenerator::new(ctx.clone()),
            ctx,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn values(&self, f: impl Fn(usize) -> Complex) -> Vec<Complex> {
        (0..self.encoder.slots()).map(f).collect()
    }

    fn encrypt(&mut self, v: &[Complex], ell: usize) -> (ckks::Ciphertext, ckks::SecretKey) {
        let sk = self.keygen.secret_key(&mut self.rng);
        let pt = self
            .encoder
            .encode(v, ell, self.ctx.params().scale())
            .unwrap();
        let ct = self.encryptor.encrypt_symmetric(&mut self.rng, &pt, &sk);
        (ct, sk)
    }

    fn decrypt(&self, ct: &ckks::Ciphertext, sk: &ckks::SecretKey) -> Vec<Complex> {
        self.encoder.decode(&self.decryptor.decrypt(ct, sk))
    }
}

fn assert_close(got: &[Complex], want: &[Complex], tol: f64, what: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (*g - *w).abs() < tol,
            "{what}: slot {i}: {g:?} vs {w:?} (diff {})",
            (*g - *w).abs()
        );
    }
}

#[test]
fn homomorphic_addition_and_subtraction() {
    let mut h = Harness::new(1);
    let a = h.values(|i| Complex::new((i as f64 * 0.1).sin(), 0.2));
    let b = h.values(|i| Complex::new(0.5 - i as f64 * 0.001, -0.1));
    let sk = h.keygen.secret_key(&mut h.rng);
    let scale = h.ctx.params().scale();
    let pa = h.encoder.encode(&a, 4, scale).unwrap();
    let pb = h.encoder.encode(&b, 4, scale).unwrap();
    let ca = h.encryptor.encrypt_symmetric(&mut h.rng, &pa, &sk);
    let cb = h.encryptor.encrypt_symmetric(&mut h.rng, &pb, &sk);
    let sum = h.evaluator.add(&ca, &cb);
    let diff = h.evaluator.sub(&ca, &cb);
    let want_sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
    let want_diff: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x - y).collect();
    assert_close(&h.decrypt(&sum, &sk), &want_sum, 1e-5, "add");
    assert_close(&h.decrypt(&diff, &sk), &want_diff, 1e-5, "sub");
}

#[test]
fn plaintext_operations() {
    let mut h = Harness::new(2);
    let a = h.values(|i| Complex::new(0.8 + 0.001 * i as f64, 0.0));
    let b = h.values(|i| Complex::new(-0.3, 0.002 * i as f64));
    let (ct, sk) = h.encrypt(&a, 3);
    let scale = h.ctx.params().scale();
    let pb = h.encoder.encode(&b, 3, scale).unwrap();
    let padd = h.evaluator.add_plain(&ct, &pb);
    let want: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
    assert_close(&h.decrypt(&padd, &sk), &want, 1e-5, "pt-add");

    let pmul = h.evaluator.mul_plain(&ct, &pb);
    assert_eq!(pmul.limb_count(), 2, "PtMult rescales");
    let want: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
    assert_close(&h.decrypt(&pmul, &sk), &want, 1e-4, "pt-mul");
}

#[test]
fn ciphertext_multiplication_standard() {
    let mut h = Harness::new(3);
    let a = h.values(|i| Complex::new((i as f64 * 0.05).cos(), 0.1));
    let b = h.values(|i| Complex::new(0.7, (i as f64 * 0.03).sin()));
    let sk = h.keygen.secret_key(&mut h.rng);
    let rlk = h.keygen.relin_key(&mut h.rng, &sk);
    let scale = h.ctx.params().scale();
    let pa = h.encoder.encode(&a, 4, scale).unwrap();
    let pb = h.encoder.encode(&b, 4, scale).unwrap();
    let ca = h.encryptor.encrypt_symmetric(&mut h.rng, &pa, &sk);
    let cb = h.encryptor.encrypt_symmetric(&mut h.rng, &pb, &sk);
    let prod = h.evaluator.mul(&ca, &cb, &rlk);
    assert_eq!(prod.limb_count(), 3);
    let want: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
    assert_close(&h.decrypt(&prod, &sk), &want, 1e-4, "mul");
}

#[test]
fn moddown_merge_multiplication_matches_standard() {
    // The paper's Figure 4: standard Mult (two ModDowns) and merged Mult
    // (one ModDown over {q_last} ∪ P) must compute the same function.
    let mut h = Harness::new(4);
    let a = h.values(|i| Complex::new(0.4 + 0.002 * i as f64, -0.2));
    let b = h.values(|i| Complex::new((i as f64 * 0.07).sin(), 0.3));
    let sk = h.keygen.secret_key(&mut h.rng);
    let rlk = h.keygen.relin_key(&mut h.rng, &sk);
    let scale = h.ctx.params().scale();
    let pa = h.encoder.encode(&a, 5, scale).unwrap();
    let pb = h.encoder.encode(&b, 5, scale).unwrap();
    let ca = h.encryptor.encrypt_symmetric(&mut h.rng, &pa, &sk);
    let cb = h.encryptor.encrypt_symmetric(&mut h.rng, &pb, &sk);

    let standard = h.evaluator.mul(&ca, &cb, &rlk);
    let merged = h.evaluator.mul_merged(&ca, &cb, &rlk);
    assert_eq!(standard.limb_count(), merged.limb_count());
    assert!((standard.scale() / merged.scale() - 1.0).abs() < 1e-12);

    let want: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
    let dec_std = h.decrypt(&standard, &sk);
    let dec_mrg = h.decrypt(&merged, &sk);
    assert_close(&dec_std, &want, 1e-4, "standard mul");
    assert_close(&dec_mrg, &want, 1e-4, "merged mul");
    assert_close(&dec_std, &dec_mrg, 1e-5, "merged vs standard");
}

#[test]
fn rotation_and_conjugation() {
    let mut h = Harness::new(5);
    let slots = h.encoder.slots();
    let a = h.values(|i| Complex::new(i as f64 / slots as f64, (i as f64 * 0.2).cos() * 0.1));
    let sk = h.keygen.secret_key(&mut h.rng);
    let gk = h.keygen.galois_keys(&mut h.rng, &sk, &[1, 3, -2], true);
    let scale = h.ctx.params().scale();
    let pa = h.encoder.encode(&a, 3, scale).unwrap();
    let ct = h.encryptor.encrypt_symmetric(&mut h.rng, &pa, &sk);

    for steps in [1i64, 3, -2] {
        let rot = h.evaluator.rotate(&ct, steps, &gk);
        let want: Vec<Complex> = (0..slots)
            .map(|i| a[(i as i64 + steps).rem_euclid(slots as i64) as usize])
            .collect();
        assert_close(
            &h.decrypt(&rot, &sk),
            &want,
            1e-4,
            &format!("rotate {steps}"),
        );
    }

    let conj = h.evaluator.conjugate(&ct, &gk);
    let want: Vec<Complex> = a.iter().map(|v| v.conj()).collect();
    assert_close(&h.decrypt(&conj, &sk), &want, 1e-4, "conjugate");
}

#[test]
fn rotation_by_zero_is_identity() {
    let mut h = Harness::new(6);
    let a = h.values(|i| Complex::new(0.25 * (i % 4) as f64, 0.0));
    let (ct, sk) = h.encrypt(&a, 2);
    let gk = ckks::GaloisKeys::default();
    let rot = h.evaluator.rotate(&ct, 0, &gk);
    assert_close(&h.decrypt(&rot, &sk), &a, 1e-6, "rotate 0");
}

#[test]
fn multiplication_depth_chain() {
    // x, x², x⁴ … down the modulus chain, checking scale management.
    let mut h = Harness::new(7);
    let a = h.values(|_| Complex::new(0.9, 0.0));
    let sk = h.keygen.secret_key(&mut h.rng);
    let rlk = h.keygen.relin_key(&mut h.rng, &sk);
    let scale = h.ctx.params().scale();
    let pa = h.encoder.encode(&a, 5, scale).unwrap();
    let mut ct = h.encryptor.encrypt_symmetric(&mut h.rng, &pa, &sk);
    let mut expect = 0.9f64;
    for _ in 0..3 {
        ct = h.evaluator.square(&ct, &rlk);
        expect = expect * expect;
        let dec = h.decrypt(&ct, &sk);
        assert!(
            (dec[0].re - expect).abs() < 1e-3,
            "chain: {} vs {expect}",
            dec[0].re
        );
    }
    assert_eq!(ct.limb_count(), 2);
}

#[test]
fn scalar_operations() {
    let mut h = Harness::new(8);
    let a = h.values(|i| Complex::new(0.1 * (i % 7) as f64, -0.05));
    let (ct, sk) = h.encrypt(&a, 3);
    let shifted = h.evaluator.add_scalar(&ct, 2.5);
    let want: Vec<Complex> = a.iter().map(|&v| v + Complex::new(2.5, 0.0)).collect();
    assert_close(&h.decrypt(&shifted, &sk), &want, 1e-5, "add_scalar");

    let scaled = h.evaluator.rescale(&h.evaluator.mul_scalar_no_rescale(
        &ct,
        -1.5,
        h.ctx.params().scale(),
    ));
    let want: Vec<Complex> = a.iter().map(|&v| v.scale(-1.5)).collect();
    assert_close(&h.decrypt(&scaled, &sk), &want, 1e-4, "mul_scalar");
}

#[test]
fn negation() {
    let mut h = Harness::new(9);
    let a = h.values(|i| Complex::new((i as f64).sqrt() * 0.01, 0.3));
    let (ct, sk) = h.encrypt(&a, 2);
    let neg = h.evaluator.neg(&ct);
    let want: Vec<Complex> = a.iter().map(|&v| -v).collect();
    assert_close(&h.decrypt(&neg, &sk), &want, 1e-5, "neg");
}

#[test]
fn compressed_relin_key_computes_identically() {
    // Key compression (Section 3.2): a seeded key must be functionally
    // identical to an uncompressed one — only its memory footprint differs.
    let mut h = Harness::new(10);
    let a = h.values(|_| Complex::new(0.6, 0.2));
    let sk = h.keygen.secret_key(&mut h.rng);
    let rlk_compressed = h.keygen.relin_key_compressed(&mut h.rng, &sk);
    assert!(rlk_compressed.switching_key().is_compressed());
    assert!(
        rlk_compressed.switching_key().compressed_size_bytes()
            < rlk_compressed.switching_key().size_bytes() / 2 + 64
    );
    let scale = h.ctx.params().scale();
    let pa = h.encoder.encode(&a, 4, scale).unwrap();
    let ct = h.encryptor.encrypt_symmetric(&mut h.rng, &pa, &sk);
    let prod = h.evaluator.mul(&ct, &ct, &rlk_compressed);
    let want: Vec<Complex> = a.iter().map(|&v| v * v).collect();
    assert_close(&h.decrypt(&prod, &sk), &want, 1e-4, "compressed-key mul");
}

#[test]
fn sum_slots_computes_prefix_sums_everywhere() {
    let mut h = Harness::new(11);
    let slots = h.encoder.slots();
    let a = h.values(|i| Complex::new(if i < 8 { 0.125 } else { 0.0 }, 0.0));
    let sk = h.keygen.secret_key(&mut h.rng);
    let steps: Vec<i64> = (0..3).map(|i| 1i64 << i).collect();
    let gk = h.keygen.galois_keys(&mut h.rng, &sk, &steps, false);
    let pt = h.encoder.encode(&a, 2, h.ctx.params().scale()).unwrap();
    let ct = h.encryptor.encrypt_symmetric(&mut h.rng, &pt, &sk);
    let folded = h.evaluator.sum_slots(&ct, 3, &gk);
    let out = h.decrypt(&folded, &sk);
    // Slot 0 holds the sum of the first 8 slots = 8 × 0.125 = 1.0.
    assert!((out[0].re - 1.0).abs() < 1e-3, "{}", out[0].re);
    let _ = slots;
}

#[test]
fn compressed_galois_keys_halve_bytes_and_rotate_identically() {
    let mut h = Harness::new(12);
    let sk = h.keygen.secret_key(&mut h.rng);
    let plain = h.keygen.galois_keys(&mut h.rng, &sk, &[1, 2, 4], true);
    let compressed = h
        .keygen
        .galois_keys_compressed(&mut h.rng, &sk, &[1, 2, 4], true);
    assert!(
        (compressed.total_bytes() as f64) < 0.55 * plain.total_bytes() as f64,
        "{} vs {}",
        compressed.total_bytes(),
        plain.total_bytes()
    );
    assert_eq!(compressed.iter().count(), 4);

    let a = h.values(|i| Complex::new(0.01 * i as f64, 0.0));
    let pt = h.encoder.encode(&a, 3, h.ctx.params().scale()).unwrap();
    let ct = h.encryptor.encrypt_symmetric(&mut h.rng, &pt, &sk);
    let r1 = h.evaluator.rotate(&ct, 2, &plain);
    let r2 = h.evaluator.rotate(&ct, 2, &compressed);
    let d1 = h.decrypt(&r1, &sk);
    let d2 = h.decrypt(&r2, &sk);
    for (x, y) in d1.iter().zip(&d2) {
        assert!((*x - *y).abs() < 1e-4);
    }
}
