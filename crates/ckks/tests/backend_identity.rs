//! Scalar-vs-unrolled bit-identity of the full scheme pipeline.
//!
//! Mirrors `parallel_identity.rs`, but instead of toggling the thread
//! count it builds one context per [`BackendKind`] (the explicit
//! preference beats any `MAD_KERNEL_BACKEND` the CI matrix exports) and
//! asserts the keygen → encrypt → multiply/relinearize → rescale → rotate
//! → hoisted-rotation → BSGS pipeline produces byte-for-byte identical
//! ciphertexts on both.

use ckks::hoisting::{apply_bsgs, bsgs_required_steps, rotate_hoisted, LinearTransform};
use ckks::{Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_math::cfft::Complex;
use fhe_math::BackendKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn ctx(kind: BackendKind) -> Arc<CkksContext> {
    CkksContext::with_backend(
        CkksParams::builder()
            .log_degree(6)
            .levels(4)
            .scale_bits(32)
            .first_modulus_bits(40)
            .special_modulus_bits(36)
            .dnum(2)
            .build()
            .unwrap(),
        Some(kind),
    )
}

/// Flattens a ciphertext to its raw words so equality is bit-equality.
fn words(ct: &Ciphertext) -> Vec<u64> {
    let mut out = ct.c0().flat().to_vec();
    out.extend_from_slice(ct.c1().flat());
    out
}

/// Runs `f` once per backend and asserts bit-equal outputs.
fn assert_backends_agree(f: impl Fn(Arc<CkksContext>) -> Vec<u64>) {
    let scalar = f(ctx(BackendKind::Scalar));
    let unrolled = f(ctx(BackendKind::Unrolled));
    assert_eq!(scalar, unrolled, "scalar and unrolled pipelines diverged");
}

#[test]
fn encrypt_decrypt_is_bit_identical() {
    assert_backends_agree(|ctx| {
        let mut rng = StdRng::seed_from_u64(404);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let scale = ctx.params().scale();
        let values: Vec<Complex> = (0..encoder.slots())
            .map(|i| Complex::new((i as f64 / 4.0).sin(), (i as f64 / 6.0).cos()))
            .collect();
        let ct =
            encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&values, 3, scale).unwrap(), &sk);
        words(&ct)
    });
}

#[test]
fn multiply_relinearize_rotate_rescale_are_bit_identical() {
    assert_backends_agree(|ctx| {
        let mut rng = StdRng::seed_from_u64(101);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key(&mut rng, &sk);
        let gk = kg.galois_keys(&mut rng, &sk, &[3], false);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let ev = Evaluator::new(ctx.clone());
        let scale = ctx.params().scale();
        let a: Vec<Complex> = (0..encoder.slots())
            .map(|i| Complex::new((i as f64 / 5.0).sin(), (i as f64 / 9.0).cos()))
            .collect();
        let b: Vec<Complex> = (0..encoder.slots())
            .map(|i| Complex::new((i as f64 / 7.0).cos(), -(i as f64 / 3.0).sin()))
            .collect();
        let ca = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&a, 3, scale).unwrap(), &sk);
        let cb = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&b, 3, scale).unwrap(), &sk);
        let prod = ev.mul(&ca, &cb, &rlk);
        let merged = ev.mul_merged(&ca, &cb, &rlk);
        let rot = ev.rotate(&prod, 3, &gk);
        let scaled = ev.rescale(&ev.mul_scalar_no_rescale(&rot, 0.75, scale));
        let mut all = words(&prod);
        all.extend(words(&merged));
        all.extend(words(&rot));
        all.extend(words(&scaled));
        all
    });
}

#[test]
fn hoisted_rotations_are_bit_identical() {
    assert_backends_agree(|ctx| {
        let mut rng = StdRng::seed_from_u64(202);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let steps = [1i64, 2, 5];
        let gk = kg.galois_keys(&mut rng, &sk, &steps, false);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let ev = Evaluator::new(ctx.clone());
        let scale = ctx.params().scale();
        let values: Vec<Complex> = (0..encoder.slots())
            .map(|i| Complex::new(i as f64 * 0.01, 1.0 - i as f64 * 0.02))
            .collect();
        let ct =
            encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&values, 2, scale).unwrap(), &sk);
        let rotated = rotate_hoisted(&ev, &ct, &steps, &gk);
        rotated.iter().flat_map(words).collect()
    });
}

#[test]
fn bsgs_matvec_is_bit_identical() {
    assert_backends_agree(|ctx| {
        let mut rng = StdRng::seed_from_u64(303);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let encoder = Encoder::new(ctx.clone());
        let slots = encoder.slots();
        // A small banded matrix so only a handful of diagonals are
        // populated.
        let matrix: Vec<Vec<Complex>> = (0..slots)
            .map(|r| {
                (0..slots)
                    .map(|c| {
                        let d = (c + slots - r) % slots;
                        if d <= 3 {
                            Complex::new(0.1 + r as f64 * 0.01, d as f64 * 0.05)
                        } else {
                            Complex::new(0.0, 0.0)
                        }
                    })
                    .collect()
            })
            .collect();
        let lt = LinearTransform::from_matrix(&matrix);
        let n1 = 2usize;
        let steps = bsgs_required_steps(&lt, n1);
        let gk = kg.galois_keys(&mut rng, &sk, &steps, false);
        let encryptor = Encryptor::new(ctx.clone());
        let ev = Evaluator::new(ctx.clone());
        let scale = ctx.params().scale();
        let values: Vec<Complex> = (0..slots)
            .map(|i| Complex::new((i as f64 * 0.3).cos(), (i as f64 * 0.2).sin()))
            .collect();
        let ct =
            encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&values, 3, scale).unwrap(), &sk);
        words(&apply_bsgs(&ev, &encoder, &ct, &lt, &gk, n1))
    });
}

#[test]
fn keyswitch_and_rescale_under_env_override_still_honor_explicit_choice() {
    // `with_backend(_, Some(kind))` must pin the kind regardless of the
    // process environment; both contexts here must report their own name.
    let scalar = ctx(BackendKind::Scalar);
    let unrolled = ctx(BackendKind::Unrolled);
    assert_eq!(scalar.kernel_backend().name(), "scalar");
    assert_eq!(unrolled.kernel_backend().name(), "unrolled");
}
