//! Property-based hardening of the `MADf` serialization layer: bit-exact
//! round-trips for randomized ciphertexts and seeded keys, and
//! never-panic behaviour on adversarial byte streams (truncations, bit
//! flips, version skew). These are the guarantees the serving runtime
//! leans on — a malformed frame must come back as a structured error, and
//! a round-tripped payload must be byte-identical so server-side results
//! match local ones exactly.

use ckks::serialize::{
    deserialize_ciphertext, deserialize_galois_keys, deserialize_plaintext,
    deserialize_switching_key, galois_key_set_entries, serialize_ciphertext, serialize_galois_keys,
    serialize_plaintext, serialize_switching_key, SerializeError,
};
use ckks::{CkksContext, CkksParams, Encoder, Encryptor, KeyGenerator};
use fhe_math::cfft::Complex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(4)
            .scale_bits(30)
            .first_modulus_bits(36)
            .dnum(2)
            .build()
            .unwrap(),
    )
}

fn values_strategy(slots: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), slots)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn ciphertext_roundtrip_is_bit_exact(
        values in values_strategy(16),
        level in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let pt = encoder.encode(&values, level, ctx.params().scale()).unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        let bytes = serialize_ciphertext(&ct);
        let back = deserialize_ciphertext(&ctx, &bytes).unwrap();
        // Serializing again must reproduce the exact byte stream.
        prop_assert_eq!(serialize_ciphertext(&back), bytes);
    }

    #[test]
    fn plaintext_roundtrip_is_bit_exact(
        values in values_strategy(16),
        level in 1usize..=4,
    ) {
        let ctx = ctx();
        let encoder = Encoder::new(ctx.clone());
        let pt = encoder.encode(&values, level, ctx.params().scale()).unwrap();
        let bytes = serialize_plaintext(&pt);
        let back = deserialize_plaintext(&ctx, &bytes).unwrap();
        prop_assert_eq!(serialize_plaintext(&back), bytes);
    }

    #[test]
    fn seeded_key_roundtrip_regenerates_exactly(seed in any::<u64>()) {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key_compressed(&mut rng, &sk);
        let bytes = serialize_switching_key(rlk.switching_key());
        let back = deserialize_switching_key(&ctx, &bytes).unwrap();
        prop_assert!(back.is_compressed());
        // The regenerated key serializes to the identical compressed form,
        // which (because `a` is seed-determined) pins the whole key.
        prop_assert_eq!(serialize_switching_key(&back), bytes);
    }

    #[test]
    fn galois_bundle_roundtrip_and_lazy_split_agree(
        seed in any::<u64>(),
        step_mask in 1u8..=7,
    ) {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let steps: Vec<i64> = [1i64, 2, 4]
            .iter()
            .enumerate()
            .filter(|(i, _)| step_mask & (1 << i) != 0)
            .map(|(_, &s)| s)
            .collect();
        let gk = kg.galois_keys_compressed(&mut rng, &sk, &steps, false);
        let bytes = serialize_galois_keys(&gk);
        // The lazy split and the full deserialization must present the
        // same elements, and each split entry must be a valid key message.
        let entries = galois_key_set_entries(&bytes).unwrap();
        let back = deserialize_galois_keys(&ctx, &bytes).unwrap();
        prop_assert_eq!(entries.len(), back.len());
        for (element, key_bytes) in entries {
            let split_key = deserialize_switching_key(&ctx, key_bytes).unwrap();
            let bundled = back.get(element).unwrap();
            prop_assert_eq!(
                serialize_switching_key(&split_key),
                serialize_switching_key(bundled)
            );
        }
        // Serializing the restored set reproduces the canonical bytes.
        prop_assert_eq!(serialize_galois_keys(&back), bytes);
    }

    #[test]
    fn truncations_and_bit_flips_never_panic(
        values in values_strategy(16),
        cut in 0usize..400,
        flip_at in 0usize..400,
        seed in any::<u64>(),
    ) {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let pt = encoder.encode(&values, 2, ctx.params().scale()).unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        let good = serialize_ciphertext(&ct);

        // Truncation at any point is a clean error, never a panic.
        let cut = cut.min(good.len().saturating_sub(1));
        prop_assert!(deserialize_ciphertext(&ctx, &good[..cut]).is_err());

        // One flipped bit is either caught or changes payload bytes only
        // (flips inside limb words can still decode, but must not panic).
        let mut bad = good.clone();
        let flip_at = flip_at.min(bad.len() - 1);
        bad[flip_at] ^= 0x01;
        let _ = deserialize_ciphertext(&ctx, &bad);
        let _ = deserialize_switching_key(&ctx, &bad);
        let _ = galois_key_set_entries(&bad);
    }

    #[test]
    fn version_skew_is_reported_as_version_mismatch(
        values in values_strategy(16),
        wrong_version in 2u8..255,
    ) {
        let ctx = ctx();
        let encoder = Encoder::new(ctx.clone());
        let pt = encoder.encode(&values, 2, ctx.params().scale()).unwrap();
        let mut bytes = serialize_plaintext(&pt);
        bytes[4] = wrong_version;
        prop_assert_eq!(
            deserialize_plaintext(&ctx, &bytes).unwrap_err(),
            SerializeError::VersionMismatch(wrong_version)
        );
    }
}
