//! End-to-end CKKS bootstrapping: an exhausted ciphertext is refreshed and
//! still decrypts to its message.

use ckks::bootstrap::{BootstrapConfig, Bootstrapper};
use ckks::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_math::cfft::Complex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn boot_ctx(levels: usize) -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(levels)
            .scale_bits(34)
            .first_modulus_bits(39) // ratio q0/Δ = 2^5
            .special_modulus_bits(38)
            .dnum(4)
            .build()
            .unwrap(),
    )
}

#[test]
fn bootstrap_restores_levels_and_preserves_message() {
    let levels = 26;
    let ctx = boot_ctx(levels);
    let mut rng = StdRng::seed_from_u64(7);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key_sparse(&mut rng, 8);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());

    let config = BootstrapConfig {
        fft_iters: 2,
        eval_mod_degree: 119,
        k_range: 9.0,
    };
    let bootstrapper = Bootstrapper::new(ctx.clone(), config);
    let gk = keygen.galois_keys(&mut rng, &sk, &bootstrapper.required_rotations(), true);

    let slots = encoder.slots();
    let values: Vec<Complex> = (0..slots)
        .map(|i| Complex::new(0.6 * (i as f64 * 0.5).sin(), 0.4 * (i as f64 * 0.3).cos()))
        .collect();
    // Encrypt at the lowest level: an exhausted ciphertext.
    let pt = encoder.encode(&values, 1, ctx.params().scale()).unwrap();
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
    assert_eq!(ct.limb_count(), 1);

    let refreshed = bootstrapper.bootstrap(&evaluator, &encoder, &ct, &gk, &rlk);
    assert!(
        refreshed.limb_count() >= 2,
        "bootstrap must leave spendable limbs, got {}",
        refreshed.limb_count()
    );

    let back = encoder.decode(&decryptor.decrypt(&refreshed, &sk));
    let mut max_err = 0.0f64;
    for (g, w) in back.iter().zip(&values) {
        max_err = max_err.max((*g - *w).abs());
    }
    assert!(max_err < 0.03, "bootstrapping error too large: {max_err}");
}

#[test]
fn bootstrapped_ciphertext_supports_multiplication() {
    let levels = 25;
    let ctx = boot_ctx(levels);
    let mut rng = StdRng::seed_from_u64(8);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key_sparse(&mut rng, 8);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());

    let bootstrapper = Bootstrapper::new(
        ctx.clone(),
        BootstrapConfig {
            fft_iters: 1,
            eval_mod_degree: 119,
            k_range: 9.0,
        },
    );
    let gk = keygen.galois_keys(&mut rng, &sk, &bootstrapper.required_rotations(), true);

    let values: Vec<Complex> = (0..encoder.slots())
        .map(|i| Complex::new(0.5 + 0.01 * i as f64, 0.0))
        .collect();
    let pt = encoder.encode(&values, 1, ctx.params().scale()).unwrap();
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
    let refreshed = bootstrapper.bootstrap(&evaluator, &encoder, &ct, &gk, &rlk);
    assert!(refreshed.limb_count() >= 2);

    // Spend the recovered level on a genuine multiplication.
    let squared = evaluator.mul(&refreshed, &refreshed, &rlk);
    let back = encoder.decode(&decryptor.decrypt(&squared, &sk));
    for (i, (g, w)) in back.iter().zip(&values).enumerate() {
        let want = *w * *w;
        assert!(
            (*g - want).abs() < 0.08,
            "slot {i}: {g:?} vs {want:?} after bootstrap+square"
        );
    }
}

#[test]
fn bootstrap_precision_is_pinned_per_slot() {
    // Precision *regression* pin: everything here is deterministic (fixed
    // seed, fixed params, deterministic evaluator), so the per-slot error
    // profile of a bootstrap is a constant of the implementation. The
    // bounds below were measured on the current implementation and pinned
    // at roughly 2× the observed values — loose enough to tolerate
    // legitimate refactors that reorder floating-point reductions, tight
    // enough that a quietly broken EvalMod or FFT phase (which moves the
    // error by orders of magnitude) fails loudly.
    let levels = 26;
    let ctx = boot_ctx(levels);
    let mut rng = StdRng::seed_from_u64(20260805);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key_sparse(&mut rng, 8);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());

    let bootstrapper = Bootstrapper::new(
        ctx.clone(),
        BootstrapConfig {
            fft_iters: 2,
            eval_mod_degree: 119,
            k_range: 9.0,
        },
    );
    let gk = keygen.galois_keys(&mut rng, &sk, &bootstrapper.required_rotations(), true);

    let slots = encoder.slots();
    let values: Vec<Complex> = (0..slots)
        .map(|i| Complex::new(0.5 * (i as f64 * 0.9).sin(), 0.3 * (i as f64 * 0.4).cos()))
        .collect();
    let pt = encoder.encode(&values, 1, ctx.params().scale()).unwrap();
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);

    let refreshed = bootstrapper.bootstrap(&evaluator, &encoder, &ct, &gk, &rlk);

    // The level budget left after bootstrapping is part of the contract:
    // a depth regression in EvalMod or the FFT phases shows up here first.
    const PINNED_LIMBS: usize = 6;
    assert_eq!(
        refreshed.limb_count(),
        PINNED_LIMBS,
        "bootstrap depth changed: output has {} limbs, pinned {}",
        refreshed.limb_count(),
        PINNED_LIMBS
    );

    let back = encoder.decode(&decryptor.decrypt(&refreshed, &sk));
    let mut max_err = 0.0f64;
    let mut sum_err = 0.0f64;
    for (i, (g, w)) in back.iter().zip(&values).enumerate() {
        let err = (*g - *w).abs();
        sum_err += err;
        max_err = max_err.max(err);
        const PER_SLOT_BOUND: f64 = 3.5e-3;
        assert!(
            err < PER_SLOT_BOUND,
            "slot {i}: error {err:.3e} exceeds pinned bound {PER_SLOT_BOUND:.1e}"
        );
    }
    let mean_err = sum_err / slots as f64;
    const MEAN_BOUND: f64 = 3.3e-3;
    assert!(
        mean_err < MEAN_BOUND,
        "mean error {mean_err:.3e} exceeds pinned bound {MEAN_BOUND:.1e} (max {max_err:.3e})"
    );
}

#[test]
fn coeff_to_slot_then_slot_to_coeff_is_identity() {
    // The two linear phases, run back to back on a fresh ciphertext,
    // must return (approximately) the original message.
    let levels = 8;
    let ctx = boot_ctx(levels);
    let mut rng = StdRng::seed_from_u64(9);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key_sparse(&mut rng, 8);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());
    let bootstrapper = Bootstrapper::new(
        ctx.clone(),
        BootstrapConfig {
            fft_iters: 2,
            eval_mod_degree: 7, // irrelevant here; keeps the depth check happy
            k_range: 9.0,
        },
    );
    let _ = &rlk;
    let gk = keygen.galois_keys(&mut rng, &sk, &bootstrapper.required_rotations(), true);

    let values: Vec<Complex> = (0..encoder.slots())
        .map(|i| Complex::new((i as f64 * 0.7).cos() * 0.5, 0.2))
        .collect();
    let pt = encoder
        .encode(&values, levels, ctx.params().scale())
        .unwrap();
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);

    let slotted = bootstrapper.coeff_to_slot(&evaluator, &encoder, &ct, &gk);
    let back_ct = bootstrapper.slot_to_coeff(&evaluator, &encoder, &slotted, &gk);
    let back = encoder.decode(&decryptor.decrypt(&back_ct, &sk));
    for (i, (g, w)) in back.iter().zip(&values).enumerate() {
        assert!((*g - *w).abs() < 1e-2, "slot {i}: {g:?} vs {w:?}");
    }
}
