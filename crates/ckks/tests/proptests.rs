//! Property-based tests of the functional CKKS scheme on randomized
//! messages: encode/decode, homomorphic arithmetic against plaintext
//! references, and the rotation group action. Case counts are small —
//! each case runs real lattice cryptography.

use ckks::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_math::cfft::Complex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(6)
            .levels(4)
            .scale_bits(32)
            .first_modulus_bits(40)
            .special_modulus_bits(36)
            .dnum(2)
            .build()
            .unwrap(),
    )
}

fn values_strategy(slots: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), slots)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn encode_decode_roundtrip(values in values_strategy(32)) {
        let ctx = ctx();
        let encoder = Encoder::new(ctx.clone());
        let pt = encoder.encode(&values, 2, ctx.params().scale()).unwrap();
        let back = encoder.decode(&pt);
        for (a, b) in back.iter().zip(&values) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn encryption_is_correct_and_homomorphic_for_addition(
        a in values_strategy(32),
        b in values_strategy(32),
        seed in any::<u64>(),
    ) {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let decryptor = Decryptor::new(ctx.clone());
        let evaluator = Evaluator::new(ctx.clone());
        let scale = ctx.params().scale();
        let ca = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&a, 2, scale).unwrap(), &sk);
        let cb = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&b, 2, scale).unwrap(), &sk);
        let sum = evaluator.add(&ca, &cb);
        let out = encoder.decode(&decryptor.decrypt(&sum, &sk));
        for ((x, y), z) in a.iter().zip(&b).zip(&out) {
            prop_assert!((*x + *y - *z).abs() < 1e-4);
        }
    }

    #[test]
    fn multiplication_matches_plaintext_product(
        a in values_strategy(32),
        b in values_strategy(32),
        seed in any::<u64>(),
    ) {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let rlk = keygen.relin_key(&mut rng, &sk);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let decryptor = Decryptor::new(ctx.clone());
        let evaluator = Evaluator::new(ctx.clone());
        let scale = ctx.params().scale();
        let ca = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&a, 3, scale).unwrap(), &sk);
        let cb = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&b, 3, scale).unwrap(), &sk);
        // Standard and merged paths both match the plaintext product.
        for prod in [evaluator.mul(&ca, &cb, &rlk), evaluator.mul_merged(&ca, &cb, &rlk)] {
            let out = encoder.decode(&decryptor.decrypt(&prod, &sk));
            for ((x, y), z) in a.iter().zip(&b).zip(&out) {
                prop_assert!((*x * *y - *z).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn rotation_group_acts_transitively(
        values in values_strategy(32),
        steps in 0i64..32,
        seed in any::<u64>(),
    ) {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let gk = keygen.galois_keys(&mut rng, &sk, &[steps], false);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let decryptor = Decryptor::new(ctx.clone());
        let evaluator = Evaluator::new(ctx.clone());
        let scale = ctx.params().scale();
        let ct = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&values, 2, scale).unwrap(), &sk);
        let rot = evaluator.rotate(&ct, steps, &gk);
        let out = encoder.decode(&decryptor.decrypt(&rot, &sk));
        let slots = values.len();
        for i in 0..slots {
            let want = values[(i + steps as usize) % slots];
            prop_assert!((out[i] - want).abs() < 1e-3, "slot {}", i);
        }
    }

    #[test]
    fn rescale_preserves_value_and_drops_limb(
        values in values_strategy(32),
        c in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let decryptor = Decryptor::new(ctx.clone());
        let evaluator = Evaluator::new(ctx.clone());
        let scale = ctx.params().scale();
        let ct = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&values, 3, scale).unwrap(), &sk);
        let scaled = evaluator.rescale(&evaluator.mul_scalar_no_rescale(&ct, c, scale));
        prop_assert_eq!(scaled.limb_count(), 2);
        let out = encoder.decode(&decryptor.decrypt(&scaled, &sk));
        for (x, z) in values.iter().zip(&out) {
            prop_assert!((x.scale(c) - *z).abs() < 1e-3);
        }
    }
}
