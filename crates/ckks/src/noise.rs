//! Noise diagnostics: measuring how much of a ciphertext's modulus budget
//! the accumulated error has consumed, and how much computation headroom
//! remains.
//!
//! CKKS is approximate, so "noise" here means the deviation of the
//! decrypted ring element from a reference encoding. The budget view is
//! the one the paper's level accounting relies on: each rescale spends
//! one limb (`log q` bits), and bootstrapping refunds `log Q₁` bits.

use crate::encoding::Encoder;
use crate::keys::SecretKey;
use crate::plaintext::{Ciphertext, Plaintext};
use fhe_math::cfft::Complex;

/// A snapshot of a ciphertext's error and remaining headroom.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseReport {
    /// `log2` of the largest slot-domain deviation from the reference
    /// (`-inf` if the ciphertext is exact, which never happens in
    /// practice).
    pub log2_slot_error: f64,
    /// `log2` of the ciphertext's current total modulus.
    pub log2_modulus: f64,
    /// `log2` of the scaling factor.
    pub log2_scale: f64,
    /// Bits of modulus above the scale: the number of additional
    /// `log q`-sized rescales the ciphertext can still absorb, in bits.
    pub budget_bits: f64,
}

impl NoiseReport {
    /// Fractional decimal digits of precision still intact in the slots.
    pub fn decimal_precision(&self) -> f64 {
        (-self.log2_slot_error) * std::f64::consts::LOG10_2
    }
}

/// Measures a ciphertext's noise against the reference slot values it is
/// supposed to hold. Requires the secret key — this is a *debugging*
/// facility (the whole point of FHE is that the server cannot do this).
///
/// # Panics
///
/// Panics if `reference` has more entries than there are slots.
pub fn measure(
    ct: &Ciphertext,
    sk: &SecretKey,
    reference: &[Complex],
    encoder: &Encoder,
) -> NoiseReport {
    assert!(
        reference.len() <= encoder.slots(),
        "reference longer than the slot count"
    );
    let decrypted = decrypt_raw(ct, sk);
    let slots = encoder.decode(&decrypted);
    let mut max_err = 0.0f64;
    for (i, want) in reference.iter().enumerate() {
        max_err = max_err.max((slots[i] - *want).abs());
    }
    for got in slots.iter().skip(reference.len()) {
        max_err = max_err.max(got.abs());
    }
    let log2_modulus = ct.c0().basis().log2_product();
    let log2_scale = ct.scale().log2();
    NoiseReport {
        log2_slot_error: max_err.log2(),
        log2_modulus,
        log2_scale,
        budget_bits: log2_modulus - log2_scale,
    }
}

fn decrypt_raw(ct: &Ciphertext, sk: &SecretKey) -> Plaintext {
    let mut m = ct.c1().clone();
    m.mul_assign_pointwise(&sk.at_level(ct.limb_count()));
    m.add_assign(ct.c0());
    Plaintext {
        poly: m,
        scale: ct.scale(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::encrypt::Encryptor;
    use crate::keys::KeyGenerator;
    use crate::ops::Evaluator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (
        Arc<CkksContext>,
        Encoder,
        Encryptor,
        Evaluator,
        KeyGenerator,
        StdRng,
    ) {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_degree(6)
                .levels(4)
                .scale_bits(32)
                .first_modulus_bits(40)
                .dnum(2)
                .build()
                .unwrap(),
        );
        (
            ctx.clone(),
            Encoder::new(ctx.clone()),
            Encryptor::new(ctx.clone()),
            Evaluator::new(ctx.clone()),
            KeyGenerator::new(ctx),
            StdRng::seed_from_u64(606),
        )
    }

    #[test]
    fn fresh_ciphertext_has_small_error_and_full_budget() {
        let (ctx, encoder, encryptor, _ev, keygen, mut rng) = setup();
        let sk = keygen.secret_key(&mut rng);
        let values = vec![Complex::new(0.5, -0.25); 16];
        let pt = encoder.encode(&values, 4, ctx.params().scale()).unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        let report = measure(&ct, &sk, &values, &encoder);
        assert!(report.log2_slot_error < -20.0, "{report:?}");
        assert!(report.decimal_precision() > 6.0);
        // 40 + 3·32 bits of modulus over a 32-bit scale.
        assert!((report.budget_bits - 104.0).abs() < 2.0, "{report:?}");
    }

    #[test]
    fn multiplication_consumes_budget_and_adds_noise() {
        let (ctx, encoder, encryptor, ev, keygen, mut rng) = setup();
        let sk = keygen.secret_key(&mut rng);
        let rlk = keygen.relin_key(&mut rng, &sk);
        let values = vec![Complex::new(0.9, 0.0); 16];
        let pt = encoder.encode(&values, 4, ctx.params().scale()).unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        let fresh = measure(&ct, &sk, &values, &encoder);
        let sq = ev.mul(&ct, &ct, &rlk);
        let want: Vec<Complex> = values.iter().map(|&v| v * v).collect();
        let after = measure(&sq, &sk, &want, &encoder);
        assert!(
            after.budget_bits < fresh.budget_bits - 25.0,
            "one limb spent"
        );
        assert!(after.log2_slot_error > fresh.log2_slot_error, "noise grew");
        assert!(after.log2_slot_error < -10.0, "but stayed usable");
    }

    #[test]
    fn zero_padding_counts_as_reference_zero() {
        let (ctx, encoder, encryptor, _ev, keygen, mut rng) = setup();
        let sk = keygen.secret_key(&mut rng);
        let values = [Complex::new(1.0, 0.0)];
        let pt = encoder.encode(&values, 2, ctx.params().scale()).unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        // Measuring against the 1-entry reference also checks the padded
        // slots stay ≈ 0.
        let report = measure(&ct, &sk, &values, &encoder);
        assert!(report.log2_slot_error < -20.0);
    }
}
