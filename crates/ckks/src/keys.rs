//! Key material: secret, public, relinearization, Galois and generic
//! switching keys, including the paper's **key compression** optimization
//! (a PRNG seed replaces the uniformly random first polynomial of every
//! switching key, halving its DRAM footprint — Section 3.2).

use crate::context::CkksContext;
use fhe_math::poly::{Representation, RnsPoly};
use fhe_math::sampling::{sample_gaussian, sample_ternary, sample_uniform_flat};
use fhe_math::telemetry::OperandClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The secret key `s` (ternary), stored both as signed coefficients (for
/// derived-key generation) and embedded over the full `Q ∪ P` basis in
/// evaluation representation (for fast decryption and key generation).
pub struct SecretKey {
    pub(crate) signed: Vec<i64>,
    pub(crate) full: RnsPoly,
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretKey(degree {})", self.signed.len())
    }
}

impl SecretKey {
    /// The secret restricted to the `ℓ`-limb ciphertext basis, in
    /// evaluation representation.
    pub(crate) fn at_level(&self, ell: usize) -> RnsPoly {
        self.full.drop_to(ell)
    }
}

/// The public encryption key `(pk_0, pk_1) = (−a·s + e, a)` over the full
/// ciphertext basis `Q`.
#[derive(Clone)]
pub struct PublicKey {
    pub(crate) pk0: RnsPoly,
    pub(crate) pk1: RnsPoly,
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({} limbs)", self.pk0.limb_count())
    }
}

/// One digit of a switching key: a pair `(a_j, b_j)` over `Q ∪ P`.
#[derive(Clone)]
pub struct DigitKey {
    pub(crate) a: RnsPoly,
    pub(crate) b: RnsPoly,
}

/// A switching key `ksk_{s_src → s_dst}` in the Han–Ki hybrid structure: a
/// `2 × dnum` matrix of polynomials over `R_{PQ}` (Eq. 2 of the paper).
#[derive(Clone)]
pub struct SwitchingKey {
    pub(crate) digits: Vec<DigitKey>,
    /// When produced by seeded generation, the seed that regenerates every
    /// `a_j` — the transferable form of the key-compression optimization.
    pub(crate) seed: Option<[u8; 32]>,
}

impl fmt::Debug for SwitchingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwitchingKey")
            .field("digits", &self.digits.len())
            .field("compressed", &self.seed.is_some())
            .finish()
    }
}

impl SwitchingKey {
    /// Number of digit keys (`dnum`).
    pub fn digit_count(&self) -> usize {
        self.digits.len()
    }

    /// True if the key carries a seed from which the `a_j` components can
    /// be regenerated (key compression).
    pub fn is_compressed(&self) -> bool {
        self.seed.is_some()
    }

    /// Size in bytes when both polynomials of every digit are stored.
    pub fn size_bytes(&self) -> u64 {
        let per_poly = |p: &RnsPoly| 8 * p.degree() as u64 * p.limb_count() as u64;
        self.digits
            .iter()
            .map(|d| per_poly(&d.a) + per_poly(&d.b))
            .sum()
    }

    /// Size in bytes when the `a_j` are replaced by the 32-byte seed —
    /// exactly half plus the seed, the paper's 2× key-read reduction.
    pub fn compressed_size_bytes(&self) -> u64 {
        let per_poly = |p: &RnsPoly| 8 * p.degree() as u64 * p.limb_count() as u64;
        32 + self.digits.iter().map(|d| per_poly(&d.b)).sum::<u64>()
    }
}

/// A set of Galois (rotation/conjugation) keys indexed by Galois element.
///
/// Keys are reference-counted so a serving runtime can assemble a
/// per-request key set from a shared cache without copying polynomial
/// material (see [`GaloisKeys::insert_shared`]).
#[derive(Default)]
pub struct GaloisKeys {
    pub(crate) keys: HashMap<u64, Arc<SwitchingKey>>,
}

impl fmt::Debug for GaloisKeys {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GaloisKeys({} elements)", self.keys.len())
    }
}

impl GaloisKeys {
    /// An empty key set; populate with [`GaloisKeys::insert`]. Used by
    /// deserialization and by servers assembling a set from individually
    /// cached keys.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) the key for Galois element `element`.
    pub fn insert(&mut self, element: u64, key: SwitchingKey) {
        self.keys.insert(element, Arc::new(key));
    }

    /// Inserts an already-shared key without copying its polynomials —
    /// how a key cache lends a cached expansion to one request.
    pub fn insert_shared(&mut self, element: u64, key: Arc<SwitchingKey>) {
        self.keys.insert(element, key);
    }

    /// The shared handle for Galois element `k`, if present.
    pub fn get_shared(&self, k: u64) -> Option<&Arc<SwitchingKey>> {
        self.keys.get(&k)
    }

    /// Iterates over `(galois_element, key)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SwitchingKey)> {
        self.keys.iter().map(|(&k, v)| (k, v.as_ref()))
    }

    /// Total serialized size of the set in bytes, honouring each key's
    /// compression state.
    pub fn total_bytes(&self) -> u64 {
        self.keys
            .values()
            .map(|k| {
                if k.is_compressed() {
                    k.compressed_size_bytes()
                } else {
                    k.size_bytes()
                }
            })
            .sum()
    }

    /// The key for Galois element `k`, if generated.
    pub fn get(&self, k: u64) -> Option<&SwitchingKey> {
        self.keys.get(&k).map(|a| a.as_ref())
    }

    /// Number of keys held.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no keys are held.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// The relinearization key (`s² → s`).
pub struct RelinKey(pub(crate) SwitchingKey);

impl fmt::Debug for RelinKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelinKey({} digits)", self.0.digit_count())
    }
}

impl RelinKey {
    /// Wraps a switching key (e.g. one restored by
    /// [`crate::serialize::deserialize_switching_key`]) as a
    /// relinearization key.
    pub fn from_switching_key(key: SwitchingKey) -> Self {
        RelinKey(key)
    }

    /// The underlying switching key.
    pub fn switching_key(&self) -> &SwitchingKey {
        &self.0
    }
}

/// Generates all key material for a context.
pub struct KeyGenerator {
    ctx: Arc<CkksContext>,
}

impl fmt::Debug for KeyGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyGenerator({:?})", self.ctx)
    }
}

impl KeyGenerator {
    /// Creates a generator bound to a context.
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        Self { ctx }
    }

    /// Samples a fresh ternary secret key.
    pub fn secret_key<R: Rng + ?Sized>(&self, rng: &mut R) -> SecretKey {
        let n = self.ctx.params().degree();
        let signed = sample_ternary(rng, n);
        let mut full = RnsPoly::from_signed_coeffs(self.ctx.full_basis().clone(), &signed);
        full.to_eval();
        full.set_operand_class(OperandClass::Key);
        SecretKey { signed, full }
    }

    /// Samples a sparse ternary secret with exactly `hamming_weight`
    /// nonzero coefficients — required by bootstrapping, whose ModRaise
    /// residue bound `K` grows with the secret's 1-norm.
    pub fn secret_key_sparse<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        hamming_weight: usize,
    ) -> SecretKey {
        let n = self.ctx.params().degree();
        let signed = fhe_math::sampling::sample_sparse_ternary(rng, n, hamming_weight);
        let mut full = RnsPoly::from_signed_coeffs(self.ctx.full_basis().clone(), &signed);
        full.to_eval();
        full.set_operand_class(OperandClass::Key);
        SecretKey { signed, full }
    }

    /// Derives the public key `(−a·s + e, a)` over the full `Q` basis.
    pub fn public_key<R: Rng + ?Sized>(&self, rng: &mut R, sk: &SecretKey) -> PublicKey {
        let basis = self.ctx.q_basis().clone();
        let n = self.ctx.params().degree();
        let moduli: Vec<u64> = basis.moduli().iter().map(|m| m.value()).collect();
        let a_flat = sample_uniform_flat(rng, &moduli, n);
        let a = RnsPoly::from_flat(basis.clone(), a_flat, Representation::Evaluation);
        let e_signed = sample_gaussian(rng, n);
        let mut e = RnsPoly::from_signed_coeffs(basis.clone(), &e_signed);
        e.to_eval();
        let s = sk.full.drop_to(basis.len());
        let mut pk0 = a.clone();
        pk0.mul_assign_pointwise(&s);
        pk0.negate();
        pk0.add_assign(&e);
        let mut a = a;
        pk0.set_operand_class(OperandClass::Key);
        a.set_operand_class(OperandClass::Key);
        PublicKey { pk0, pk1: a }
    }

    /// Generates a switching key from `src` (a polynomial over the full
    /// `Q ∪ P` basis, evaluation representation — e.g. `s²` or `σ_k(s)`)
    /// to the secret `s`.
    ///
    /// When `seed` is `Some`, the `a_j` components are derived from the
    /// seed (key compression); the returned key records the seed so callers
    /// can measure or transmit the compressed form.
    pub fn switching_key<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        src: &RnsPoly,
        sk: &SecretKey,
        seed: Option<[u8; 32]>,
    ) -> SwitchingKey {
        assert_eq!(
            src.limb_count(),
            self.ctx.full_basis().len(),
            "switching-key source must live over Q ∪ P"
        );
        assert_eq!(src.representation(), Representation::Evaluation);
        let full = self.ctx.full_basis().clone();
        let n = self.ctx.params().degree();
        let l = self.ctx.params().levels();
        let dnum = self.ctx.params().dnum();
        let moduli: Vec<u64> = full.moduli().iter().map(|m| m.value()).collect();

        // [P]_{q_i} for the g_j factors.
        let p_mod_q: Vec<u64> = (0..l)
            .map(|i| {
                let qi = full.modulus(i);
                let mut p = 1u64;
                for pj in self.ctx.p_basis().moduli() {
                    p = qi.mul(p, qi.reduce(pj.value()));
                }
                p
            })
            .collect();

        let mut seeded_rng = seed.map(StdRng::from_seed);
        let mut digits = Vec::with_capacity(dnum);
        for j in 0..dnum {
            let a_flat = match seeded_rng.as_mut() {
                Some(sr) => sample_uniform_flat(sr, &moduli, n),
                None => sample_uniform_flat(rng, &moduli, n),
            };
            let a = RnsPoly::from_flat(full.clone(), a_flat, Representation::Evaluation);
            let e_signed = sample_gaussian(rng, n);
            let mut b = RnsPoly::from_signed_coeffs(full.clone(), &e_signed);
            b.to_eval();
            // b_j = e_j − a_j·s + P·g_j·src
            let mut as_term = a.clone();
            as_term.mul_assign_pointwise(&sk.full);
            b.sub_assign(&as_term);
            // P·g_j·src: per-limb constant — [P]_{q_i} on digit-j limbs,
            // zero elsewhere (including all special limbs).
            let digit_range = self.ctx.digit_range(l, j);
            let mut factors = vec![0u64; full.len()];
            for i in digit_range {
                factors[i] = p_mod_q[i];
            }
            let mut lifted = src.clone();
            lifted.mul_scalar_per_limb_assign(&factors);
            b.add_assign(&lifted);
            let mut a = a;
            a.set_operand_class(OperandClass::Key);
            b.set_operand_class(OperandClass::Key);
            digits.push(DigitKey { a, b });
        }
        SwitchingKey { digits, seed }
    }

    /// Generates the relinearization key (`s² → s`).
    pub fn relin_key<R: Rng + ?Sized>(&self, rng: &mut R, sk: &SecretKey) -> RelinKey {
        let mut s2 = sk.full.clone();
        s2.mul_assign_pointwise(&sk.full);
        RelinKey(self.switching_key(rng, &s2, sk, None))
    }

    /// Generates the relinearization key in compressed (seeded) form.
    pub fn relin_key_compressed<R: Rng + ?Sized>(&self, rng: &mut R, sk: &SecretKey) -> RelinKey {
        let seed = rng.gen::<[u8; 32]>();
        let mut s2 = sk.full.clone();
        s2.mul_assign_pointwise(&sk.full);
        RelinKey(self.switching_key(rng, &s2, sk, Some(seed)))
    }

    /// Generates the Galois key for element `k` (`σ_k(s) → s`).
    pub fn galois_key<R: Rng + ?Sized>(&self, rng: &mut R, sk: &SecretKey, k: u64) -> SwitchingKey {
        // Apply σ_k to the signed secret, then re-embed: x^i ↦ ±x^{ik mod 2N}.
        let n = self.ctx.params().degree();
        let mut permuted = vec![0i64; n];
        let two_n = 2 * n as u64;
        for (i, &c) in sk.signed.iter().enumerate() {
            let e = (i as u64 * k) % two_n;
            if e < n as u64 {
                permuted[e as usize] = c;
            } else {
                permuted[(e - n as u64) as usize] = -c;
            }
        }
        let mut src = RnsPoly::from_signed_coeffs(self.ctx.full_basis().clone(), &permuted);
        src.to_eval();
        self.switching_key(rng, &src, sk, None)
    }

    /// Generates the Galois key for element `k` in compressed (seeded)
    /// form — the key-compression optimization applied where it matters
    /// most, since bootstrapping carries tens of rotation keys.
    pub fn galois_key_compressed<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sk: &SecretKey,
        k: u64,
    ) -> SwitchingKey {
        let seed = rng.gen::<[u8; 32]>();
        let n = self.ctx.params().degree();
        let mut permuted = vec![0i64; n];
        let two_n = 2 * n as u64;
        for (i, &c) in sk.signed.iter().enumerate() {
            let e = (i as u64 * k) % two_n;
            if e < n as u64 {
                permuted[e as usize] = c;
            } else {
                permuted[(e - n as u64) as usize] = -c;
            }
        }
        let mut src = RnsPoly::from_signed_coeffs(self.ctx.full_basis().clone(), &permuted);
        src.to_eval();
        self.switching_key(rng, &src, sk, Some(seed))
    }

    /// Generates a fully seeded Galois key set: every key can be
    /// serialized at half size and regenerated from its seed.
    pub fn galois_keys_compressed<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sk: &SecretKey,
        steps: &[i64],
        with_conjugation: bool,
    ) -> GaloisKeys {
        let mut keys = HashMap::new();
        for &s in steps {
            let k = self.ctx.rotation_element(s);
            keys.entry(k)
                .or_insert_with(|| Arc::new(self.galois_key_compressed(rng, sk, k)));
        }
        if with_conjugation {
            let k = self.ctx.conjugation_element();
            keys.entry(k)
                .or_insert_with(|| Arc::new(self.galois_key_compressed(rng, sk, k)));
        }
        GaloisKeys { keys }
    }

    /// Generates Galois keys for the given rotation steps (plus optional
    /// conjugation).
    pub fn galois_keys<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sk: &SecretKey,
        steps: &[i64],
        with_conjugation: bool,
    ) -> GaloisKeys {
        let mut keys = HashMap::new();
        for &s in steps {
            let k = self.ctx.rotation_element(s);
            keys.entry(k)
                .or_insert_with(|| Arc::new(self.galois_key(rng, sk, k)));
        }
        if with_conjugation {
            let k = self.ctx.conjugation_element();
            keys.entry(k)
                .or_insert_with(|| Arc::new(self.galois_key(rng, sk, k)));
        }
        GaloisKeys { keys }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> Arc<CkksContext> {
        CkksContext::new(
            CkksParams::builder()
                .log_degree(5)
                .levels(4)
                .scale_bits(30)
                .first_modulus_bits(36)
                .dnum(2)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn secret_key_shapes() {
        let ctx = ctx();
        let kg = KeyGenerator::new(ctx.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let sk = kg.secret_key(&mut rng);
        assert_eq!(sk.signed.len(), 32);
        assert_eq!(sk.full.limb_count(), 6);
        assert_eq!(sk.at_level(2).limb_count(), 2);
    }

    #[test]
    fn public_key_is_rlwe_sample() {
        // pk0 + pk1·s should be the small error e.
        let ctx = ctx();
        let kg = KeyGenerator::new(ctx.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let sk = kg.secret_key(&mut rng);
        let pk = kg.public_key(&mut rng, &sk);
        let mut check = pk.pk1.clone();
        check.mul_assign_pointwise(&sk.full.drop_to(4));
        check.add_assign(&pk.pk0);
        check.to_coeff();
        assert!(check.inf_norm() < 30.0, "norm {}", check.inf_norm());
    }

    #[test]
    fn switching_key_digit_count_and_sizes() {
        let ctx = ctx();
        let kg = KeyGenerator::new(ctx.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key(&mut rng, &sk);
        assert_eq!(rlk.switching_key().digit_count(), 2);
        assert!(!rlk.switching_key().is_compressed());
        let full = rlk.switching_key().size_bytes();
        let compressed = rlk.switching_key().compressed_size_bytes();
        // Compression halves the key (plus the 32-byte seed).
        assert_eq!(full / 2 + 32, compressed);
    }

    #[test]
    fn seeded_keys_are_reproducible_in_a_component() {
        let ctx = ctx();
        let kg = KeyGenerator::new(ctx.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let sk = kg.secret_key(&mut rng);
        let seed = [7u8; 32];
        let k1 = kg.switching_key(&mut rng, &sk.full.clone(), &sk, Some(seed));
        let k2 = kg.switching_key(&mut rng, &sk.full.clone(), &sk, Some(seed));
        assert!(k1.is_compressed());
        for (d1, d2) in k1.digits.iter().zip(&k2.digits) {
            for i in 0..d1.a.limb_count() {
                assert_eq!(d1.a.limb(i), d2.a.limb(i), "a must be seed-determined");
            }
        }
        // b differs (fresh error), as required for security.
        assert_ne!(k1.digits[0].b.limb(0), k2.digits[0].b.limb(0));
    }

    #[test]
    fn galois_keys_cover_requested_steps() {
        let ctx = ctx();
        let kg = KeyGenerator::new(ctx.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let sk = kg.secret_key(&mut rng);
        let gk = kg.galois_keys(&mut rng, &sk, &[1, 2, -1], true);
        assert_eq!(gk.len(), 4);
        assert!(gk.get(ctx.rotation_element(1)).is_some());
        assert!(gk.get(ctx.conjugation_element()).is_some());
        assert!(gk.get(999).is_none());
    }
}
