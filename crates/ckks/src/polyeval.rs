//! Homomorphic polynomial evaluation in the Chebyshev basis.
//!
//! Bootstrapping's approximate modular reduction (`PolyEval` in
//! Algorithm 4) evaluates a high-degree polynomial approximation of the
//! scaled sine on every slot. We use Chebyshev interpolation (numerically
//! stable at high degree) and a baby-step/giant-step evaluation with
//! multiplicative depth `O(log d)`.

use crate::keys::RelinKey;
use crate::ops::Evaluator;
use crate::plaintext::Ciphertext;
use std::fmt;

/// A truncated Chebyshev series `Σ_k c_k·T_k(t)` for `t ∈ [-1, 1]`,
/// representing a function on `[a, b]` through the affine map
/// `t = (2x − a − b)/(b − a)`.
#[derive(Clone)]
pub struct ChebyshevSeries {
    coeffs: Vec<f64>,
    a: f64,
    b: f64,
}

impl fmt::Debug for ChebyshevSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChebyshevSeries")
            .field("degree", &(self.coeffs.len().saturating_sub(1)))
            .field("interval", &(self.a, self.b))
            .finish()
    }
}

impl ChebyshevSeries {
    /// Interpolates `f` on `[a, b]` with a degree-`degree` Chebyshev
    /// series (Chebyshev–Gauss nodes).
    ///
    /// # Panics
    ///
    /// Panics if `b <= a`.
    pub fn interpolate(f: impl Fn(f64) -> f64, degree: usize, a: f64, b: f64) -> Self {
        assert!(b > a, "invalid interval");
        let n = degree + 1;
        // Sample at Chebyshev nodes t_j = cos(π(j+0.5)/n).
        let samples: Vec<f64> = (0..n)
            .map(|j| {
                let t = (std::f64::consts::PI * (j as f64 + 0.5) / n as f64).cos();
                let x = 0.5 * (t * (b - a) + a + b);
                f(x)
            })
            .collect();
        let mut coeffs = vec![0.0f64; n];
        for (k, c) in coeffs.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &s) in samples.iter().enumerate() {
                acc += s * (std::f64::consts::PI * k as f64 * (j as f64 + 0.5) / n as f64).cos();
            }
            *c = acc * 2.0 / n as f64;
        }
        coeffs[0] *= 0.5;
        Self { coeffs, a, b }
    }

    /// Builds a series from explicit Chebyshev coefficients on `[a, b]`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or `b <= a`.
    pub fn from_coeffs(coeffs: Vec<f64>, a: f64, b: f64) -> Self {
        assert!(!coeffs.is_empty(), "series needs at least one coefficient");
        assert!(b > a, "invalid interval");
        Self { coeffs, a, b }
    }

    /// Series degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The interpolation interval `[a, b]`.
    pub fn interval(&self) -> (f64, f64) {
        (self.a, self.b)
    }

    /// Chebyshev coefficients `c_0 … c_d`.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Plaintext (Clenshaw) evaluation, the reference for tests.
    pub fn eval_plain(&self, x: f64) -> f64 {
        let t = (2.0 * x - self.a - self.b) / (self.b - self.a);
        let (mut b1, mut b2) = (0.0f64, 0.0f64);
        for &c in self.coeffs.iter().skip(1).rev() {
            let tmp = 2.0 * t * b1 - b2 + c;
            b2 = b1;
            b1 = tmp;
        }
        self.coeffs[0] + t * b1 - b2
    }

    /// Multiplicative depth consumed by [`evaluate_chebyshev`] for this
    /// series (normalization + Chebyshev power ladder + recombination).
    pub fn depth(&self) -> usize {
        let d = self.degree().max(1);
        // 1 level for normalization, ⌈log2 d⌉ for the power ladder, plus
        // one per recursion level and one for coefficient scaling.
        2 + (usize::BITS - d.leading_zeros()) as usize + 1
    }
}

/// Homomorphically evaluates a Chebyshev series on a ciphertext whose slot
/// values lie in the series' interval `[a, b]`.
///
/// Uses the Paterson–Stockmeyer-style split `p = q·T_m + r` with the
/// Chebyshev product identity, for `O(√d)` multiplications and `O(log d)`
/// depth.
///
/// # Panics
///
/// Panics if the ciphertext has too few limbs left for the series depth.
pub fn evaluate_chebyshev(
    evaluator: &Evaluator,
    rlk: &RelinKey,
    ct: &Ciphertext,
    series: &ChebyshevSeries,
) -> Ciphertext {
    assert!(
        ct.limb_count() > series.depth(),
        "ciphertext has {} limbs; series needs depth {}",
        ct.limb_count(),
        series.depth()
    );
    let (a, b) = series.interval();
    // Normalize to t ∈ [-1, 1].
    let scale = evaluator.context().params().scale();
    let mut t = evaluator.mul_scalar_no_rescale(ct, 2.0 / (b - a), scale);
    t = evaluator.rescale(&t);
    t = evaluator.add_scalar(&t, -(a + b) / (b - a));

    let d = series.degree();
    if d == 0 {
        let mut out = evaluator.mul_scalar_no_rescale(&t, 0.0, scale);
        out = evaluator.rescale(&out);
        return evaluator.add_scalar(&out, series.coeffs()[0]);
    }

    // Baby dimension: power of two near √d.
    let mut n1 = 1usize;
    while n1 * n1 < d + 1 {
        n1 <<= 1;
    }
    n1 = n1.max(2);

    // T_1 .. T_{n1-1} (babies) and T_{n1}, T_{2n1}, ... (giants).
    let mut powers: Vec<Option<Ciphertext>> = vec![None; d + 1];
    powers[1] = Some(t.clone());
    // Babies by the recurrence T_{i+j} = 2·T_i·T_j − T_{i−j} choosing
    // i = ⌈k/2⌉, j = ⌊k/2⌋ to keep depth logarithmic.
    for k in 2..n1 {
        let i = k.div_ceil(2);
        let j = k / 2;
        let ti = powers[i].clone().expect("baby power computed");
        let tj = powers[j].clone().expect("baby power computed");
        let mut prod = evaluator.mul(&ti, &tj, rlk);
        prod = evaluator.mul_scalar_no_rescale(&prod, 2.0, scale);
        prod = evaluator.rescale(&prod);
        let tk = if i == j {
            evaluator.add_scalar(&prod, -1.0)
        } else {
            let diff = powers[i - j].clone().expect("difference power");
            evaluator.sub(&prod, &align_to(evaluator, &diff, &prod))
        };
        powers[k] = Some(tk);
    }
    // Giants: T_{2m} = 2·T_m² − 1.
    let mut m = n1;
    while m <= d {
        if powers[m].is_none() {
            let half = powers[m / 2].clone().expect("giant base");
            let mut sq = evaluator.mul(&half, &half, rlk);
            sq = evaluator.mul_scalar_no_rescale(&sq, 2.0, scale);
            sq = evaluator.rescale(&sq);
            powers[m] = Some(evaluator.add_scalar(&sq, -1.0));
        }
        m <<= 1;
    }

    eval_recursive(evaluator, rlk, series.coeffs(), &powers, n1)
}

/// Aligns `ct` to the limb count and scale of `target` (drops limbs; the
/// residual relative scale mismatch is within the evaluator's tolerance).
fn align_to(evaluator: &Evaluator, ct: &Ciphertext, target: &Ciphertext) -> Ciphertext {
    let mut out = evaluator.drop_to(ct, ct.limb_count().min(target.limb_count()));
    if (out.scale() / target.scale() - 1.0).abs() > 1e-9 {
        // Force the bookkeeping scale; the value error is the drift itself,
        // which is ≤ the evaluator's add tolerance.
        out = Ciphertext::new(out.c0().clone(), out.c1().clone(), target.scale());
    }
    out
}

fn eval_recursive(
    evaluator: &Evaluator,
    rlk: &RelinKey,
    coeffs: &[f64],
    powers: &[Option<Ciphertext>],
    n1: usize,
) -> Ciphertext {
    let d = coeffs.len() - 1;
    let scale = evaluator.context().params().scale();
    if d < n1 {
        // Direct: c_0 + Σ c_k T_k, scaled once.
        let t1 = powers[1].as_ref().expect("T1");
        let mut acc: Option<Ciphertext> = None;
        for (k, &c) in coeffs.iter().enumerate().skip(1) {
            if c.abs() < 1e-13 {
                continue;
            }
            let tk = powers[k].as_ref().expect("baby power");
            let term = evaluator.mul_scalar_no_rescale(tk, c, scale);
            acc = Some(match acc {
                None => term,
                Some(a) => {
                    let (x, y) = evaluator.align_levels(&a, &term);
                    let y = align_to(evaluator, &y, &x);
                    evaluator.add(&x, &y)
                }
            });
        }
        let acc = match acc {
            Some(a) => evaluator.rescale(&a),
            None => {
                let z = evaluator.mul_scalar_no_rescale(t1, 0.0, scale);
                evaluator.rescale(&z)
            }
        };
        return evaluator.add_scalar(&acc, coeffs[0]);
    }
    // Split at the largest giant power m ≤ d, with d < 2m.
    let mut m = n1;
    while 2 * m <= d {
        m <<= 1;
    }
    // p = q·T_m + r. The term c_m·T_m contributes q[0] += c_m directly;
    // for m < i ≤ d (< 2m by choice of m), T_i = 2·T_{i−m}·T_m − T_{2m−i}.
    let mut q = vec![0.0f64; d - m + 1];
    let mut r = coeffs[..m].to_vec();
    q[0] = coeffs[m];
    for i in m + 1..=d {
        let c = coeffs[i];
        if c == 0.0 {
            continue;
        }
        q[i - m] += 2.0 * c;
        r[2 * m - i] -= c;
    }
    let q_ct = eval_recursive(evaluator, rlk, &q, powers, n1);
    let tm = powers[m].as_ref().expect("giant power");
    let (qa, tma) = evaluator.align_levels(&q_ct, tm);
    let prod = evaluator.mul(&qa, &align_to(evaluator, &tma, &qa), rlk);
    let rest = eval_recursive(evaluator, rlk, &r, powers, n1);
    let (x, y) = evaluator.align_levels(&prod, &rest);
    let y = align_to(evaluator, &y, &x);
    evaluator.add(&x, &y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_reproduces_polynomials_exactly() {
        // A cubic is represented exactly by a degree-3 series.
        let f = |x: f64| 0.5 * x * x * x - x + 0.25;
        let s = ChebyshevSeries::interpolate(f, 3, -1.0, 1.0);
        for x in [-1.0, -0.5, 0.0, 0.3, 1.0] {
            assert!((clenshaw(&s, x) - f(x)).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn interpolation_approximates_sine_well() {
        let f = |x: f64| x.sin();
        let s = ChebyshevSeries::interpolate(f, 15, -3.0, 3.0);
        for i in 0..100 {
            let x = -3.0 + 6.0 * i as f64 / 99.0;
            assert!((clenshaw(&s, x) - f(x)).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn depth_estimate_is_logarithmic() {
        let s = ChebyshevSeries::interpolate(|x| x, 31, -1.0, 1.0);
        assert!(s.depth() <= 9);
    }

    // Reference Clenshaw evaluation (the eval_plain method is exercised
    // indirectly; this helper keeps the test independent of it).
    fn clenshaw(s: &ChebyshevSeries, x: f64) -> f64 {
        let (a, b) = s.interval();
        let t = (2.0 * x - a - b) / (b - a);
        let (mut b1, mut b2) = (0.0f64, 0.0f64);
        for &c in s.coeffs().iter().rev().take(s.coeffs().len() - 1) {
            let tmp = 2.0 * t * b1 - b2 + c;
            b2 = b1;
            b1 = tmp;
        }
        t * b1 - b2 + s.coeffs()[0]
    }
}
