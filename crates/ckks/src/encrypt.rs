//! Encryption and decryption.

use crate::context::CkksContext;
use crate::keys::{PublicKey, SecretKey};
use crate::plaintext::{Ciphertext, Plaintext};
use fhe_math::poly::{Representation, RnsPoly};
use fhe_math::sampling::{sample_gaussian, sample_ternary, sample_uniform_flat};
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// Encrypts plaintexts under either the secret key (fresh symmetric
/// ciphertexts, minimal noise) or the public key.
pub struct Encryptor {
    ctx: Arc<CkksContext>,
}

impl fmt::Debug for Encryptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Encryptor({:?})", self.ctx)
    }
}

impl Encryptor {
    /// Creates an encryptor for the context.
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        Self { ctx }
    }

    /// Symmetric encryption: `(c_0, c_1) = (−a·s + m + e, a)`.
    pub fn encrypt_symmetric<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pt: &Plaintext,
        sk: &SecretKey,
    ) -> Ciphertext {
        let ell = pt.limb_count();
        let basis = self.ctx.level_basis(ell).clone();
        let n = self.ctx.params().degree();
        let moduli: Vec<u64> = basis.moduli().iter().map(|m| m.value()).collect();
        let a = RnsPoly::from_flat(
            basis.clone(),
            sample_uniform_flat(rng, &moduli, n),
            Representation::Evaluation,
        );
        let mut c0 = RnsPoly::from_signed_coeffs(basis, &sample_gaussian(rng, n));
        c0.to_eval();
        let mut as_term = a.clone();
        as_term.mul_assign_pointwise(&sk.at_level(ell));
        c0.sub_assign(&as_term);
        c0.add_assign(&pt.poly);
        Ciphertext::new(c0, a, pt.scale)
    }

    /// Public-key encryption: `(v·pk_0 + m + e_0, v·pk_1 + e_1)` with
    /// ternary `v`.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pt: &Plaintext,
        pk: &PublicKey,
    ) -> Ciphertext {
        let ell = pt.limb_count();
        let n = self.ctx.params().degree();
        let basis = self.ctx.level_basis(ell).clone();
        let mut v = RnsPoly::from_signed_coeffs(basis.clone(), &sample_ternary(rng, n));
        v.to_eval();
        let mut c0 = pk.pk0.drop_to(ell);
        c0.mul_assign_pointwise(&v);
        let mut e0 = RnsPoly::from_signed_coeffs(basis.clone(), &sample_gaussian(rng, n));
        e0.to_eval();
        c0.add_assign(&e0);
        c0.add_assign(&pt.poly);
        let mut c1 = pk.pk1.drop_to(ell);
        c1.mul_assign_pointwise(&v);
        let mut e1 = RnsPoly::from_signed_coeffs(basis, &sample_gaussian(rng, n));
        e1.to_eval();
        c1.add_assign(&e1);
        Ciphertext::new(c0, c1, pt.scale)
    }
}

/// Decrypts ciphertexts with the secret key.
pub struct Decryptor {
    ctx: Arc<CkksContext>,
}

impl fmt::Debug for Decryptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Decryptor({:?})", self.ctx)
    }
}

impl Decryptor {
    /// Creates a decryptor for the context.
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        Self { ctx }
    }

    /// Decrypts to a plaintext: `m = c_0 + c_1·s`.
    pub fn decrypt(&self, ct: &Ciphertext, sk: &SecretKey) -> Plaintext {
        let ell = ct.limb_count();
        let mut m = ct.c1.clone();
        m.mul_assign_pointwise(&sk.at_level(ell));
        m.add_assign(&ct.c0);
        let _ = &self.ctx; // decryption needs no context state beyond the key
        m.set_operand_class(fhe_math::telemetry::OperandClass::Plaintext);
        Plaintext {
            poly: m,
            scale: ct.scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoder;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use fhe_math::cfft::Complex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Arc<CkksContext>, Encoder, KeyGenerator) {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_degree(6)
                .levels(3)
                .scale_bits(32)
                .first_modulus_bits(40)
                .dnum(3)
                .build()
                .unwrap(),
        );
        (
            ctx.clone(),
            Encoder::new(ctx.clone()),
            KeyGenerator::new(ctx),
        )
    }

    #[test]
    fn symmetric_roundtrip() {
        let (ctx, enc, kg) = setup();
        let mut rng = StdRng::seed_from_u64(10);
        let sk = kg.secret_key(&mut rng);
        let encryptor = Encryptor::new(ctx.clone());
        let decryptor = Decryptor::new(ctx.clone());
        let values: Vec<Complex> = (0..enc.slots())
            .map(|i| Complex::new((i as f64 / 7.0).sin(), (i as f64 / 5.0).cos()))
            .collect();
        let pt = enc.encode(&values, 3, ctx.params().scale()).unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        assert_eq!(ct.limb_count(), 3);
        let back = enc.decode(&decryptor.decrypt(&ct, &sk));
        for (a, b) in back.iter().zip(&values) {
            assert!((*a - *b).abs() < 1e-6, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn public_key_roundtrip() {
        let (ctx, enc, kg) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        let sk = kg.secret_key(&mut rng);
        let pk = kg.public_key(&mut rng, &sk);
        let encryptor = Encryptor::new(ctx.clone());
        let decryptor = Decryptor::new(ctx.clone());
        let values = vec![Complex::new(3.25, -0.5); 8];
        let pt = enc.encode(&values, 2, ctx.params().scale()).unwrap();
        let ct = encryptor.encrypt(&mut rng, &pt, &pk);
        assert_eq!(ct.limb_count(), 2);
        let back = enc.decode(&decryptor.decrypt(&ct, &sk));
        for (a, b) in back.iter().zip(&values) {
            assert!((*a - *b).abs() < 1e-4, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let (ctx, enc, kg) = setup();
        let mut rng = StdRng::seed_from_u64(12);
        let sk = kg.secret_key(&mut rng);
        let encryptor = Encryptor::new(ctx.clone());
        let pt = enc
            .encode(&[Complex::new(1.0, 0.0)], 1, ctx.params().scale())
            .unwrap();
        let ct1 = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        let ct2 = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        assert_ne!(ct1.c0().limb(0), ct2.c0().limb(0));
    }

    #[test]
    fn ciphertext_size_matches_paper_formula() {
        let (ctx, enc, kg) = setup();
        let mut rng = StdRng::seed_from_u64(13);
        let sk = kg.secret_key(&mut rng);
        let encryptor = Encryptor::new(ctx.clone());
        let pt = enc
            .encode(&[Complex::new(1.0, 0.0)], 3, ctx.params().scale())
            .unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        assert_eq!(ct.size_words(), 2 * 64 * 3);
    }
}
