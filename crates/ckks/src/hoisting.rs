//! Hoisted rotations and plaintext matrix–vector products (`PtMatVecMult`).
//!
//! `PtMatVecMult` — `⟦y⟧ ← Σ_i PtMult(Rotate(⟦m⟧, i), x_i)` — dominates the
//! CoeffToSlot/SlotToCoeff phases of bootstrapping. This module implements
//! the paper's Figure 5 ladder:
//!
//! - [`apply_naive`]: each rotation runs a full `KeySwitch` (β `ModUp`s and
//!   2 `ModDown`s per rotation — Figure 5a).
//! - [`rotate_hoisted`]: **ModUp hoisting** (Halevi–Shoup): decompose and
//!   raise the ciphertext once, permute the raised digits per rotation.
//! - [`apply_hoisted`]: ModUp hoisting **plus ModDown hoisting** (the
//!   paper's contribution): plaintext multiplications and additions happen
//!   in the raised basis `R_{PQ}`, so the entire product needs exactly one
//!   `ModUp` and two `ModDown`s regardless of the number of rotations
//!   (Figure 5c).
//! - [`apply_bsgs`]: the baby-step/giant-step decomposition used at scale,
//!   with hoisting applied to the baby steps.

use crate::encoding::Encoder;
use crate::keys::GaloisKeys;
use crate::keyswitch::{automorph_digits_with, complete, decompose_and_raise, inner_product};
use crate::ops::Evaluator;
use crate::plaintext::Ciphertext;
use fhe_math::cfft::Complex;
use fhe_math::poly::mod_down_with;
use fhe_math::telemetry;
use fhe_math::ScratchPool;
use std::collections::BTreeMap;
use std::fmt;

/// A linear map on slot vectors, stored as its nonzero generalized
/// diagonals: `y_j = Σ_d diag_d[j] · v_{(j+d) mod n}`.
#[derive(Clone)]
pub struct LinearTransform {
    diagonals: BTreeMap<usize, Vec<Complex>>,
    slots: usize,
}

impl fmt::Debug for LinearTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinearTransform")
            .field("slots", &self.slots)
            .field("diagonals", &self.diagonals.len())
            .finish()
    }
}

impl LinearTransform {
    /// Builds the transform from a dense `n × n` matrix, keeping only
    /// nonzero diagonals.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square of slot-count size.
    pub fn from_matrix(matrix: &[Vec<Complex>]) -> Self {
        let n = matrix.len();
        assert!(n.is_power_of_two(), "matrix size must be a power of two");
        for row in matrix {
            assert_eq!(row.len(), n, "matrix must be square");
        }
        let mut diagonals = BTreeMap::new();
        for d in 0..n {
            let diag: Vec<Complex> = (0..n).map(|j| matrix[j][(j + d) % n]).collect();
            if diag.iter().any(|c| c.abs() > 1e-12) {
                diagonals.insert(d, diag);
            }
        }
        Self {
            diagonals,
            slots: n,
        }
    }

    /// Builds directly from a diagonal map.
    ///
    /// # Panics
    ///
    /// Panics if any diagonal has the wrong length or index.
    pub fn from_diagonals(diagonals: BTreeMap<usize, Vec<Complex>>, slots: usize) -> Self {
        for (&d, diag) in &diagonals {
            assert!(d < slots, "diagonal index {d} out of range");
            assert_eq!(diag.len(), slots, "diagonal {d} has wrong length");
        }
        Self { diagonals, slots }
    }

    /// Number of nonzero diagonals (the paper's rotation count `r`).
    pub fn diagonal_count(&self) -> usize {
        self.diagonals.len()
    }

    /// The rotation offsets with nonzero diagonals.
    pub fn offsets(&self) -> Vec<usize> {
        self.diagonals.keys().copied().collect()
    }

    /// The stored diagonal at offset `d`, if nonzero — lets a wire
    /// protocol re-serialize the transform without densifying it.
    pub fn diagonal(&self, d: usize) -> Option<&[Complex]> {
        self.diagonals.get(&d).map(|v| v.as_slice())
    }

    /// Slot dimension.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Reference (plaintext) application of the transform.
    pub fn apply_plain(&self, v: &[Complex]) -> Vec<Complex> {
        let n = self.slots;
        let mut out = vec![Complex::default(); n];
        for (&d, diag) in &self.diagonals {
            for j in 0..n {
                out[j] = out[j] + diag[j] * v[(j + d) % n];
            }
        }
        out
    }
}

/// `PtMatVecMult`, naive schedule (Figure 5a): one full `Rotate` (with its
/// own `ModUp`s and `ModDown`s) per nonzero diagonal.
///
/// # Panics
///
/// Panics if a required Galois key is missing.
pub fn apply_naive(
    evaluator: &Evaluator,
    encoder: &Encoder,
    ct: &Ciphertext,
    lt: &LinearTransform,
    gk: &GaloisKeys,
) -> Ciphertext {
    let ell = ct.limb_count();
    let scale = evaluator.context().params().scale();
    let mut acc: Option<Ciphertext> = None;
    for (&d, diag) in &lt.diagonals {
        let rotated = evaluator.rotate(ct, d as i64, gk);
        let pt = encoder.encode(diag, ell, scale).expect("diagonal encodes");
        let term = evaluator.mul_plain_no_rescale(&rotated, &pt);
        acc = Some(match acc {
            None => term,
            Some(a) => evaluator.add(&a, &term),
        });
    }
    evaluator.rescale(&acc.expect("transform has at least one diagonal"))
}

/// Rotations sharing one decomposition (**ModUp hoisting**): returns the
/// rotation of `ct` by each step, at the cost of a single `Decomp`/`ModUp`
/// and one inner product + `ModDown` pair per step.
///
/// # Panics
///
/// Panics if a required Galois key is missing.
pub fn rotate_hoisted(
    evaluator: &Evaluator,
    ct: &Ciphertext,
    steps: &[i64],
    gk: &GaloisKeys,
) -> Vec<Ciphertext> {
    let ctx = evaluator.context();
    let pool = ctx.scratch();
    let digits = decompose_and_raise(ctx, &ct.c1);
    let out = steps
        .iter()
        .map(|&s| {
            if s == 0 {
                return ct.clone();
            }
            let k = ctx.rotation_element(s);
            let ksk = gk
                .get(k)
                .unwrap_or_else(|| panic!("missing Galois key for rotation {s}"));
            let auto = ctx.automorphism(k);
            let rotated_digits = automorph_digits_with(&digits, &auto, pool);
            let raised = inner_product(ctx, &rotated_digits, ksk);
            for d in rotated_digits {
                d.recycle(pool);
            }
            let (v, u) = complete(ctx, &raised);
            raised.recycle(pool);
            let mut c0 = ct.c0.automorphism(&auto);
            c0.add_assign(&v);
            v.recycle(pool);
            Ciphertext::new(c0, u, ct.scale)
        })
        .collect();
    for d in digits {
        d.recycle(pool);
    }
    out
}

/// `PtMatVecMult` with ModUp **and** ModDown hoisting (Figure 5c): one
/// `ModUp`, two `ModDown`s, independent of the diagonal count.
///
/// The plaintext diagonals are encoded directly in the raised basis
/// `Q_ℓ ∪ P`; products and sums accumulate there, and a single `ModDown`
/// per component finishes the job.
///
/// # Panics
///
/// Panics if a required Galois key is missing.
pub fn apply_hoisted(
    evaluator: &Evaluator,
    encoder: &Encoder,
    ct: &Ciphertext,
    lt: &LinearTransform,
    gk: &GaloisKeys,
) -> Ciphertext {
    let _span = telemetry::span("HoistedMatVec");
    let ctx = evaluator.context();
    let pool = ctx.scratch();
    let ell = ct.limb_count();
    let scale = ctx.params().scale();
    let digits = decompose_and_raise(ctx, &ct.c1);

    // Raised-basis accumulators for the keyswitched parts, base-basis
    // accumulator for the σ(c0)·pt parts.
    let mut acc_u: Option<fhe_math::poly::RnsPoly> = None;
    let mut acc_v: Option<fhe_math::poly::RnsPoly> = None;
    let mut acc_c0: Option<fhe_math::poly::RnsPoly> = None;
    let mut acc_c1_base: Option<fhe_math::poly::RnsPoly> = None;

    for (&d, diag) in &lt.diagonals {
        let pt_base = encoder.encode(diag, ell, scale).expect("diagonal encodes");
        if d == 0 {
            // No rotation: multiply both components in the base basis.
            let mut t0 = ct.c0.clone();
            t0.mul_assign_pointwise(&pt_base.poly);
            merge(&mut acc_c0, t0, pool);
            let mut t1 = ct.c1.clone();
            t1.mul_assign_pointwise(&pt_base.poly);
            merge(&mut acc_c1_base, t1, pool);
            continue;
        }
        let k = ctx.rotation_element(d as i64);
        let ksk = gk
            .get(k)
            .unwrap_or_else(|| panic!("missing Galois key for rotation {d}"));
        let auto = ctx.automorphism(k);
        let rotated_digits = automorph_digits_with(&digits, &auto, pool);
        let raised = inner_product(ctx, &rotated_digits, ksk);
        for rd in rotated_digits {
            rd.recycle(pool);
        }
        // Plaintext in the raised basis (ModDown hoisting).
        let pt_raised = encoder
            .encode_raised(diag, ell, scale)
            .expect("diagonal encodes");
        let mut u = raised.u;
        u.mul_assign_pointwise(&pt_raised.poly);
        merge(&mut acc_u, u, pool);
        let mut v = raised.v;
        v.mul_assign_pointwise(&pt_raised.poly);
        merge(&mut acc_v, v, pool);
        // σ(c0) part stays in the base basis.
        let mut c0_rot = ct.c0.automorphism(&auto);
        c0_rot.mul_assign_pointwise(&pt_base.poly);
        merge(&mut acc_c0, c0_rot, pool);
    }
    for d in digits {
        d.recycle(pool);
    }

    let md = ctx.moddown_context(ell, false);
    let mut c0 = acc_c0.expect("at least one diagonal");
    if let Some(v) = acc_v {
        let lowered = mod_down_with(&v, &md, pool);
        c0.add_assign(&lowered);
        lowered.recycle(pool);
        v.recycle(pool);
    }
    let mut c1 = match acc_u {
        Some(u) => {
            let lowered = mod_down_with(&u, &md, pool);
            u.recycle(pool);
            lowered
        }
        None => fhe_math::poly::RnsPoly::zero(
            ctx.level_basis(ell).clone(),
            fhe_math::poly::Representation::Evaluation,
        ),
    };
    if let Some(b) = acc_c1_base {
        c1.add_assign(&b);
        b.recycle(pool);
    }
    evaluator.rescale(&Ciphertext::new(c0, c1, ct.scale * scale))
}

fn merge(
    acc: &mut Option<fhe_math::poly::RnsPoly>,
    term: fhe_math::poly::RnsPoly,
    pool: &ScratchPool,
) {
    match acc {
        None => *acc = Some(term),
        Some(a) => {
            a.add_assign(&term);
            term.recycle(pool);
        }
    }
}

/// `PtMatVecMult` with the baby-step/giant-step schedule: diagonals
/// `d = g·n1 + b` are grouped so only `n1` (hoisted) baby rotations and
/// `⌈r/n1⌉` giant rotations are needed. The paper's §3.2 discusses the
/// baby/giant trade-off (key reads vs ciphertext reads); `n1` is the baby
/// dimension.
///
/// # Panics
///
/// Panics if `n1` is zero or a required Galois key is missing.
pub fn apply_bsgs(
    evaluator: &Evaluator,
    encoder: &Encoder,
    ct: &Ciphertext,
    lt: &LinearTransform,
    gk: &GaloisKeys,
    n1: usize,
) -> Ciphertext {
    assert!(n1 >= 1, "baby dimension must be positive");
    let _span = telemetry::span("BsgsMatVec");
    let ctx = evaluator.context();
    let ell = ct.limb_count();
    let scale = ctx.params().scale();
    let slots = lt.slots;

    // Group diagonals by giant index.
    let mut groups: BTreeMap<usize, Vec<(usize, &Vec<Complex>)>> = BTreeMap::new();
    for (&d, diag) in &lt.diagonals {
        groups.entry(d / n1).or_default().push((d % n1, diag));
    }
    // Baby rotations, hoisted.
    let baby_steps: Vec<i64> = (0..n1 as i64).collect();
    let babies = rotate_hoisted(evaluator, ct, &baby_steps, gk);

    let mut acc: Option<Ciphertext> = None;
    for (&g, entries) in &groups {
        let giant = g * n1;
        // Inner sum: Σ_b σ_{-giant}(diag_{giant+b}) ⊙ rot_b(ct).
        let mut inner: Option<Ciphertext> = None;
        for &(b, diag) in entries {
            // Pre-rotate the diagonal right by `giant` so the giant
            // rotation aligns it.
            let pre: Vec<Complex> = (0..slots)
                .map(|j| diag[(j + slots - giant % slots) % slots])
                .collect();
            let pt = encoder.encode(&pre, ell, scale).expect("diagonal encodes");
            let term = evaluator.mul_plain_no_rescale(&babies[b], &pt);
            inner = Some(match inner {
                None => term,
                Some(a) => evaluator.add(&a, &term),
            });
        }
        let inner = inner.expect("non-empty group");
        let rotated = if giant == 0 {
            inner
        } else {
            evaluator.rotate(&inner, giant as i64, gk)
        };
        acc = Some(match acc {
            None => rotated,
            Some(a) => evaluator.add(&a, &rotated),
        });
    }
    evaluator.rescale(&acc.expect("transform has at least one diagonal"))
}

/// The Galois keys required by [`apply_bsgs`] for a transform: baby steps
/// `1..n1` and giant steps `n1, 2n1, …`.
pub fn bsgs_required_steps(lt: &LinearTransform, n1: usize) -> Vec<i64> {
    let mut steps: Vec<i64> = (1..n1 as i64).collect();
    let mut giants: Vec<i64> = lt
        .diagonals
        .keys()
        .map(|&d| ((d / n1) * n1) as i64)
        .filter(|&g| g != 0)
        .collect();
    giants.sort_unstable();
    giants.dedup();
    steps.extend(giants);
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (
        Arc<CkksContext>,
        Encoder,
        Encryptor,
        Decryptor,
        Evaluator,
        KeyGenerator,
        StdRng,
    ) {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_degree(6)
                .levels(4)
                .scale_bits(32)
                .first_modulus_bits(40)
                .special_modulus_bits(36)
                .dnum(2)
                .build()
                .unwrap(),
        );
        (
            ctx.clone(),
            Encoder::new(ctx.clone()),
            Encryptor::new(ctx.clone()),
            Decryptor::new(ctx.clone()),
            Evaluator::new(ctx.clone()),
            KeyGenerator::new(ctx),
            StdRng::seed_from_u64(99),
        )
    }

    fn test_matrix(n: usize) -> Vec<Vec<Complex>> {
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        // Banded matrix: a few nonzero diagonals.
                        let d = (j + n - i) % n;
                        if d == 0 || d == 1 || d == 5 {
                            Complex::new(
                                0.1 + ((i * 7 + j * 3) % 11) as f64 * 0.05,
                                ((i + 2 * j) % 5) as f64 * 0.03 - 0.06,
                            )
                        } else {
                            Complex::default()
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn diagonal_extraction_matches_dense_product() {
        let n = 8;
        let m = test_matrix(n);
        let lt = LinearTransform::from_matrix(&m);
        assert_eq!(lt.diagonal_count(), 3);
        let v: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -0.5)).collect();
        let via_diag = lt.apply_plain(&v);
        for i in 0..n {
            let mut dense = Complex::default();
            for j in 0..n {
                dense = dense + m[i][j] * v[j];
            }
            assert!((via_diag[i] - dense).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn hoisted_rotations_match_plain_rotations() {
        let (ctx, encoder, encryptor, decryptor, evaluator, keygen, mut rng) = setup();
        let sk = keygen.secret_key(&mut rng);
        let gk = keygen.galois_keys(&mut rng, &sk, &[1, 2, 7], false);
        let slots = encoder.slots();
        let v: Vec<Complex> = (0..slots)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), 0.1))
            .collect();
        let pt = encoder.encode(&v, 3, ctx.params().scale()).unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);

        let hoisted = rotate_hoisted(&evaluator, &ct, &[0, 1, 2, 7], &gk);
        for (idx, &steps) in [0i64, 1, 2, 7].iter().enumerate() {
            let direct = evaluator.rotate(&ct, steps, &gk);
            let a = encoder.decode(&decryptor.decrypt(&hoisted[idx], &sk));
            let b = encoder.decode(&decryptor.decrypt(&direct, &sk));
            for (x, y) in a.iter().zip(&b) {
                assert!((*x - *y).abs() < 1e-4, "steps {steps}");
            }
        }
    }

    #[test]
    fn all_three_matvec_schedules_agree() {
        let (ctx, encoder, encryptor, decryptor, evaluator, keygen, mut rng) = setup();
        let slots = encoder.slots();
        let m = test_matrix(slots);
        let lt = LinearTransform::from_matrix(&m);
        let sk = keygen.secret_key(&mut rng);
        let mut steps: Vec<i64> = lt.offsets().iter().map(|&d| d as i64).collect();
        steps.extend(bsgs_required_steps(&lt, 4));
        let gk = keygen.galois_keys(&mut rng, &sk, &steps, false);

        let v: Vec<Complex> = (0..slots)
            .map(|i| Complex::new(0.02 * i as f64 - 0.3, (i as f64 * 0.4).cos() * 0.2))
            .collect();
        let pt = encoder.encode(&v, 3, ctx.params().scale()).unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        let want = lt.apply_plain(&v);

        let naive = apply_naive(&evaluator, &encoder, &ct, &lt, &gk);
        let hoisted = apply_hoisted(&evaluator, &encoder, &ct, &lt, &gk);
        let bsgs = apply_bsgs(&evaluator, &encoder, &ct, &lt, &gk, 4);

        for (name, result) in [("naive", naive), ("hoisted", hoisted), ("bsgs", bsgs)] {
            let got = encoder.decode(&decryptor.decrypt(&result, &sk));
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((*g - *w).abs() < 5e-4, "{name}: slot {i}: {g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn hoisted_matvec_consumes_one_level() {
        let (ctx, encoder, encryptor, _decryptor, evaluator, keygen, mut rng) = setup();
        let slots = encoder.slots();
        let lt = LinearTransform::from_matrix(&test_matrix(slots));
        let sk = keygen.secret_key(&mut rng);
        let steps: Vec<i64> = lt.offsets().iter().map(|&d| d as i64).collect();
        let gk = keygen.galois_keys(&mut rng, &sk, &steps, false);
        let pt = encoder
            .encode(
                &vec![Complex::new(0.5, 0.0); slots],
                3,
                ctx.params().scale(),
            )
            .unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        let out = apply_hoisted(&evaluator, &encoder, &ct, &lt, &gk);
        assert_eq!(out.limb_count(), 2);
        assert!((out.scale() / ct.scale() - 1.0).abs() < 0.01);
    }
}
