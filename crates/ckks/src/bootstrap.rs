//! CKKS bootstrapping (Algorithm 4 of the MAD paper).
//!
//! The pipeline refreshes an exhausted ciphertext's modulus:
//!
//! 1. **ModRaise** — reinterpret the (centered) coefficients over the full
//!    modulus chain. The plaintext becomes `Δ·m + q_0·k` for a small-
//!    coefficient polynomial `k`.
//! 2. **CoeffToSlot** — homomorphically apply the inverse canonical-
//!    embedding transform so the *coefficients* appear in the *slots*.
//!    Factored into `fftIter` grouped butterfly matrices, each applied with
//!    the hoisted `PtMatVecMult` of [`crate::hoisting`].
//! 3. **EvalMod** — approximate reduction mod `q_0` via a scaled sine,
//!    evaluated as a Chebyshev series on the real and imaginary parts.
//! 4. **SlotToCoeff** — the forward transform, returning the cleaned
//!    coefficients to coefficient position.
//!
//! The factorization degree (`fftIter`), sine degree and range are set by
//! [`BootstrapConfig`] — these are exactly the knobs the paper's parameter
//! search (Table 5) optimizes for memory traffic.

use crate::context::CkksContext;
use crate::encoding::Encoder;
use crate::hoisting::{apply_hoisted, LinearTransform};
use crate::keys::{GaloisKeys, RelinKey};
use crate::ops::Evaluator;
use crate::plaintext::Ciphertext;
use crate::polyeval::{evaluate_chebyshev, ChebyshevSeries};
use fhe_math::cfft::{Complex, SpecialFft};
use fhe_math::poly::RnsPoly;
use fhe_math::telemetry;
use std::fmt;
use std::sync::Arc;

/// Tunable bootstrapping parameters.
#[derive(Clone, Debug)]
pub struct BootstrapConfig {
    /// Number of grouped DFT matrices per linear phase (the paper's
    /// `fftIter`).
    pub fft_iters: usize,
    /// Degree of the Chebyshev approximation of the scaled sine.
    pub eval_mod_degree: usize,
    /// Bound `K` on the `q_0`-multiples introduced by ModRaise (requires a
    /// sparse secret; `‖k‖_∞ ≤ K` must hold with overwhelming probability).
    pub k_range: f64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            fft_iters: 2,
            eval_mod_degree: 119,
            k_range: 12.0,
        }
    }
}

/// Precomputed bootstrapping machinery for one context.
pub struct Bootstrapper {
    ctx: Arc<CkksContext>,
    config: BootstrapConfig,
    coeff_to_slot: Vec<LinearTransform>,
    slot_to_coeff: Vec<LinearTransform>,
    sine: ChebyshevSeries,
}

impl fmt::Debug for Bootstrapper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bootstrapper")
            .field("fft_iters", &self.config.fft_iters)
            .field("sine_degree", &self.config.eval_mod_degree)
            .field("k_range", &self.config.k_range)
            .finish()
    }
}

/// Builds the dense matrix of a pipeline of FFT-stage closures by pushing
/// basis vectors through it.
fn matrix_of(n: usize, apply: impl Fn(&mut [Complex])) -> Vec<Vec<Complex>> {
    let mut mat = vec![vec![Complex::default(); n]; n];
    for k in 0..n {
        let mut v = vec![Complex::default(); n];
        v[k] = Complex::new(1.0, 0.0);
        apply(&mut v);
        for (i, row) in mat.iter_mut().enumerate() {
            row[k] = v[i];
        }
    }
    mat
}

/// Splits `count` FFT stages into `groups` contiguous chunks, sized as
/// evenly as possible.
fn chunk_stages(count: usize, groups: usize) -> Vec<usize> {
    let groups = groups.min(count).max(1);
    let base = count / groups;
    let extra = count % groups;
    (0..groups).map(|g| base + usize::from(g < extra)).collect()
}

impl Bootstrapper {
    /// Precomputes the grouped DFT matrices and the sine approximation.
    ///
    /// # Panics
    ///
    /// Panics if `fft_iters` is zero or exceeds `log2(slots)`, or if the
    /// modulus chain is too short for the pipeline's depth.
    pub fn new(ctx: Arc<CkksContext>, config: BootstrapConfig) -> Self {
        let slots = ctx.params().slots();
        let log_slots = slots.trailing_zeros() as usize;
        assert!(
            config.fft_iters >= 1 && config.fft_iters <= log_slots.max(1),
            "fftIter must be in [1, log2(slots)]"
        );
        let fft = SpecialFft::new(slots);

        // Forward stages in application order: bit-reverse, then widths
        // 2, 4, …, n. SlotToCoeff groups them; CoeffToSlot groups the
        // inverse stages (widths n … 2, then bit-reverse, then 1/n).
        let chunks = chunk_stages(log_slots, config.fft_iters);
        let mut slot_to_coeff = Vec::with_capacity(chunks.len());
        let mut stage = 0usize;
        for (gi, &c) in chunks.iter().enumerate() {
            let first = gi == 0;
            let widths: Vec<usize> = (stage..stage + c).map(|s| 1usize << (s + 1)).collect();
            stage += c;
            let mat = matrix_of(slots, |v| {
                if first {
                    fft.permute_bit_reverse(v);
                }
                for &w in &widths {
                    fft.forward_stage(v, w);
                }
            });
            slot_to_coeff.push(LinearTransform::from_matrix(&mat));
        }

        let inv_chunks = chunk_stages(log_slots, config.fft_iters);
        let mut coeff_to_slot = Vec::with_capacity(inv_chunks.len());
        let mut done = 0usize;
        for (gi, &c) in inv_chunks.iter().enumerate() {
            let last = gi == inv_chunks.len() - 1;
            // Inverse stages run from width n downward.
            let widths: Vec<usize> = (done..done + c).map(|s| slots >> s).collect();
            done += c;
            let mat = matrix_of(slots, |v| {
                for &w in &widths {
                    fft.inverse_stage(v, w);
                }
                if last {
                    fft.permute_bit_reverse(v);
                    let sc = 1.0 / slots as f64;
                    for x in v.iter_mut() {
                        *x = x.scale(sc);
                    }
                }
            });
            coeff_to_slot.push(LinearTransform::from_matrix(&mat));
        }

        // Scaled sine: f(t) = (ratio/2π)·sin(2πt/ratio) on ±(K+1)·ratio,
        // where ratio = q_0/Δ. Its fixed points near t = q·k + Δm recover m.
        let ratio = ctx.q_basis().modulus(0).value() as f64 / ctx.params().scale();
        let bound = (config.k_range + 1.0) * ratio;
        let sine = ChebyshevSeries::interpolate(
            move |t| {
                ratio / (2.0 * std::f64::consts::PI)
                    * (2.0 * std::f64::consts::PI * t / ratio).sin()
            },
            config.eval_mod_degree,
            -bound,
            bound,
        );

        Self {
            ctx,
            config,
            coeff_to_slot,
            slot_to_coeff,
            sine,
        }
    }

    /// A conservative estimate of the limb count consumed by one
    /// bootstrap: the two linear phases, the real/imag split and
    /// recombination, and the sine evaluation (whose BSGS ladder plus
    /// recursive recombination costs roughly twice `log2(degree)`).
    pub fn depth_estimate(config: &BootstrapConfig) -> usize {
        let d = config.eval_mod_degree.max(1);
        let log_d = (usize::BITS - d.leading_zeros()) as usize;
        let sine_depth = 2 * log_d + 2;
        2 * config.fft_iters + 2 + sine_depth
    }

    /// The configuration in use.
    pub fn config(&self) -> &BootstrapConfig {
        &self.config
    }

    /// Rotation steps required by the hoisted matrix products; generate
    /// Galois keys for these (plus conjugation) before bootstrapping.
    pub fn required_rotations(&self) -> Vec<i64> {
        let mut steps: Vec<i64> = self
            .coeff_to_slot
            .iter()
            .chain(&self.slot_to_coeff)
            .flat_map(|lt| lt.offsets())
            .filter(|&d| d != 0)
            .map(|d| d as i64)
            .collect();
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// **ModRaise**: reinterprets a low-level ciphertext over the full
    /// modulus chain. The plaintext gains an additive `q_0·k` term that
    /// [`Bootstrapper::eval_mod`] later removes.
    ///
    /// # Panics
    ///
    /// Panics if the input is not at exactly one limb (callers should
    /// compute until the chain is exhausted first).
    pub fn mod_raise(&self, ct: &Ciphertext) -> Ciphertext {
        assert_eq!(
            ct.limb_count(),
            1,
            "ModRaise expects an exhausted (single-limb) ciphertext"
        );
        let _span = telemetry::span("Bootstrap.ModRaise");
        let full = self.ctx.level_basis(self.ctx.params().levels()).clone();
        let n = self.ctx.params().degree();
        let q0 = *self.ctx.q_basis().modulus(0);
        let raise = |p: &RnsPoly| {
            let mut coeff = p.clone();
            coeff.to_coeff();
            let signed: Vec<i64> = (0..n).map(|i| q0.to_centered(coeff.limb(0)[i])).collect();
            let mut out = RnsPoly::from_signed_coeffs(full.clone(), &signed);
            out.to_eval();
            out
        };
        Ciphertext::new(raise(&ct.c0), raise(&ct.c1), ct.scale)
    }

    /// **CoeffToSlot**: `fftIter` hoisted matrix products.
    pub fn coeff_to_slot(
        &self,
        evaluator: &Evaluator,
        encoder: &Encoder,
        ct: &Ciphertext,
        gk: &GaloisKeys,
    ) -> Ciphertext {
        let _span = telemetry::span("Bootstrap.CoeffToSlot");
        let mut acc = ct.clone();
        for lt in &self.coeff_to_slot {
            acc = apply_hoisted(evaluator, encoder, &acc, lt, gk);
        }
        acc
    }

    /// **SlotToCoeff**: `fftIter` hoisted matrix products.
    pub fn slot_to_coeff(
        &self,
        evaluator: &Evaluator,
        encoder: &Encoder,
        ct: &Ciphertext,
        gk: &GaloisKeys,
    ) -> Ciphertext {
        let _span = telemetry::span("Bootstrap.SlotToCoeff");
        let mut acc = ct.clone();
        for lt in &self.slot_to_coeff {
            acc = apply_hoisted(evaluator, encoder, &acc, lt, gk);
        }
        acc
    }

    /// **EvalMod**: the scaled-sine approximation of reduction mod `q_0`,
    /// applied to a ciphertext holding real values in `±(K+1)·q_0/Δ`.
    pub fn eval_mod(&self, evaluator: &Evaluator, ct: &Ciphertext, rlk: &RelinKey) -> Ciphertext {
        let _span = telemetry::span("Bootstrap.EvalMod");
        evaluate_chebyshev(evaluator, rlk, ct, &self.sine)
    }

    /// Full bootstrap: raises the modulus of an exhausted ciphertext and
    /// homomorphically removes the `q_0·k` residue, returning a ciphertext
    /// of the same message with fresh limbs to spend.
    ///
    /// # Panics
    ///
    /// Panics if the Galois keys are missing required rotations or the
    /// conjugation key.
    pub fn bootstrap(
        &self,
        evaluator: &Evaluator,
        encoder: &Encoder,
        ct: &Ciphertext,
        gk: &GaloisKeys,
        rlk: &RelinKey,
    ) -> Ciphertext {
        let _span = telemetry::span("Bootstrap");
        assert!(
            self.ctx.params().levels() > Self::depth_estimate(&self.config),
            "modulus chain too short: bootstrapping needs > {} limbs",
            Self::depth_estimate(&self.config)
        );
        let scale = self.ctx.params().scale();
        let raised = self.mod_raise(ct);
        let slotted = self.coeff_to_slot(evaluator, encoder, &raised, gk);

        // Split into real and imaginary parts: the slots now hold
        // c_j + i·c_{j+n} and EvalMod acts on real values.
        let conj = evaluator.conjugate(&slotted, gk);
        let sum = evaluator.add(&slotted, &conj);
        let real = evaluator.rescale(&evaluator.mul_scalar_no_rescale(&sum, 0.5, scale));
        let diff = evaluator.sub(&slotted, &conj);
        let imag = evaluator.rescale(&evaluator.mul_complex_scalar_no_rescale(
            &diff,
            Complex::new(0.0, -0.5),
            scale,
        ));

        let real_m = self.eval_mod(evaluator, &real, rlk);
        let imag_m = self.eval_mod(evaluator, &imag, rlk);

        // Recombine: z = real + i·imag, burning the same prime on both
        // paths so the scales match exactly.
        let real_c = evaluator.rescale(&evaluator.mul_scalar_no_rescale(&real_m, 1.0, scale));
        let imag_c = evaluator.rescale(&evaluator.mul_complex_scalar_no_rescale(
            &imag_m,
            Complex::new(0.0, 1.0),
            scale,
        ));
        let combined = evaluator.add(&real_c, &imag_c);

        self.slot_to_coeff(evaluator, encoder, &combined, gk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_chunking_is_balanced() {
        assert_eq!(chunk_stages(6, 2), vec![3, 3]);
        assert_eq!(chunk_stages(6, 3), vec![2, 2, 2]);
        assert_eq!(chunk_stages(5, 2), vec![3, 2]);
        assert_eq!(chunk_stages(4, 1), vec![4]);
        assert_eq!(chunk_stages(3, 6), vec![1, 1, 1]);
    }

    #[test]
    fn grouped_matrices_compose_to_the_full_transform() {
        let n = 16;
        let fft = SpecialFft::new(n);
        // Recreate the grouping logic at fft_iters = 2 and check that the
        // product of grouped maps equals the monolithic transform.
        let groups = chunk_stages(4, 2);
        let mut stage = 0usize;
        let mut v: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64 * 0.2 - 1.0, (i as f64).sin()))
            .collect();
        let mut expect = v.clone();
        fft.forward(&mut expect);
        for (gi, &c) in groups.iter().enumerate() {
            let widths: Vec<usize> = (stage..stage + c).map(|s| 1usize << (s + 1)).collect();
            stage += c;
            let first = gi == 0;
            let mat = matrix_of(n, |x| {
                if first {
                    fft.permute_bit_reverse(x);
                }
                for &w in &widths {
                    fft.forward_stage(x, w);
                }
            });
            let lt = LinearTransform::from_matrix(&mat);
            v = lt.apply_plain(&v);
        }
        for (a, b) in v.iter().zip(&expect) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_grouping_reverses_forward_grouping() {
        let n = 8;
        let fft = SpecialFft::new(n);
        let mut v: Vec<Complex> = (0..n)
            .map(|i| Complex::new(0.5 - 0.1 * i as f64, 0.3 * i as f64))
            .collect();
        let orig = v.clone();
        fft.forward(&mut v);
        // Inverse via grouped matrices at fft_iters = 3.
        let chunks = chunk_stages(3, 3);
        let mut done = 0usize;
        for (gi, &c) in chunks.iter().enumerate() {
            let last = gi == chunks.len() - 1;
            let widths: Vec<usize> = (done..done + c).map(|s| n >> s).collect();
            done += c;
            let mat = matrix_of(n, |x| {
                for &w in &widths {
                    fft.inverse_stage(x, w);
                }
                if last {
                    fft.permute_bit_reverse(x);
                    for y in x.iter_mut() {
                        *y = y.scale(1.0 / n as f64);
                    }
                }
            });
            let lt = LinearTransform::from_matrix(&mat);
            v = lt.apply_plain(&v);
        }
        for (a, b) in v.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn sine_series_fixes_lattice_points() {
        // f(Δ·m + q·k scaled by 1/Δ) ≈ m for |m| ≤ 1, |k| ≤ K.
        let ratio = 32.0; // q0/Δ
        let bound = 13.0 * ratio;
        let series = ChebyshevSeries::interpolate(
            move |t| {
                ratio / (2.0 * std::f64::consts::PI)
                    * (2.0 * std::f64::consts::PI * t / ratio).sin()
            },
            119,
            -bound,
            bound,
        );
        for k in -12i32..=12 {
            for &m in &[-0.9f64, -0.3, 0.0, 0.4, 0.8] {
                let t = m + k as f64 * ratio;
                let got = series.eval_plain(t);
                assert!((got - m).abs() < 0.02, "k={k} m={m}: got {got}");
            }
        }
    }
}
