//! The homomorphic operations of Table 2: `Add`, `PtAdd`, `PtMult`, `Mult`,
//! `Rotate`, `Conjugate`, plus `Rescale` and scalar conveniences.
//!
//! Two implementations of `Mult` are provided: [`Evaluator::mul`] follows
//! the standard sequence (KeySwitch with its internal `ModDown`, then
//! `Rescale` — Figure 4a), while [`Evaluator::mul_merged`] applies the
//! paper's **ModDown merge** (Figure 4c): the additions happen in the
//! raised basis via `PModUp` and a *single* `ModDown` drops `P` and the
//! rescaling prime together. Both compute the same function; the test suite
//! checks they agree to within rounding noise.
//!
//! Operations mutate their owned intermediates in place and return
//! short-lived buffers to the context's scratch pool, so steady-state
//! evaluation recycles storage instead of allocating per call.

use crate::context::CkksContext;
use crate::keys::{GaloisKeys, RelinKey, SwitchingKey};
use crate::plaintext::{Ciphertext, Plaintext};
use fhe_math::poly::{mod_down_with, pmod_up_with, rescale_with, RnsPoly};
use fhe_math::telemetry;
use std::fmt;
use std::sync::Arc;

/// Relative scale mismatch tolerated by additions (CKKS scales drift by
/// `q_i/Δ ≈ 1` across rescaling paths; the drift is absorbed as approximate
/// arithmetic error, the standard practice in RNS-CKKS libraries).
const SCALE_TOLERANCE: f64 = 1e-4;

/// Stateless executor of homomorphic operations over a shared context.
pub struct Evaluator {
    ctx: Arc<CkksContext>,
}

impl fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Evaluator({:?})", self.ctx)
    }
}

impl Evaluator {
    /// Creates an evaluator for the context.
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        Self { ctx }
    }

    /// The bound context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    fn check_scales(a: f64, b: f64) {
        assert!(
            (a / b - 1.0).abs() < SCALE_TOLERANCE,
            "scale mismatch: 2^{:.3} vs 2^{:.3}",
            a.log2(),
            b.log2()
        );
    }

    /// Aligns two ciphertexts to a common limb count by dropping limbs of
    /// the fresher one (modulus reduction; scale unchanged).
    pub fn align_levels(&self, a: &Ciphertext, b: &Ciphertext) -> (Ciphertext, Ciphertext) {
        let ell = a.limb_count().min(b.limb_count());
        (self.drop_to(a, ell), self.drop_to(b, ell))
    }

    /// Drops `ct` to `ell` limbs (no-op if already there).
    pub fn drop_to(&self, ct: &Ciphertext, ell: usize) -> Ciphertext {
        if ct.limb_count() == ell {
            ct.clone()
        } else {
            Ciphertext::new(ct.c0.drop_to(ell), ct.c1.drop_to(ell), ct.scale)
        }
    }

    /// `Add`: homomorphic addition of two ciphertexts.
    ///
    /// # Panics
    ///
    /// Panics if the scales disagree beyond tolerance.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Self::check_scales(a.scale, b.scale);
        let (mut a, b) = self.align_levels(a, b);
        a.c0.add_assign(&b.c0);
        a.c1.add_assign(&b.c1);
        a
    }

    /// Homomorphic subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the scales disagree beyond tolerance.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Self::check_scales(a.scale, b.scale);
        let (mut a, b) = self.align_levels(a, b);
        a.c0.sub_assign(&b.c0);
        a.c1.sub_assign(&b.c1);
        a
    }

    /// Homomorphic negation.
    pub fn neg(&self, a: &Ciphertext) -> Ciphertext {
        let mut out = a.clone();
        out.c0.negate();
        out.c1.negate();
        out
    }

    /// `PtAdd`: adds a plaintext to a ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if the scales disagree beyond tolerance.
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        Self::check_scales(a.scale, pt.scale);
        let ell = a.limb_count().min(pt.limb_count());
        let mut a = self.drop_to(a, ell);
        if pt.limb_count() == ell {
            a.c0.add_assign(&pt.poly);
        } else {
            a.c0.add_assign(&pt.poly.drop_to(ell));
        }
        a
    }

    /// Subtracts a plaintext from a ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if the scales disagree beyond tolerance.
    pub fn sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        Self::check_scales(a.scale, pt.scale);
        let ell = a.limb_count().min(pt.limb_count());
        let mut a = self.drop_to(a, ell);
        if pt.limb_count() == ell {
            a.c0.sub_assign(&pt.poly);
        } else {
            a.c0.sub_assign(&pt.poly.drop_to(ell));
        }
        a
    }

    /// `PtMult` without the trailing rescale: multiplies by a plaintext,
    /// leaving the product at scale `scale_ct · scale_pt`.
    pub fn mul_plain_no_rescale(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let ell = a.limb_count().min(pt.limb_count());
        let mut a = self.drop_to(a, ell);
        if pt.limb_count() == ell {
            a.c0.mul_assign_pointwise(&pt.poly);
            a.c1.mul_assign_pointwise(&pt.poly);
        } else {
            let p = pt.poly.drop_to(ell);
            a.c0.mul_assign_pointwise(&p);
            a.c1.mul_assign_pointwise(&p);
        }
        a.scale *= pt.scale;
        a
    }

    /// `PtMult` (Table 2): plaintext multiplication followed by `Rescale`.
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let prod = self.mul_plain_no_rescale(a, pt);
        let out = self.rescale(&prod);
        prod.recycle(self.ctx.scratch());
        out
    }

    /// Multiplies by a real scalar at the given auxiliary scale, without
    /// rescaling (scale becomes `ct.scale · aux_scale`).
    pub fn mul_scalar_no_rescale(&self, a: &Ciphertext, c: f64, aux_scale: f64) -> Ciphertext {
        let scaled = (c * aux_scale).round() as i64;
        let factors: Vec<u64> =
            a.c0.basis()
                .moduli()
                .iter()
                .map(|m| m.from_i64(scaled))
                .collect();
        let mut out = a.clone();
        out.c0.mul_scalar_per_limb_assign(&factors);
        out.c1.mul_scalar_per_limb_assign(&factors);
        out.scale *= aux_scale;
        out
    }

    /// Multiplies by a complex scalar at the given auxiliary scale, without
    /// rescaling. A constant complex slot vector `z` encodes to the
    /// polynomial `Re(z) + Im(z)·x^{N/2}`.
    pub fn mul_complex_scalar_no_rescale(
        &self,
        a: &Ciphertext,
        z: fhe_math::cfft::Complex,
        aux_scale: f64,
    ) -> Ciphertext {
        let n = self.ctx.params().degree();
        let mut coeffs = vec![0i64; n];
        coeffs[0] = (z.re * aux_scale).round() as i64;
        coeffs[n / 2] = (z.im * aux_scale).round() as i64;
        let basis = a.c0.basis().clone();
        let mut mult = RnsPoly::from_signed_coeffs(basis, &coeffs);
        mult.to_eval();
        let mut out = a.clone();
        out.c0.mul_assign_pointwise(&mult);
        out.c1.mul_assign_pointwise(&mult);
        out.scale *= aux_scale;
        out
    }

    /// Adds a real scalar (same value in every slot).
    pub fn add_scalar(&self, a: &Ciphertext, c: f64) -> Ciphertext {
        let _span = telemetry::span("AddConst");
        let scaled = (c * a.scale).round() as i64;
        let basis = a.c0.basis().clone();
        // A constant slot vector encodes to the constant polynomial, whose
        // evaluation representation is the constant in every position.
        let mut out = a.clone();
        for i in 0..out.c0.limb_count() {
            let m = *basis.modulus(i);
            let v = m.from_i64(scaled);
            for x in out.c0.limb_mut(i).iter_mut() {
                *x = m.add(*x, v);
            }
        }
        telemetry::record_ops(0, (out.c0.limb_count() * self.ctx.params().degree()) as u64);
        out
    }

    /// `Rescale`: divides by the last limb prime and drops it.
    pub fn rescale(&self, a: &Ciphertext) -> Ciphertext {
        let _span = telemetry::span("Rescale");
        let pool = self.ctx.scratch();
        let q_last = a.c0.basis().modulus(a.limb_count() - 1).value() as f64;
        Ciphertext::new(
            rescale_with(&a.c0, pool),
            rescale_with(&a.c1, pool),
            a.scale / q_last,
        )
    }

    /// `Mult` without relinearization or rescale: the raw tensor
    /// `(d_0, d_1, d_2)`.
    fn tensor(&self, a: &Ciphertext, b: &Ciphertext) -> (RnsPoly, RnsPoly, RnsPoly, f64) {
        let (a, b) = self.align_levels(a, b);
        let scale = a.scale * b.scale;
        // Two of the four legs reuse the aligned copies' own storage.
        let mut d1 = a.c0.clone();
        d1.mul_assign_pointwise(&b.c1);
        let mut d0 = a.c0;
        d0.mul_assign_pointwise(&b.c0);
        let mut d2 = a.c1.clone();
        d2.mul_assign_pointwise(&b.c1);
        let mut d1b = a.c1;
        d1b.mul_assign_pointwise(&b.c0);
        d1.add_assign(&d1b);
        d1b.recycle(self.ctx.scratch());
        (d0, d1, d2, scale)
    }

    /// `Mult` (Table 2), standard sequence (Figure 4a): tensor,
    /// relinearize (KeySwitch with its own `ModDown`), then `Rescale`.
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext, rlk: &RelinKey) -> Ciphertext {
        self.mul_with_key(a, b, rlk.switching_key())
    }

    /// [`Evaluator::mul`] taking the raw `s² → s` switching key — the form
    /// a serving runtime holds after expanding a cached compressed key,
    /// where no [`RelinKey`] wrapper exists.
    pub fn mul_with_key(&self, a: &Ciphertext, b: &Ciphertext, ksk: &SwitchingKey) -> Ciphertext {
        let _span = telemetry::span("Mult");
        let pool = self.ctx.scratch();
        let (mut d0, mut d1, d2, scale) = self.tensor(a, b);
        let (v, u) = crate::keyswitch::keyswitch(&self.ctx, &d2, ksk);
        d2.recycle(pool);
        d0.add_assign(&v);
        d1.add_assign(&u);
        v.recycle(pool);
        u.recycle(pool);
        let prod = Ciphertext::new(d0, d1, scale);
        let out = self.rescale(&prod);
        prod.recycle(pool);
        out
    }

    /// `Mult` with the **ModDown merge** optimization (Figure 4c): the
    /// tensor legs are lifted to the raised basis with the free `PModUp`,
    /// added to the key-switch intermediate, and a single `ModDown` divides
    /// by `P·q_{ℓ-1}` — saving one orientation switch and `ℓ` NTTs.
    pub fn mul_merged(&self, a: &Ciphertext, b: &Ciphertext, rlk: &RelinKey) -> Ciphertext {
        self.mul_merged_with_key(a, b, rlk.switching_key())
    }

    /// [`Evaluator::mul_merged`] taking the raw switching key (see
    /// [`Evaluator::mul_with_key`]).
    pub fn mul_merged_with_key(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        ksk: &SwitchingKey,
    ) -> Ciphertext {
        let _span = telemetry::span("MultMerged");
        let pool = self.ctx.scratch();
        let (d0, d1, d2, scale) = self.tensor(a, b);
        let ell = d0.limb_count();
        assert!(
            ell >= 2,
            "merged multiplication needs a limb to rescale into"
        );
        let digits = crate::keyswitch::decompose_and_raise(&self.ctx, &d2);
        let mut raised = crate::keyswitch::inner_product(&self.ctx, &digits, ksk);
        for d in digits {
            d.recycle(pool);
        }
        d2.recycle(pool);
        // Lift the linear legs: Add in the raised basis (PModUp is free).
        let raised_basis = self.ctx.raised_basis(ell);
        let lifted = {
            let _s = telemetry::span("PModUp");
            pmod_up_with(&d0, raised_basis.clone(), pool)
        };
        raised.v.add_assign(&lifted);
        lifted.recycle(pool);
        d0.recycle(pool);
        let lifted = {
            let _s = telemetry::span("PModUp");
            pmod_up_with(&d1, raised_basis.clone(), pool)
        };
        raised.u.add_assign(&lifted);
        lifted.recycle(pool);
        d1.recycle(pool);
        // One ModDown dropping {q_{ℓ-1}} ∪ P.
        let md = self.ctx.moddown_context(ell, true);
        let q_last = self.ctx.q_basis().modulus(ell - 1).value() as f64;
        let out = Ciphertext::new(
            mod_down_with(&raised.v, &md, pool),
            mod_down_with(&raised.u, &md, pool),
            scale / q_last,
        );
        raised.recycle(pool);
        out
    }

    /// Squares a ciphertext (standard path).
    pub fn square(&self, a: &Ciphertext, rlk: &RelinKey) -> Ciphertext {
        self.mul(a, a, rlk)
    }

    /// Applies the Galois automorphism `k` with its switching key.
    pub fn automorphism(&self, a: &Ciphertext, k: u64, ksk: &SwitchingKey) -> Ciphertext {
        let pool = self.ctx.scratch();
        let auto = self.ctx.automorphism(k);
        let mut c0 = RnsPoly::zero_pooled(a.c0.basis().clone(), a.c0.representation(), pool);
        a.c0.automorphism_into(&auto, &mut c0);
        let mut c1 = RnsPoly::zero_pooled(a.c1.basis().clone(), a.c1.representation(), pool);
        a.c1.automorphism_into(&auto, &mut c1);
        let (v, u) = crate::keyswitch::keyswitch(&self.ctx, &c1, ksk);
        c1.recycle(pool);
        c0.add_assign(&v);
        v.recycle(pool);
        Ciphertext::new(c0, u, a.scale)
    }

    /// `Rotate` (Table 2): rotates the slot vector left by `steps`.
    ///
    /// # Panics
    ///
    /// Panics if the Galois key for this rotation was not generated.
    pub fn rotate(&self, a: &Ciphertext, steps: i64, gk: &GaloisKeys) -> Ciphertext {
        if steps == 0 {
            return a.clone();
        }
        let _span = telemetry::span("Rotate");
        let k = self.ctx.rotation_element(steps);
        let ksk = gk
            .get(k)
            .unwrap_or_else(|| panic!("missing Galois key for rotation {steps}"));
        self.automorphism(a, k, ksk)
    }

    /// Sums all `2^log_span` leading slots into every slot of the result
    /// (the rotate-and-add fold used by inner products and mean
    /// reductions). Requires Galois keys for rotations `1, 2, 4, …`.
    ///
    /// # Panics
    ///
    /// Panics if a required Galois key is missing or `log_span` exceeds
    /// the slot count's log.
    pub fn sum_slots(&self, a: &Ciphertext, log_span: u32, gk: &GaloisKeys) -> Ciphertext {
        let slots = self.ctx.params().slots();
        assert!(
            (1usize << log_span) <= slots,
            "span 2^{log_span} exceeds {slots} slots"
        );
        let mut acc = a.clone();
        for i in 0..log_span {
            let rotated = self.rotate(&acc, 1i64 << i, gk);
            acc = self.add(&acc, &rotated);
            rotated.recycle(self.ctx.scratch());
        }
        acc
    }

    /// `Conjugate` (Table 2): complex-conjugates every slot.
    ///
    /// # Panics
    ///
    /// Panics if the conjugation key was not generated.
    pub fn conjugate(&self, a: &Ciphertext, gk: &GaloisKeys) -> Ciphertext {
        let k = self.ctx.conjugation_element();
        let ksk = gk.get(k).expect("missing conjugation key");
        self.automorphism(a, k, ksk)
    }
}
