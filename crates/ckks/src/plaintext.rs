//! Plaintext and ciphertext containers.

use fhe_math::poly::RnsPoly;
use fhe_math::telemetry::OperandClass;
use std::fmt;

/// An encoded (unencrypted) CKKS message: a ring element tagged with its
/// scaling factor.
#[derive(Clone)]
pub struct Plaintext {
    /// The encoded polynomial (evaluation representation).
    pub(crate) poly: RnsPoly,
    /// The scaling factor `Δ` applied during encoding.
    pub(crate) scale: f64,
}

impl fmt::Debug for Plaintext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Plaintext")
            .field("limbs", &self.poly.limb_count())
            .field("log2_scale", &self.scale.log2())
            .finish()
    }
}

impl Plaintext {
    /// The underlying ring element.
    pub fn poly(&self) -> &RnsPoly {
        &self.poly
    }

    /// The scaling factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Current limb count.
    pub fn limb_count(&self) -> usize {
        self.poly.limb_count()
    }
}

/// A CKKS ciphertext `(c_0, c_1)` with `Dec(ct) = c_0 + c_1·s`.
///
/// Both components are kept in evaluation representation over the same
/// level basis; `scale` tracks the plaintext scaling factor through
/// multiplications and rescalings.
#[derive(Clone)]
pub struct Ciphertext {
    pub(crate) c0: RnsPoly,
    pub(crate) c1: RnsPoly,
    pub(crate) scale: f64,
}

impl fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ciphertext")
            .field("limbs", &self.c0.limb_count())
            .field("log2_scale", &self.scale.log2())
            .finish()
    }
}

impl Ciphertext {
    /// Assembles a ciphertext from parts.
    ///
    /// # Panics
    ///
    /// Panics if the components disagree on limb count.
    pub fn new(mut c0: RnsPoly, mut c1: RnsPoly, scale: f64) -> Self {
        assert_eq!(c0.limb_count(), c1.limb_count(), "component limb mismatch");
        // Memory-trace attribution: whatever kernels produced these parts,
        // from here on they are ciphertext limbs.
        c0.set_operand_class(OperandClass::Ciphertext);
        c1.set_operand_class(OperandClass::Ciphertext);
        Self { c0, c1, scale }
    }

    /// The `c_0` component.
    pub fn c0(&self) -> &RnsPoly {
        &self.c0
    }

    /// The `c_1` component.
    pub fn c1(&self) -> &RnsPoly {
        &self.c1
    }

    /// Current limb count `ℓ` (the paper's "level"; each rescale consumes
    /// one limb).
    pub fn limb_count(&self) -> usize {
        self.c0.limb_count()
    }

    /// The scaling factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Size of the ciphertext in machine words (`2·N·ℓ`), matching the
    /// paper's Section 2.1 accounting.
    pub fn size_words(&self) -> u64 {
        2 * self.c0.degree() as u64 * self.limb_count() as u64
    }

    /// Returns both components' storage to `pool`. Evaluator hot paths
    /// recycle short-lived ciphertexts so steady-state evaluation stays
    /// allocation-free.
    pub fn recycle(self, pool: &fhe_math::ScratchPool) {
        self.c0.recycle(pool);
        self.c1.recycle(pool);
    }
}
