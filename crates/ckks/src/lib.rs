#![warn(missing_docs)]
// Hot kernels index several slices in lockstep (limbs, roots, outputs);
// the explicit-index form mirrors the paper's pseudocode and stays clear.
#![allow(clippy::needless_range_loop)]

//! A functional RNS-CKKS homomorphic encryption library.
//!
//! This crate implements the CKKS scheme exactly as analyzed by the MAD
//! paper (MICRO '23): full-RNS arithmetic, hybrid (Han–Ki) key switching
//! with `dnum` digits, slot rotations via Galois automorphisms, hoisted
//! rotations, BSGS plaintext matrix–vector products, Chebyshev polynomial
//! evaluation, and CKKS bootstrapping. It serves two roles:
//!
//! 1. A usable approximate-arithmetic FHE library at test/demo scale.
//! 2. The semantic ground truth for the `simfhe` cost model: each MAD
//!    algorithmic optimization (`ModDown` merge, `ModDown` hoisting, key
//!    compression) exists here as an alternative execution path whose
//!    output is asserted equal (within noise) to the unoptimized path.
//!
//! # Quickstart
//!
//! ```
//! use ckks::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator};
//! use fhe_math::cfft::Complex;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let ctx = CkksContext::new(
//!     CkksParams::builder()
//!         .log_degree(6)
//!         .levels(3)
//!         .scale_bits(32)
//!         .first_modulus_bits(40)
//!         .build()
//!         .unwrap(),
//! );
//! let mut rng = StdRng::seed_from_u64(1);
//! let keygen = KeyGenerator::new(ctx.clone());
//! let sk = keygen.secret_key(&mut rng);
//! let encoder = Encoder::new(ctx.clone());
//! let encryptor = Encryptor::new(ctx.clone());
//! let decryptor = Decryptor::new(ctx.clone());
//! let evaluator = Evaluator::new(ctx.clone());
//!
//! let values = vec![Complex::new(1.5, 0.0), Complex::new(-2.0, 0.5)];
//! let pt = encoder.encode(&values, 3, ctx.params().scale()).unwrap();
//! let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
//! let doubled = evaluator.add(&ct, &ct);
//! let back = encoder.decode(&decryptor.decrypt(&doubled, &sk));
//! assert!((back[0].re - 3.0).abs() < 1e-5);
//! ```

pub mod bootstrap;
pub mod context;
pub mod encoding;
pub mod encrypt;
pub mod hoisting;
pub mod keys;
pub mod keyswitch;
pub mod noise;
pub mod ops;
pub mod params;
pub mod plaintext;
pub mod polyeval;
pub mod serialize;

pub use context::CkksContext;
pub use encoding::Encoder;
pub use encrypt::{Decryptor, Encryptor};
pub use keys::{GaloisKeys, KeyGenerator, PublicKey, RelinKey, SecretKey, SwitchingKey};
pub use ops::Evaluator;
pub use params::CkksParams;
pub use plaintext::{Ciphertext, Plaintext};
