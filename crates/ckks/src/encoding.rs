//! Encoding between complex slot vectors and ring elements via the
//! canonical embedding.

use crate::context::CkksContext;
use crate::plaintext::Plaintext;
use fhe_math::cfft::{Complex, SpecialFft};
use fhe_math::poly::{Representation, RnsPoly};
use fhe_math::rns::RnsBasis;
use std::fmt;
use std::sync::Arc;

/// Encoder/decoder for CKKS plaintexts.
pub struct Encoder {
    ctx: Arc<CkksContext>,
    fft: SpecialFft,
}

impl fmt::Debug for Encoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Encoder")
            .field("slots", &self.ctx.params().slots())
            .finish()
    }
}

/// Error from encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodeError {
    /// More values than slots.
    TooManyValues {
        /// Values supplied.
        given: usize,
        /// Slots available.
        slots: usize,
    },
    /// A scaled coefficient exceeded the 62-bit integer range.
    CoefficientOverflow(f64),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooManyValues { given, slots } => {
                write!(f, "{given} values exceed the {slots} available slots")
            }
            EncodeError::CoefficientOverflow(c) => {
                write!(f, "scaled coefficient {c:e} exceeds the integer range")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

impl Encoder {
    /// Creates an encoder for the context.
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        let fft = SpecialFft::new(ctx.params().slots());
        Self { ctx, fft }
    }

    /// Encodes complex values into a plaintext over the `ℓ`-limb basis at
    /// the given scale. Values beyond `values.len()` are zero.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if too many values are given or the scaled
    /// coefficients overflow 62 bits.
    pub fn encode(
        &self,
        values: &[Complex],
        ell: usize,
        scale: f64,
    ) -> Result<Plaintext, EncodeError> {
        let basis = self.ctx.level_basis(ell).clone();
        self.encode_in_basis(values, basis, scale)
    }

    /// Encodes into the *raised* basis `Q_ℓ ∪ P` — used by the ModDown
    /// hoisting optimization, which applies plaintext constants while the
    /// ciphertext still lives in the raised basis.
    ///
    /// # Errors
    ///
    /// Same as [`Encoder::encode`].
    pub fn encode_raised(
        &self,
        values: &[Complex],
        ell: usize,
        scale: f64,
    ) -> Result<Plaintext, EncodeError> {
        let basis = self.ctx.raised_basis(ell).clone();
        self.encode_in_basis(values, basis, scale)
    }

    /// Encodes real values (imaginary parts zero).
    ///
    /// # Errors
    ///
    /// Same as [`Encoder::encode`].
    pub fn encode_real(
        &self,
        values: &[f64],
        ell: usize,
        scale: f64,
    ) -> Result<Plaintext, EncodeError> {
        let v: Vec<Complex> = values.iter().map(|&x| Complex::new(x, 0.0)).collect();
        self.encode(&v, ell, scale)
    }

    fn encode_in_basis(
        &self,
        values: &[Complex],
        basis: Arc<RnsBasis>,
        scale: f64,
    ) -> Result<Plaintext, EncodeError> {
        let slots = self.ctx.params().slots();
        if values.len() > slots {
            return Err(EncodeError::TooManyValues {
                given: values.len(),
                slots,
            });
        }
        let mut half = vec![Complex::default(); slots];
        half[..values.len()].copy_from_slice(values);
        self.fft.inverse(&mut half);
        let n = self.ctx.params().degree();
        let mut coeffs = vec![0i64; n];
        let limit = (1i64 << 62) as f64;
        for (j, c) in half.iter().enumerate() {
            let re = (c.re * scale).round();
            let im = (c.im * scale).round();
            if re.abs() >= limit || im.abs() >= limit {
                return Err(EncodeError::CoefficientOverflow(re.abs().max(im.abs())));
            }
            coeffs[j] = re as i64;
            coeffs[j + slots] = im as i64;
        }
        let mut poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        poly.to_eval();
        poly.set_operand_class(fhe_math::telemetry::OperandClass::Plaintext);
        Ok(Plaintext { poly, scale })
    }

    /// Decodes a plaintext back to its complex slot values.
    pub fn decode(&self, pt: &Plaintext) -> Vec<Complex> {
        let mut poly = pt.poly.clone();
        poly.to_coeff();
        self.decode_poly(&poly, pt.scale)
    }

    /// Decodes a raw polynomial (coefficient or evaluation representation)
    /// at an explicit scale — diagnostics and bootstrapping internals.
    pub fn decode_poly(&self, poly: &RnsPoly, scale: f64) -> Vec<Complex> {
        let mut p = poly.clone();
        if p.representation() == Representation::Evaluation {
            p.to_coeff();
        }
        let slots = self.ctx.params().slots();
        let mut half = vec![Complex::default(); slots];
        for j in 0..slots {
            let re = p.coeff_centered(j).to_f64() / scale;
            let im = p.coeff_centered(j + slots).to_f64() / scale;
            half[j] = Complex::new(re, im);
        }
        self.fft.forward(&mut half);
        half
    }

    /// Slot count.
    pub fn slots(&self) -> usize {
        self.ctx.params().slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    fn ctx() -> Arc<CkksContext> {
        CkksContext::new(
            CkksParams::builder()
                .log_degree(6)
                .levels(3)
                .scale_bits(36)
                .first_modulus_bits(42)
                .dnum(3)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn roundtrip_complex_values() {
        let ctx = ctx();
        let enc = Encoder::new(ctx.clone());
        let values: Vec<Complex> = (0..enc.slots())
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let pt = enc.encode(&values, 3, ctx.params().scale()).unwrap();
        let back = enc.decode(&pt);
        for (a, b) in back.iter().zip(&values) {
            assert!((*a - *b).abs() < 1e-7, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn roundtrip_partial_vector_pads_with_zeros() {
        let ctx = ctx();
        let enc = Encoder::new(ctx.clone());
        let values = [Complex::new(1.5, -2.5), Complex::new(0.25, 0.0)];
        let pt = enc.encode(&values, 1, ctx.params().scale()).unwrap();
        let back = enc.decode(&pt);
        assert!((back[0] - values[0]).abs() < 1e-7);
        assert!((back[1] - values[1]).abs() < 1e-7);
        for v in &back[2..] {
            assert!(v.abs() < 1e-7);
        }
    }

    #[test]
    fn encode_rejects_too_many_values() {
        let ctx = ctx();
        let enc = Encoder::new(ctx.clone());
        let values = vec![Complex::new(1.0, 0.0); enc.slots() + 1];
        assert!(matches!(
            enc.encode(&values, 1, ctx.params().scale()),
            Err(EncodeError::TooManyValues { .. })
        ));
    }

    #[test]
    fn encode_rejects_overflowing_scale() {
        let ctx = ctx();
        let enc = Encoder::new(ctx.clone());
        let values = [Complex::new(1e30, 0.0)];
        assert!(matches!(
            enc.encode(&values, 1, 2f64.powi(40)),
            Err(EncodeError::CoefficientOverflow(_))
        ));
    }

    #[test]
    fn encoding_respects_slotwise_multiplication() {
        // encode(a) * encode(b) (ring product) decodes to a ⊙ b at scale Δ².
        let ctx = ctx();
        let enc = Encoder::new(ctx.clone());
        let slots = enc.slots();
        let a: Vec<Complex> = (0..slots)
            .map(|i| Complex::new(1.0 + i as f64 / slots as f64, 0.3))
            .collect();
        let b: Vec<Complex> = (0..slots)
            .map(|i| Complex::new(0.5, -(i as f64) / slots as f64))
            .collect();
        let scale = ctx.params().scale();
        let mut pa = enc.encode(&a, 2, scale).unwrap();
        let pb = enc.encode(&b, 2, scale).unwrap();
        pa.poly.mul_assign_pointwise(&pb.poly);
        pa.scale = scale * scale;
        let back = enc.decode(&pa);
        for i in 0..slots {
            let expect = a[i] * b[i];
            assert!((back[i] - expect).abs() < 1e-5, "slot {i}");
        }
    }

    #[test]
    fn raised_encoding_matches_standard_on_q_limbs() {
        let ctx = ctx();
        let enc = Encoder::new(ctx.clone());
        let values = [Complex::new(0.75, 0.1)];
        let scale = ctx.params().scale();
        let std = enc.encode(&values, 2, scale).unwrap();
        let raised = enc.encode_raised(&values, 2, scale).unwrap();
        assert_eq!(raised.limb_count(), 2 + ctx.params().special_limbs());
        for i in 0..2 {
            assert_eq!(std.poly().limb(i), raised.poly().limb(i));
        }
    }
}
