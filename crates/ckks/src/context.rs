//! The CKKS context: modulus chains, NTT tables, basis-conversion caches,
//! and automorphism tables shared by every operation.

use crate::params::CkksParams;
use fhe_math::automorph::{conjugation_galois_element, rotation_galois_element, Automorphism};
use fhe_math::backend::{self, BackendKind};
use fhe_math::poly::ModDownContext;
use fhe_math::prime::{generate_ntt_primes, generate_ntt_primes_excluding};
use fhe_math::rns::{BasisExtender, RnsBasis};
use fhe_math::{KernelBackend, ScratchPool};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Shared state for a CKKS instantiation.
///
/// Construction generates the modulus chains (`q_0` of
/// `first_modulus_bits`, then `L−1` rescaling primes near `Δ`, then `α`
/// special primes) and their NTT tables. Basis extenders, `ModDown`
/// contexts and automorphism tables are built lazily and memoized — they
/// depend on the current level, and a typical application only visits a
/// handful of `(level, digit)` combinations.
pub struct CkksContext {
    params: CkksParams,
    /// The full ciphertext basis `Q` (limb 0 = `q_0`).
    q_basis: Arc<RnsBasis>,
    /// The special basis `P` used for key switching.
    p_basis: Arc<RnsBasis>,
    /// `Q ∪ P` in standard order.
    full_basis: Arc<RnsBasis>,
    /// Per-level prefixes `Q_ℓ` (index `ℓ-1` holds the ℓ-limb basis).
    level_bases: Vec<Arc<RnsBasis>>,
    /// Per-level `Q_ℓ ∪ P` bases.
    raised_bases: Vec<Arc<RnsBasis>>,
    moddown_cache: Mutex<HashMap<(usize, bool), Arc<ModDownContext>>>,
    extender_cache: Mutex<HashMap<(usize, usize), Arc<BasisExtender>>>,
    automorphism_cache: Mutex<HashMap<u64, Arc<Automorphism>>>,
    /// Reusable word buffers for the hot ring operations: after warm-up,
    /// key switching and rescaling allocate nothing per call.
    scratch: ScratchPool,
    /// The kernel backend every basis (and thus every polynomial op) in
    /// this context dispatches to.
    kernel_backend: Arc<dyn KernelBackend>,
}

impl fmt::Debug for CkksContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CkksContext")
            .field("degree", &self.params.degree())
            .field("levels", &self.params.levels())
            .field("special_limbs", &self.params.special_limbs())
            .finish()
    }
}

impl CkksContext {
    /// Builds a context for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the prime generator cannot find enough NTT-friendly primes
    /// for the requested sizes (a parameter-selection bug).
    pub fn new(params: CkksParams) -> Arc<Self> {
        Self::with_backend(params, None)
    }

    /// Builds a context with an explicit kernel-backend choice.
    ///
    /// `prefer = None` resolves via the usual precedence (the
    /// `MAD_KERNEL_BACKEND` environment variable, falling back to the best
    /// available implementation); an explicit `Some(kind)` overrides both.
    /// Every basis the context owns — and therefore every polynomial and
    /// key built over it — dispatches its hot kernels to the selected
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics if the prime generator cannot find enough NTT-friendly primes
    /// for the requested sizes (a parameter-selection bug).
    pub fn with_backend(params: CkksParams, prefer: Option<BackendKind>) -> Arc<Self> {
        let kernel_backend = backend::resolve(prefer);
        let n = params.degree();
        let levels = params.levels();
        let first = generate_ntt_primes(1, params.first_modulus_bits(), n);
        let mut q_primes = first.clone();
        if levels > 1 {
            q_primes.extend(generate_ntt_primes_excluding(
                levels - 1,
                params.scale_bits(),
                n,
                &first,
            ));
        }
        let p_primes = generate_ntt_primes_excluding(
            params.special_limbs(),
            params.special_modulus_bits(),
            n,
            &q_primes,
        );
        let q_basis = Arc::new(
            RnsBasis::with_backend(&q_primes, n, kernel_backend.clone()).expect("valid Q chain"),
        );
        let p_basis = Arc::new(
            RnsBasis::with_backend(&p_primes, n, kernel_backend.clone()).expect("valid P chain"),
        );
        let full_basis = Arc::new(q_basis.concat(&p_basis));
        let level_bases: Vec<Arc<RnsBasis>> = (1..=levels)
            .map(|ell| Arc::new(q_basis.prefix(ell)))
            .collect();
        let raised_bases: Vec<Arc<RnsBasis>> = (1..=levels)
            .map(|ell| Arc::new(q_basis.prefix(ell).concat(&p_basis)))
            .collect();
        Arc::new(Self {
            params,
            q_basis,
            p_basis,
            full_basis,
            level_bases,
            raised_bases,
            moddown_cache: Mutex::new(HashMap::new()),
            extender_cache: Mutex::new(HashMap::new()),
            automorphism_cache: Mutex::new(HashMap::new()),
            scratch: ScratchPool::new(),
            kernel_backend,
        })
    }

    /// The kernel backend this context's bases dispatch to.
    pub fn kernel_backend(&self) -> &Arc<dyn KernelBackend> {
        &self.kernel_backend
    }

    /// The parameter set.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// The shared scratch-buffer pool for allocation-free hot paths.
    pub fn scratch(&self) -> &ScratchPool {
        &self.scratch
    }

    /// The full ciphertext basis `Q`.
    pub fn q_basis(&self) -> &Arc<RnsBasis> {
        &self.q_basis
    }

    /// The special basis `P`.
    pub fn p_basis(&self) -> &Arc<RnsBasis> {
        &self.p_basis
    }

    /// `Q ∪ P`.
    pub fn full_basis(&self) -> &Arc<RnsBasis> {
        &self.full_basis
    }

    /// The `ℓ`-limb ciphertext basis `Q_ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if `ell` is zero or exceeds `L`.
    pub fn level_basis(&self, ell: usize) -> &Arc<RnsBasis> {
        &self.level_bases[ell - 1]
    }

    /// The raised basis `Q_ℓ ∪ P`.
    ///
    /// # Panics
    ///
    /// Panics if `ell` is zero or exceeds `L`.
    pub fn raised_basis(&self, ell: usize) -> &Arc<RnsBasis> {
        &self.raised_bases[ell - 1]
    }

    /// The limb index ranges (into `Q_ℓ`) covered by key-switching digit
    /// `j` at limb count `ell`.
    pub fn digit_range(&self, ell: usize, j: usize) -> std::ops::Range<usize> {
        let alpha = self.params.alpha();
        let start = j * alpha;
        let end = ((j + 1) * alpha).min(ell);
        start..end
    }

    /// The memoized `ModDown` context at limb count `ell`.
    ///
    /// With `merged = false` this drops exactly the special basis `P`
    /// (standard key-switch completion). With `merged = true` it drops
    /// `{q_{ℓ-1}} ∪ P` in one pass — the paper's **ModDown merge**
    /// optimization (Figure 4c), which fuses the key-switch `ModDown` with
    /// the subsequent `Rescale`.
    pub fn moddown_context(&self, ell: usize, merged: bool) -> Arc<ModDownContext> {
        let mut cache = self.moddown_cache.lock().expect("poisoned");
        cache
            .entry((ell, merged))
            .or_insert_with(|| {
                if merged {
                    assert!(ell >= 2, "merged ModDown needs a limb to drop");
                    let keep = self.level_bases[ell - 2].clone();
                    let drop = self.q_basis.select(&[ell - 1]).concat(&self.p_basis);
                    Arc::new(ModDownContext::new(keep, &drop))
                } else {
                    let keep = self.level_bases[ell - 1].clone();
                    Arc::new(ModDownContext::new(keep, &self.p_basis))
                }
            })
            .clone()
    }

    /// The memoized basis extender for key-switching digit `j` at limb
    /// count `ell`: from the digit limbs to their complement
    /// `(Q_ℓ \ digit) ∪ P`.
    pub fn digit_extender(&self, ell: usize, j: usize) -> Arc<BasisExtender> {
        let mut cache = self.extender_cache.lock().expect("poisoned");
        cache
            .entry((ell, j))
            .or_insert_with(|| {
                let range = self.digit_range(ell, j);
                let digit_idx: Vec<usize> = range.clone().collect();
                let complement_idx: Vec<usize> = (0..ell).filter(|i| !range.contains(i)).collect();
                let digit = self.q_basis.select(&digit_idx);
                let target = if complement_idx.is_empty() {
                    (**self.p_basis()).clone()
                } else {
                    self.q_basis.select(&complement_idx).concat(&self.p_basis)
                };
                Arc::new(BasisExtender::new(&digit, &target))
            })
            .clone()
    }

    /// The memoized automorphism table for Galois element `k`.
    pub fn automorphism(&self, k: u64) -> Arc<Automorphism> {
        let mut cache = self.automorphism_cache.lock().expect("poisoned");
        cache
            .entry(k)
            .or_insert_with(|| Arc::new(Automorphism::new(k, self.q_basis.ntt_table(0))))
            .clone()
    }

    /// The Galois element for a slot rotation by `steps`.
    pub fn rotation_element(&self, steps: i64) -> u64 {
        rotation_galois_element(steps, self.params.degree())
    }

    /// The Galois element for complex conjugation.
    pub fn conjugation_element(&self) -> u64 {
        conjugation_galois_element(self.params.degree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ctx() -> Arc<CkksContext> {
        CkksContext::new(
            CkksParams::builder()
                .log_degree(5)
                .levels(4)
                .scale_bits(30)
                .first_modulus_bits(36)
                .dnum(2)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn chains_have_expected_shapes() {
        let ctx = small_ctx();
        assert_eq!(ctx.q_basis().len(), 4);
        assert_eq!(ctx.p_basis().len(), 2); // α = ⌈4/2⌉
        assert_eq!(ctx.full_basis().len(), 6);
        assert_eq!(ctx.level_basis(2).len(), 2);
        assert_eq!(ctx.raised_basis(3).len(), 5);
        // q_0 is the large modulus.
        assert!(ctx.q_basis().modulus(0).bits() >= 35);
        assert!(ctx.q_basis().modulus(1).bits() <= 31);
    }

    #[test]
    fn all_primes_distinct() {
        let ctx = small_ctx();
        let mut all: Vec<u64> = ctx
            .full_basis()
            .moduli()
            .iter()
            .map(|m| m.value())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ctx.full_basis().len());
    }

    #[test]
    fn digit_ranges_tile_the_level() {
        let ctx = small_ctx(); // α = 2
        assert_eq!(ctx.digit_range(4, 0), 0..2);
        assert_eq!(ctx.digit_range(4, 1), 2..4);
        assert_eq!(ctx.digit_range(3, 1), 2..3); // partial last digit
        assert_eq!(ctx.digit_range(1, 0), 0..1);
    }

    #[test]
    fn caches_return_shared_instances() {
        let ctx = small_ctx();
        let a = ctx.moddown_context(3, false);
        let b = ctx.moddown_context(3, false);
        assert!(Arc::ptr_eq(&a, &b));
        let e1 = ctx.digit_extender(4, 1);
        let e2 = ctx.digit_extender(4, 1);
        assert!(Arc::ptr_eq(&e1, &e2));
        let auto1 = ctx.automorphism(5);
        let auto2 = ctx.automorphism(5);
        assert!(Arc::ptr_eq(&auto1, &auto2));
    }

    #[test]
    fn digit_extender_targets_complement_plus_special() {
        let ctx = small_ctx();
        let e = ctx.digit_extender(4, 0);
        assert_eq!(e.source_len(), 2);
        assert_eq!(e.target_len(), 4); // 2 complement q-limbs + 2 special
        let e_last = ctx.digit_extender(3, 1);
        assert_eq!(e_last.source_len(), 1);
        assert_eq!(e_last.target_len(), 4); // 2 q + 2 p
    }

    #[test]
    fn galois_elements() {
        let ctx = small_ctx();
        assert_eq!(ctx.rotation_element(0), 1);
        assert_eq!(ctx.rotation_element(1), 5);
        assert_eq!(ctx.conjugation_element(), 63);
    }
}
