//! CKKS scheme parameters (Table 1 of the MAD paper).
//!
//! A parameter set fixes the ring degree `N`, the ciphertext modulus chain
//! `Q = q_0·q_1⋯q_{L-1}`, the special (raised) modulus `P`, the scaling
//! factor `Δ`, and the key-switching digit count `dnum`. The derived values
//! `α = ⌈L/dnum⌉` (limbs per digit) and `β = ⌈ℓ/α⌉` (digits at the current
//! level) drive both the functional key switch and the `simfhe` cost model.

use std::fmt;

/// Validated CKKS parameters.
///
/// Construct via [`CkksParams::builder`]:
///
/// ```
/// use ckks::params::CkksParams;
/// let params = CkksParams::builder()
///     .log_degree(6)
///     .levels(4)
///     .scale_bits(30)
///     .first_modulus_bits(36)
///     .dnum(2)
///     .build()
///     .unwrap();
/// assert_eq!(params.degree(), 64);
/// assert_eq!(params.alpha(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CkksParams {
    log_degree: u32,
    levels: usize,
    scale_bits: u32,
    first_modulus_bits: u32,
    special_modulus_bits: u32,
    dnum: usize,
    error_tolerance: f64,
}

/// Error from [`CkksParamsBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamsError {
    /// `log_degree` outside the supported range `[2, 17]`.
    BadDegree(u32),
    /// `levels` must be at least 1.
    NoLevels,
    /// A modulus bit size outside `[20, 60]`.
    BadModulusBits(u32),
    /// `dnum` must be in `[1, levels]`.
    BadDnum(usize),
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::BadDegree(d) => write!(f, "log_degree {d} outside [2, 17]"),
            ParamsError::NoLevels => write!(f, "at least one level is required"),
            ParamsError::BadModulusBits(b) => write!(f, "modulus size {b} outside [20, 60]"),
            ParamsError::BadDnum(d) => write!(f, "dnum {d} outside [1, levels]"),
        }
    }
}

impl std::error::Error for ParamsError {}

/// Builder for [`CkksParams`].
#[derive(Clone, Debug)]
pub struct CkksParamsBuilder {
    log_degree: u32,
    levels: usize,
    scale_bits: u32,
    first_modulus_bits: u32,
    special_modulus_bits: u32,
    dnum: usize,
    error_tolerance: f64,
}

impl Default for CkksParamsBuilder {
    fn default() -> Self {
        Self {
            log_degree: 12,
            levels: 6,
            scale_bits: 40,
            first_modulus_bits: 50,
            special_modulus_bits: 50,
            dnum: 3,
            error_tolerance: 1e-3,
        }
    }
}

impl CkksParamsBuilder {
    /// Sets `log2 N` (ring degree `N = 2^log_degree`; slots `= N/2`).
    pub fn log_degree(&mut self, v: u32) -> &mut Self {
        self.log_degree = v;
        self
    }

    /// Sets the number of ciphertext limbs `L` (the paper's maximum limb
    /// count; one multiplication consumes one level).
    pub fn levels(&mut self, v: usize) -> &mut Self {
        self.levels = v;
        self
    }

    /// Sets `log2 Δ`, the scaling-factor bit size (also the size of the
    /// rescaling primes `q_1 … q_{L-1}`).
    pub fn scale_bits(&mut self, v: u32) -> &mut Self {
        self.scale_bits = v;
        self
    }

    /// Sets the bit size of the first modulus `q_0` (larger than `Δ` to
    /// leave headroom for the final message magnitude).
    pub fn first_modulus_bits(&mut self, v: u32) -> &mut Self {
        self.first_modulus_bits = v;
        self
    }

    /// Sets the bit size of the special primes composing `P`.
    pub fn special_modulus_bits(&mut self, v: u32) -> &mut Self {
        self.special_modulus_bits = v;
        self
    }

    /// Sets the key-switching digit count `dnum`.
    pub fn dnum(&mut self, v: usize) -> &mut Self {
        self.dnum = v;
        self
    }

    /// Builds and validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] describing the first invalid field.
    pub fn build(&self) -> Result<CkksParams, ParamsError> {
        if !(2..=17).contains(&self.log_degree) {
            return Err(ParamsError::BadDegree(self.log_degree));
        }
        if self.levels == 0 {
            return Err(ParamsError::NoLevels);
        }
        for bits in [
            self.scale_bits,
            self.first_modulus_bits,
            self.special_modulus_bits,
        ] {
            if !(20..=60).contains(&bits) {
                return Err(ParamsError::BadModulusBits(bits));
            }
        }
        if self.dnum == 0 || self.dnum > self.levels {
            return Err(ParamsError::BadDnum(self.dnum));
        }
        Ok(CkksParams {
            log_degree: self.log_degree,
            levels: self.levels,
            scale_bits: self.scale_bits,
            first_modulus_bits: self.first_modulus_bits,
            special_modulus_bits: self.special_modulus_bits,
            dnum: self.dnum,
            error_tolerance: self.error_tolerance,
        })
    }
}

impl CkksParams {
    /// Starts a builder with library defaults (`N = 2^12`, 6 levels,
    /// `Δ = 2^40`, `dnum = 3`).
    pub fn builder() -> CkksParamsBuilder {
        CkksParamsBuilder::default()
    }

    /// `log2 N`.
    pub fn log_degree(&self) -> u32 {
        self.log_degree
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        1 << self.log_degree
    }

    /// Plaintext slot count `n = N/2`.
    pub fn slots(&self) -> usize {
        self.degree() / 2
    }

    /// Maximum ciphertext limb count `L`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The scaling factor `Δ = 2^scale_bits`.
    pub fn scale(&self) -> f64 {
        2f64.powi(self.scale_bits as i32)
    }

    /// `log2 Δ`.
    pub fn scale_bits(&self) -> u32 {
        self.scale_bits
    }

    /// Bit size of `q_0`.
    pub fn first_modulus_bits(&self) -> u32 {
        self.first_modulus_bits
    }

    /// Bit size of each special prime.
    pub fn special_modulus_bits(&self) -> u32 {
        self.special_modulus_bits
    }

    /// Key-switching digit count `dnum`.
    pub fn dnum(&self) -> usize {
        self.dnum
    }

    /// Limbs per key-switching digit: `α = ⌈L / dnum⌉`.
    pub fn alpha(&self) -> usize {
        self.levels.div_ceil(self.dnum)
    }

    /// Digits needed at limb count `ell`: `β = ⌈ℓ / α⌉`.
    pub fn beta_at(&self, ell: usize) -> usize {
        ell.div_ceil(self.alpha())
    }

    /// Number of special limbs (`|P| = α`, the Han–Ki choice that bounds
    /// key-switch noise).
    pub fn special_limbs(&self) -> usize {
        self.alpha()
    }

    /// Relative error tolerance used by round-trip assertions in examples
    /// and tests.
    pub fn error_tolerance(&self) -> f64 {
        self.error_tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let p = CkksParams::builder().build().unwrap();
        assert_eq!(p.degree(), 4096);
        assert_eq!(p.slots(), 2048);
        assert_eq!(p.alpha(), 2);
        assert_eq!(p.special_limbs(), 2);
    }

    #[test]
    fn builder_rejects_bad_fields() {
        assert!(matches!(
            CkksParams::builder().log_degree(1).build(),
            Err(ParamsError::BadDegree(1))
        ));
        assert!(matches!(
            CkksParams::builder().levels(0).build(),
            Err(ParamsError::NoLevels)
        ));
        assert!(matches!(
            CkksParams::builder().scale_bits(10).build(),
            Err(ParamsError::BadModulusBits(10))
        ));
        assert!(matches!(
            CkksParams::builder().levels(3).dnum(4).build(),
            Err(ParamsError::BadDnum(4))
        ));
    }

    #[test]
    fn alpha_beta_match_paper_definitions() {
        // Paper example: L = 35 limbs + dnum = 3 → α = 12.
        let p = CkksParams::builder().levels(35).dnum(3).build().unwrap();
        assert_eq!(p.alpha(), 12);
        assert_eq!(p.beta_at(35), 3);
        assert_eq!(p.beta_at(12), 1);
        assert_eq!(p.beta_at(13), 2);
        assert_eq!(p.beta_at(1), 1);
    }

    #[test]
    fn scale_is_power_of_two() {
        let p = CkksParams::builder().scale_bits(30).build().unwrap();
        assert_eq!(p.scale(), (1u64 << 30) as f64);
    }
}
