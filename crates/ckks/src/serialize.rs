//! Binary serialization for plaintexts, ciphertexts, switching keys, and
//! Galois (rotation) key bundles.
//!
//! The switching-key format makes the paper's **key compression**
//! (§3.2) concrete: a seeded key serializes as the 32-byte seed plus only
//! the `b` polynomials — exactly half the bytes of an expanded key — and
//! deserialization regenerates every `a_j` from the seed. This is the
//! "transfer the short PRNG key in place of the first switching key
//! polynomial" folklore the paper measures. [`serialize_galois_keys`]
//! extends the same trade to a whole rotation-key set, so a client can
//! ship every hoisting key in one framed message and the server can keep
//! them compressed until an operation actually needs one.
//!
//! Format (little-endian throughout): a 4-byte magic, a format version,
//! the shape header (degree, limb count, limb moduli for validation), the
//! scale as IEEE-754 bits, then the raw limb words.

use crate::context::CkksContext;
use crate::keys::{DigitKey, GaloisKeys, SwitchingKey};
use crate::plaintext::{Ciphertext, Plaintext};
use fhe_math::poly::{Representation, RnsPoly};
use fhe_math::rns::RnsBasis;
use fhe_math::sampling::sample_uniform_flat;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"MADf";
const VERSION: u8 = 1;

/// Error from deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// The buffer is shorter than its header claims.
    Truncated,
    /// Magic mismatch or a malformed structural field.
    BadHeader,
    /// The magic matched but the format version is not supported.
    VersionMismatch(u8),
    /// The limb moduli do not match the context's chain.
    ModulusMismatch,
    /// A residue was out of range for its modulus.
    UnreducedResidue,
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::Truncated => write!(f, "buffer shorter than its header claims"),
            SerializeError::BadHeader => write!(f, "bad magic or malformed header"),
            SerializeError::VersionMismatch(v) => {
                write!(f, "unsupported format version {v} (expected {VERSION})")
            }
            SerializeError::ModulusMismatch => {
                write!(f, "limb moduli do not match the context")
            }
            SerializeError::UnreducedResidue => write!(f, "residue out of range"),
        }
    }
}

impl std::error::Error for SerializeError {}

struct Writer(Vec<u8>);

impl Writer {
    fn new() -> Self {
        let mut w = Writer(Vec::new());
        w.0.extend_from_slice(MAGIC);
        w.0.push(VERSION);
        w
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn poly_limbs(&mut self, p: &RnsPoly) {
        for i in 0..p.limb_count() {
            for &x in p.limb(i) {
                self.u64(x);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Result<Self, SerializeError> {
        if buf.len() < 5 {
            return Err(SerializeError::Truncated);
        }
        if &buf[..4] != MAGIC {
            return Err(SerializeError::BadHeader);
        }
        if buf[4] != VERSION {
            return Err(SerializeError::VersionMismatch(buf[4]));
        }
        Ok(Reader { buf, pos: 5 })
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SerializeError> {
        if self.pos + n > self.buf.len() {
            return Err(SerializeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, SerializeError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, SerializeError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn poly(&mut self, basis: &Arc<RnsBasis>) -> Result<RnsPoly, SerializeError> {
        let n = basis.degree();
        let mut flat = Vec::with_capacity(basis.len() * n);
        for i in 0..basis.len() {
            let q = basis.modulus(i).value();
            for _ in 0..n {
                let x = self.u64()?;
                if x >= q {
                    return Err(SerializeError::UnreducedResidue);
                }
                flat.push(x);
            }
        }
        Ok(RnsPoly::from_flat(
            basis.clone(),
            flat,
            Representation::Evaluation,
        ))
    }
}

fn write_basis_header(w: &mut Writer, basis: &RnsBasis) {
    w.u32(basis.degree() as u32);
    w.u32(basis.len() as u32);
    for m in basis.moduli() {
        w.u64(m.value());
    }
}

fn check_basis_header(r: &mut Reader<'_>, basis: &RnsBasis) -> Result<(), SerializeError> {
    if r.u32()? as usize != basis.degree() || r.u32()? as usize != basis.len() {
        return Err(SerializeError::ModulusMismatch);
    }
    for m in basis.moduli() {
        if r.u64()? != m.value() {
            return Err(SerializeError::ModulusMismatch);
        }
    }
    Ok(())
}

/// Serializes a ciphertext.
pub fn serialize_ciphertext(ct: &Ciphertext) -> Vec<u8> {
    let mut w = Writer::new();
    write_basis_header(&mut w, ct.c0().basis());
    w.u64(ct.scale().to_bits());
    w.poly_limbs(ct.c0());
    w.poly_limbs(ct.c1());
    w.0
}

/// Deserializes a ciphertext against a context (the limb count selects the
/// level basis).
///
/// # Errors
///
/// Returns [`SerializeError`] on malformed input or a modulus-chain
/// mismatch.
pub fn deserialize_ciphertext(
    ctx: &CkksContext,
    bytes: &[u8],
) -> Result<Ciphertext, SerializeError> {
    let mut r = Reader::new(bytes)?;
    // Peek the limb count from the header to pick the basis.
    if bytes.len() < 13 {
        return Err(SerializeError::Truncated);
    }
    let ell = u32::from_le_bytes(bytes[9..13].try_into().expect("4 bytes")) as usize;
    if ell == 0 || ell > ctx.params().levels() {
        return Err(SerializeError::ModulusMismatch);
    }
    let basis = ctx.level_basis(ell).clone();
    check_basis_header(&mut r, &basis)?;
    let scale = f64::from_bits(r.u64()?);
    let c0 = r.poly(&basis)?;
    let c1 = r.poly(&basis)?;
    Ok(Ciphertext::new(c0, c1, scale))
}

/// Serializes a plaintext (one encoded polynomial plus its scale).
pub fn serialize_plaintext(pt: &Plaintext) -> Vec<u8> {
    let mut w = Writer::new();
    write_basis_header(&mut w, pt.poly().basis());
    w.u64(pt.scale().to_bits());
    w.poly_limbs(pt.poly());
    w.0
}

/// Deserializes a plaintext against a context (the limb count selects the
/// level basis).
///
/// # Errors
///
/// Returns [`SerializeError`] on malformed input or a modulus-chain
/// mismatch.
pub fn deserialize_plaintext(ctx: &CkksContext, bytes: &[u8]) -> Result<Plaintext, SerializeError> {
    let mut r = Reader::new(bytes)?;
    if bytes.len() < 13 {
        return Err(SerializeError::Truncated);
    }
    let ell = u32::from_le_bytes(bytes[9..13].try_into().expect("4 bytes")) as usize;
    if ell == 0 || ell > ctx.params().levels() {
        return Err(SerializeError::ModulusMismatch);
    }
    let basis = ctx.level_basis(ell).clone();
    check_basis_header(&mut r, &basis)?;
    let scale = f64::from_bits(r.u64()?);
    let poly = r.poly(&basis)?;
    Ok(Plaintext { poly, scale })
}

/// Serializes a switching key. A seeded key is written in compressed form:
/// the seed plus only the `b` polynomials (half the bytes); an unseeded
/// key writes both polynomials per digit.
pub fn serialize_switching_key(key: &SwitchingKey) -> Vec<u8> {
    let mut w = Writer::new();
    let basis = key.digits[0].a.basis();
    write_basis_header(&mut w, basis);
    w.u32(key.digits.len() as u32);
    match key.seed {
        Some(seed) => {
            w.0.push(1);
            w.0.extend_from_slice(&seed);
            for d in &key.digits {
                w.poly_limbs(&d.b);
            }
        }
        None => {
            w.0.push(0);
            for d in &key.digits {
                w.poly_limbs(&d.a);
                w.poly_limbs(&d.b);
            }
        }
    }
    w.0
}

/// Deserializes a switching key, regenerating the `a` components from the
/// seed when the key was written in compressed form.
///
/// # Errors
///
/// Returns [`SerializeError`] on malformed input or a modulus-chain
/// mismatch.
pub fn deserialize_switching_key(
    ctx: &CkksContext,
    bytes: &[u8],
) -> Result<SwitchingKey, SerializeError> {
    let mut r = Reader::new(bytes)?;
    let basis = ctx.full_basis().clone();
    check_basis_header(&mut r, &basis)?;
    let digit_count = r.u32()? as usize;
    if digit_count == 0 || digit_count > 64 {
        return Err(SerializeError::BadHeader);
    }
    let compressed = match r.bytes(1)?[0] {
        0 => false,
        1 => true,
        _ => return Err(SerializeError::BadHeader),
    };
    let moduli: Vec<u64> = basis.moduli().iter().map(|m| m.value()).collect();
    let n = basis.degree();
    let mut digits = Vec::with_capacity(digit_count);
    if compressed {
        let seed: [u8; 32] = r.bytes(32)?.try_into().expect("32 bytes");
        let mut rng = StdRng::from_seed(seed);
        for _ in 0..digit_count {
            let a = RnsPoly::from_flat(
                basis.clone(),
                sample_uniform_flat(&mut rng, &moduli, n),
                Representation::Evaluation,
            );
            let b = r.poly(&basis)?;
            digits.push(DigitKey { a, b });
        }
        Ok(SwitchingKey {
            digits,
            seed: Some(seed),
        })
    } else {
        for _ in 0..digit_count {
            let a = r.poly(&basis)?;
            let b = r.poly(&basis)?;
            digits.push(DigitKey { a, b });
        }
        Ok(SwitchingKey { digits, seed: None })
    }
}

/// Serializes a whole Galois (rotation) key set as one framed message:
/// a count followed by `(galois_element, length, switching-key bytes)`
/// entries. Each entry is a complete [`serialize_switching_key`] message,
/// so seeded keys stay at half size inside the bundle — the transferable
/// form of uploading every hoisting key at once.
pub fn serialize_galois_keys(keys: &GaloisKeys) -> Vec<u8> {
    let mut w = Writer::new();
    let mut entries: Vec<(u64, &SwitchingKey)> = keys.iter().collect();
    // Canonical element order so equal sets serialize identically.
    entries.sort_by_key(|&(k, _)| k);
    w.u32(entries.len() as u32);
    for (element, key) in entries {
        let bytes = serialize_switching_key(key);
        w.u64(element);
        w.u32(bytes.len() as u32);
        w.0.extend_from_slice(&bytes);
    }
    w.0
}

/// Splits a serialized Galois key set into `(galois_element, key bytes)`
/// entries *without* expanding any key — each returned slice is a complete
/// switching-key message. This is what lets a server file keys away in
/// compressed form and regenerate them lazily.
///
/// # Errors
///
/// Returns [`SerializeError`] on malformed input.
pub fn galois_key_set_entries(bytes: &[u8]) -> Result<Vec<(u64, &[u8])>, SerializeError> {
    let mut r = Reader::new(bytes)?;
    let count = r.u32()? as usize;
    // A key entry is ≥ 16 bytes; cap the count by what could even fit.
    if count > bytes.len() / 16 {
        return Err(SerializeError::BadHeader);
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let element = r.u64()?;
        let len = r.u32()? as usize;
        entries.push((element, r.bytes(len)?));
    }
    Ok(entries)
}

/// Deserializes a Galois key set, regenerating seeded keys' `a` components
/// from their seeds.
///
/// # Errors
///
/// Returns [`SerializeError`] on malformed input or a modulus-chain
/// mismatch.
pub fn deserialize_galois_keys(
    ctx: &CkksContext,
    bytes: &[u8],
) -> Result<GaloisKeys, SerializeError> {
    let mut keys = GaloisKeys::default();
    for (element, key_bytes) in galois_key_set_entries(bytes)? {
        keys.insert(element, deserialize_switching_key(ctx, key_bytes)?);
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::ops::Evaluator;
    use crate::params::CkksParams;
    use fhe_math::cfft::Complex;
    use rand::Rng;

    fn ctx() -> Arc<CkksContext> {
        CkksContext::new(
            CkksParams::builder()
                .log_degree(5)
                .levels(3)
                .scale_bits(30)
                .first_modulus_bits(36)
                .dnum(2)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn ciphertext_roundtrip_bit_exact() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(10);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let pt = encoder
            .encode(&[Complex::new(0.5, -0.5)], 2, ctx.params().scale())
            .unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        let bytes = serialize_ciphertext(&ct);
        let back = deserialize_ciphertext(&ctx, &bytes).unwrap();
        assert_eq!(back.limb_count(), ct.limb_count());
        assert_eq!(back.scale(), ct.scale());
        for i in 0..ct.limb_count() {
            assert_eq!(back.c0().limb(i), ct.c0().limb(i));
            assert_eq!(back.c1().limb(i), ct.c1().limb(i));
        }
    }

    #[test]
    fn compressed_key_is_half_the_bytes_and_still_works() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(11);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let plain_key = keygen.relin_key(&mut rng, &sk);
        let seeded_key = keygen.relin_key_compressed(&mut rng, &sk);

        let plain_bytes = serialize_switching_key(plain_key.switching_key());
        let compressed_bytes = serialize_switching_key(seeded_key.switching_key());
        // Header overhead aside, compressed ≈ half of expanded.
        assert!(
            (compressed_bytes.len() as f64) < 0.55 * plain_bytes.len() as f64,
            "{} vs {}",
            compressed_bytes.len(),
            plain_bytes.len()
        );

        // Deserialize and use for a real multiplication.
        let restored = deserialize_switching_key(&ctx, &compressed_bytes).unwrap();
        for (orig, got) in seeded_key
            .switching_key()
            .digits
            .iter()
            .zip(&restored.digits)
        {
            for i in 0..orig.a.limb_count() {
                assert_eq!(orig.a.limb(i), got.a.limb(i), "a must regenerate exactly");
                assert_eq!(orig.b.limb(i), got.b.limb(i));
            }
        }
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let decryptor = Decryptor::new(ctx.clone());
        let ev = Evaluator::new(ctx.clone());
        let pt = encoder
            .encode(&[Complex::new(0.7, 0.0)], 3, ctx.params().scale())
            .unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        let rlk = crate::keys::RelinKey(restored);
        let sq = ev.mul(&ct, &ct, &rlk);
        let out = encoder.decode(&decryptor.decrypt(&sq, &sk));
        assert!((out[0].re - 0.49).abs() < 1e-3);
    }

    #[test]
    fn corrupted_inputs_are_rejected() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(12);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let pt = encoder
            .encode(&[Complex::new(1.0, 0.0)], 1, ctx.params().scale())
            .unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        let good = serialize_ciphertext(&ct);

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            deserialize_ciphertext(&ctx, &bad),
            Err(SerializeError::BadHeader)
        ));
        // Truncation.
        assert!(matches!(
            deserialize_ciphertext(&ctx, &good[..good.len() - 3]),
            Err(SerializeError::Truncated)
        ));
        // Unreduced residue: set a word to u64::MAX.
        let mut unred = good.clone();
        let last = unred.len() - 4;
        unred[last..].copy_from_slice(&[0xff; 4]);
        assert!(matches!(
            deserialize_ciphertext(&ctx, &unred),
            Err(SerializeError::UnreducedResidue) | Err(SerializeError::Truncated)
        ));
        // Wrong context (different primes).
        let other = CkksContext::new(
            CkksParams::builder()
                .log_degree(5)
                .levels(3)
                .scale_bits(31)
                .first_modulus_bits(37)
                .dnum(2)
                .build()
                .unwrap(),
        );
        assert!(matches!(
            deserialize_ciphertext(&other, &good),
            Err(SerializeError::ModulusMismatch)
        ));
    }

    #[test]
    fn version_mismatch_is_its_own_error() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(14);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let pt = encoder
            .encode(&[Complex::new(0.25, 0.0)], 1, ctx.params().scale())
            .unwrap();
        let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
        let mut bytes = serialize_ciphertext(&ct);
        bytes[4] = VERSION + 1;
        assert!(matches!(
            deserialize_ciphertext(&ctx, &bytes),
            Err(SerializeError::VersionMismatch(v)) if v == VERSION + 1
        ));
        // A short buffer is Truncated, not a header error.
        assert!(matches!(
            deserialize_ciphertext(&ctx, &bytes[..3]),
            Err(SerializeError::Truncated)
        ));
    }

    #[test]
    fn plaintext_roundtrip_bit_exact() {
        let ctx = ctx();
        let encoder = Encoder::new(ctx.clone());
        let values: Vec<Complex> = (0..encoder.slots())
            .map(|i| Complex::new(0.1 * i as f64 - 0.4, (i as f64 * 0.7).sin()))
            .collect();
        let pt = encoder.encode(&values, 2, ctx.params().scale()).unwrap();
        let bytes = serialize_plaintext(&pt);
        let back = deserialize_plaintext(&ctx, &bytes).unwrap();
        assert_eq!(back.scale(), pt.scale());
        assert_eq!(back.limb_count(), pt.limb_count());
        for i in 0..pt.limb_count() {
            assert_eq!(back.poly().limb(i), pt.poly().limb(i));
        }
    }

    #[test]
    fn galois_key_set_roundtrips_and_splits_without_expansion() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(15);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let gk = keygen.galois_keys_compressed(&mut rng, &sk, &[1, 2, -1], true);
        let bytes = serialize_galois_keys(&gk);

        // Splitting yields one compressed entry per key, cheaply.
        let entries = galois_key_set_entries(&bytes).unwrap();
        assert_eq!(entries.len(), gk.len());
        for (element, key_bytes) in &entries {
            assert!(gk.get(*element).is_some());
            let key = deserialize_switching_key(&ctx, key_bytes).unwrap();
            assert!(key.is_compressed());
        }

        // Full deserialization reproduces every key bit-exactly.
        let back = deserialize_galois_keys(&ctx, &bytes).unwrap();
        assert_eq!(back.len(), gk.len());
        for (element, key) in gk.iter() {
            let restored = back.get(element).unwrap();
            for (orig, got) in key.digits.iter().zip(&restored.digits) {
                for i in 0..orig.a.limb_count() {
                    assert_eq!(orig.a.limb(i), got.a.limb(i));
                    assert_eq!(orig.b.limb(i), got.b.limb(i));
                }
            }
        }

        // Corrupt bundle headers are rejected, not panicked on.
        let mut bad = bytes.clone();
        bad[5] = 0xff; // absurd count
        assert!(galois_key_set_entries(&bad).is_err());
        assert!(matches!(
            galois_key_set_entries(&bytes[..bytes.len() - 9]),
            Err(SerializeError::Truncated)
        ));
    }

    #[test]
    fn random_garbage_never_panics() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(13);
        for len in [0usize, 4, 5, 64, 1000] {
            let garbage: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let _ = deserialize_ciphertext(&ctx, &garbage);
            let _ = deserialize_switching_key(&ctx, &garbage);
            let _ = deserialize_plaintext(&ctx, &garbage);
            let _ = galois_key_set_entries(&garbage);
            let _ = deserialize_galois_keys(&ctx, &garbage);
        }
    }
}
