//! Closed-loop load generator for the sharded serving runtime.
//!
//! A sweep cell starts a [`Server`] with a given shard/worker shape,
//! provisions a small fleet of tenants (one session, one key set and
//! one ciphertext each — sessions are created *sequentially* so the
//! round-robin acceptor plus self-locating Hello ids spread them across
//! shards), then drives it closed-loop: `connections` client threads,
//! each executing its pre-generated op sequence one request at a time,
//! the next request issued only after the previous reply. Every request
//! is timed individually, so a cell reports both throughput
//! (requests/sec over the loaded wall clock) and the latency tail
//! (p50/p95/p99).
//!
//! The whole request schedule — which tenant each connection drives and
//! the op drawn for every slot — is a pure function of the cell seed
//! via [`fhe_serve::fault::XorShift64`], so a cell replays exactly:
//! same seed, same schedule ([`Plan::generate`]).
//!
//! The interesting sweep axis is shards on a *fixed* key-cache byte
//! budget. With `cache_keys = Some(2)` and four tenants, a one-shard
//! server holds a two-key LRU that four cycling Galois keys thrash —
//! every rotation pays the seeded key expansion. Four shards split the
//! same global budget four ways, but each slice serves exactly one
//! tenant and the cache's keep-newest semantics hold that tenant's key
//! resident, so rotations run from cache. The throughput gap between
//! those two cells is the paper's compute-for-memory trade measured as
//! a serving scaling curve, on a single core — residency, not
//! parallelism.

use ckks::hoisting::{bsgs_required_steps, LinearTransform};
use ckks::serialize::{deserialize_switching_key, serialize_switching_key};
use ckks::{Ciphertext, CkksContext, Encoder, Encryptor, KeyGenerator};
use fhe_math::cfft::Complex;
use fhe_program::program::Program;
use fhe_program::{workloads, ExecInputs};
use fhe_serve::fault::XorShift64;
use fhe_serve::{shard_of, BatchConfig, Client, EvictionPolicy, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simfhe::program::ProgramEnv;
use std::collections::BTreeMap;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// One request kind the generator can draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOp {
    /// Hoisted rotation by one slot (Galois key).
    Rotate,
    /// Ciphertext–ciphertext multiply (relinearization key).
    Mult,
    /// BSGS plaintext matrix–vector product (hoisted Galois set).
    Bsgs,
    /// One uploaded-program execution (manifest keys).
    RunProgram,
}

impl LoadOp {
    /// Every op, in the order [`OpMix::weights`] indexes them.
    pub const ALL: [LoadOp; 4] = [
        LoadOp::Rotate,
        LoadOp::Mult,
        LoadOp::Bsgs,
        LoadOp::RunProgram,
    ];
}

/// A weighted op distribution for one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Short label used in cell names and JSON rows.
    pub name: &'static str,
    /// Draw weights for [`LoadOp::ALL`], in that order.
    pub weights: [u32; 4],
}

impl OpMix {
    /// Pure rotations — the mix that isolates key-cache residency:
    /// every request either runs from a resident Galois key or pays a
    /// seeded expansion.
    pub const fn cached_rotate() -> Self {
        Self {
            name: "cached_rotate",
            weights: [1, 0, 0, 0],
        }
    }

    /// A production-shaped blend: mostly rotations, a fair share of
    /// multiplies, the occasional BSGS and whole-program execution.
    pub const fn mixed() -> Self {
        Self {
            name: "mixed",
            weights: [5, 3, 1, 1],
        }
    }

    /// Whether `op` can ever be drawn from this mix.
    pub fn uses(&self, op: LoadOp) -> bool {
        let idx = LoadOp::ALL.iter().position(|o| *o == op).expect("known op");
        self.weights[idx] > 0
    }
}

/// The full request schedule for one cell: which tenant each connection
/// drives, and the op sequence each connection executes. A pure
/// function of `(seed, shape, mix)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// `tenant_of[c]` is the tenant (session) connection `c` drives.
    pub tenant_of: Vec<usize>,
    /// `ops[c]` is connection `c`'s op sequence, executed in order.
    pub ops: Vec<Vec<LoadOp>>,
}

impl Plan {
    /// Generates the deterministic schedule: a balanced
    /// connection→tenant assignment (each tenant gets within one of
    /// `connections / tenants` drivers, Fisher–Yates-permuted by the
    /// seed) and an independent weighted op draw for every request
    /// slot. Calling this twice with the same arguments yields the
    /// identical plan.
    pub fn generate(
        seed: u64,
        connections: usize,
        tenants: usize,
        requests_per_conn: usize,
        mix: &OpMix,
    ) -> Self {
        assert!(tenants > 0 && connections > 0, "empty cell");
        let mut rng = XorShift64::new(seed);

        let mut tenant_of: Vec<usize> = (0..connections).map(|c| c % tenants).collect();
        for i in (1..tenant_of.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            tenant_of.swap(i, j);
        }

        let total: u32 = mix.weights.iter().sum();
        assert!(total > 0, "mix draws nothing");
        let mut draw = || {
            let mut r = rng.below(u64::from(total)) as u32;
            for (op, w) in LoadOp::ALL.iter().zip(mix.weights) {
                if r < w {
                    return *op;
                }
                r -= w;
            }
            unreachable!("weights sum covers every draw")
        };
        let ops = (0..connections)
            .map(|_| (0..requests_per_conn).map(|_| draw()).collect())
            .collect();

        Self { tenant_of, ops }
    }
}

/// The shape of one sweep cell.
#[derive(Debug, Clone, Copy)]
pub struct CellSpec {
    /// Shard loops the server runs.
    pub shards: usize,
    /// Workers **per shard**.
    pub workers: usize,
    /// Concurrent closed-loop client connections.
    pub connections: usize,
    /// Tenant sessions the connections share.
    pub tenants: usize,
    /// Requests each connection issues.
    pub requests_per_conn: usize,
    /// Seed for the request schedule.
    pub seed: u64,
    /// Op distribution.
    pub mix: OpMix,
    /// Level the driven ciphertext is encoded at. A *low* level under a
    /// deep modulus chain is the paper's byte asymmetry in miniature:
    /// the keyswitch only touches the ciphertext's live limbs, but a
    /// cache miss regenerates the switching key across the full chain —
    /// so the hit/miss cost gap, and with it the shard-residency
    /// scaling curve, widens as this drops.
    pub ct_level: usize,
    /// Global key-cache budget in units of one expanded switching key;
    /// `None` runs effectively uncached-unbounded (1 GiB). `Some(2)`
    /// with four tenants is the residency configuration the module doc
    /// describes.
    pub cache_keys: Option<u64>,
}

impl CellSpec {
    /// The cell's stable name — the JSON row key the trajectory gate
    /// diffs, so it encodes every swept axis.
    pub fn name(&self) -> String {
        format!(
            "loadgen/{}/s{}w{}c{}",
            self.mix.name, self.shards, self.workers, self.connections
        )
    }
}

/// Measured outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// [`CellSpec::name`] of the cell.
    pub name: String,
    /// Total requests completed (all of them — closed-loop never drops).
    pub requests: u64,
    /// Requests per second over the loaded wall clock.
    pub rps: f64,
    /// Mean per-request latency in nanoseconds.
    pub mean_ns: f64,
    /// Median per-request latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Key-cache hits summed across shards — the residency signal.
    pub cache_hits: u64,
    /// Key-cache misses summed across shards (each one paid a seeded
    /// expansion).
    pub cache_misses: u64,
}

impl CellResult {
    /// The cell as one JSON line in the vendored-criterion schema the
    /// bench-trajectory gate parses: `name` + `mean_ns` are the gated
    /// fields; `rps` and the tail quantiles ride along as extra fields
    /// the guard ignores but the artifact records.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"mean_ns\":{:.2},\"iters\":{},\"rps\":{:.2},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"key_hits\":{},\"key_misses\":{}}}",
            self.name,
            self.mean_ns,
            self.requests,
            self.rps,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.cache_hits,
            self.cache_misses
        )
    }
}

/// Nearest-rank percentile over sorted nanosecond samples.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Everything one tenant session needs at request time.
struct TenantRig {
    sid: u64,
    ct: Ciphertext,
    lt: Option<LinearTransform>,
    n1: usize,
    program: Option<(u64, Program, ExecInputs)>,
}

/// Runs one sweep cell end to end and reports its throughput and
/// latency tail. Panics (with the failing call) on any server or
/// protocol error — a load cell that cannot complete is a bug, not a
/// data point.
pub fn run_cell(ctx: &Arc<CkksContext>, spec: &CellSpec) -> CellResult {
    let slots = ctx.params().slots();
    let levels = ctx.params().levels();
    let plan = Plan::generate(
        spec.seed,
        spec.connections,
        spec.tenants,
        spec.requests_per_conn,
        &spec.mix,
    );

    // Budget measurement: relin and Galois switching keys share a shape,
    // so one expanded relin key prices the unit.
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x6c6f_6164_6765_6e21);
    let kg = KeyGenerator::new(ctx.clone());
    let probe_sk = kg.secret_key(&mut rng);
    let probe_rlk = kg.relin_key_compressed(&mut rng, &probe_sk);
    let wire = serialize_switching_key(probe_rlk.switching_key());
    let key_bytes = deserialize_switching_key(ctx, &wire)
        .expect("round-trip the probe key")
        .size_bytes();
    let budget = match spec.cache_keys {
        Some(keys) => keys * key_bytes,
        None => 1 << 30,
    };

    // Batching off: the scheduler's key-set pinning would blur the
    // per-shard residency signal this generator exists to measure.
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            shards: spec.shards,
            workers: spec.workers,
            key_cache_budget: budget,
            eviction: EvictionPolicy::Lru,
            batch: BatchConfig {
                enabled: false,
                ..BatchConfig::baseline()
            },
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    // BSGS transform shared by every tenant that draws Bsgs.
    let diagonals = 4usize;
    let needs_bsgs = spec.mix.uses(LoadOp::Bsgs);
    let needs_mult = spec.mix.uses(LoadOp::Mult);
    let needs_prog = spec.mix.uses(LoadOp::RunProgram);
    let n1 = 2usize;
    let mk_lt = |salt: usize| {
        let mut diags = BTreeMap::new();
        for d in 0..diagonals {
            let diag: Vec<Complex> = (0..slots)
                .map(|j| Complex::new(((j * 3 + d * 5 + salt) % 7) as f64 * 0.1 - 0.2, 0.0))
                .collect();
            diags.insert(d, diag);
        }
        LinearTransform::from_diagonals(diags, slots)
    };

    // Tenants are provisioned over sequential connections: the
    // round-robin acceptor parks connection t on shard t % shards, and
    // Hello mints a session id hashing there, so `tenants == shards`
    // covers every shard with exactly one tenant.
    let mut homes = Vec::with_capacity(spec.tenants);
    let mut rigs = Vec::with_capacity(spec.tenants);
    for t in 0..spec.tenants {
        let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(1 + t as u64));
        let sk = kg.secret_key(&mut rng);

        let lt = needs_bsgs.then(|| mk_lt(t));
        let program = needs_prog.then(|| workloads::dot_product_program(slots, levels, diagonals));
        let mut steps = vec![1i64];
        if let Some(lt) = &lt {
            steps.extend(bsgs_required_steps(lt, n1));
        }
        if let Some(prog) = &program {
            let env = ProgramEnv { levels, slots };
            steps.extend(
                prog.validate(&env)
                    .expect("program validates")
                    .manifest
                    .galois_steps,
            );
        }
        steps.sort_unstable();
        steps.dedup();
        let gk = kg.galois_keys_compressed(&mut rng, &sk, &steps, false);
        let rlk = (needs_mult || needs_prog).then(|| kg.relin_key_compressed(&mut rng, &sk));

        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let mut encrypt = |v: &[f64], level: usize| {
            let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
            let pt = encoder.encode(&cv, level, ctx.params().scale()).unwrap();
            encryptor.encrypt_symmetric(&mut rng, &pt, &sk)
        };

        let mut client = Client::connect(addr, ctx.clone()).expect("tenant connects");
        let sid = client.hello().expect("hello");
        client.upload_galois(sid, &gk).expect("upload galois");
        if let Some(rlk) = &rlk {
            client
                .upload_relin(sid, rlk.switching_key())
                .expect("upload relin");
        }

        let v: Vec<f64> = (0..slots)
            .map(|i| (i as f64 * 0.17 + t as f64).sin() * 0.25)
            .collect();
        let ct = encrypt(&v, spec.ct_level);

        let program = program.map(|prog| {
            let pid = client.upload_program(sid, &prog).expect("upload program");
            let mut diags = BTreeMap::new();
            for d in 0..diagonals {
                let diag: Vec<Complex> = (0..slots)
                    .map(|j| Complex::new(((j * 5 + d * 3 + t) % 5) as f64 * 0.1 - 0.1, 0.0))
                    .collect();
                diags.insert(d, diag);
            }
            let query: Vec<f64> = (0..slots).map(|b| ((b * 2 + t) % 5) as f64 * 0.1).collect();
            let mut inputs = ExecInputs::default();
            inputs.cts.insert("query".into(), encrypt(&query, levels));
            inputs
                .mats
                .insert("db".into(), LinearTransform::from_diagonals(diags, slots));
            (pid, prog, inputs)
        });

        rigs.push(Arc::new(TenantRig {
            sid,
            ct,
            lt,
            n1,
            program,
        }));
        homes.push(client);
    }

    // With one tenant per shard the residency mechanism requires the
    // placement the acceptor promises; check it rather than measure a
    // silently degenerate cell.
    if spec.shards == spec.tenants {
        let mut owners: Vec<usize> = rigs.iter().map(|r| shard_of(r.sid, spec.shards)).collect();
        owners.sort_unstable();
        assert_eq!(
            owners,
            (0..spec.shards).collect::<Vec<_>>(),
            "sequential tenants did not cover all shards"
        );
    }

    // The closed loop: every connection thread runs its schedule, one
    // outstanding request at a time, timing each reply.
    let barrier = Barrier::new(spec.connections + 1);
    let (wall, mut lat) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.connections)
            .map(|c| {
                let rig = Arc::clone(&rigs[plan.tenant_of[c]]);
                let ops = &plan.ops[c];
                let barrier = &barrier;
                let ctx = ctx.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr, ctx).expect("load conn connects");
                    barrier.wait();
                    let mut lat = Vec::with_capacity(ops.len());
                    for op in ops {
                        let t0 = Instant::now();
                        match op {
                            LoadOp::Rotate => {
                                client.rotate(rig.sid, &rig.ct, 1).expect("rotate");
                            }
                            LoadOp::Mult => {
                                client.mult(rig.sid, &rig.ct, &rig.ct).expect("mult");
                            }
                            LoadOp::Bsgs => {
                                let lt =
                                    rig.lt.as_ref().expect("mix drew Bsgs without a transform");
                                client.bsgs(rig.sid, &rig.ct, lt, rig.n1).expect("bsgs");
                            }
                            LoadOp::RunProgram => {
                                let (pid, prog, inputs) = rig
                                    .program
                                    .as_ref()
                                    .expect("mix drew RunProgram unprepared");
                                client
                                    .run_program(rig.sid, *pid, prog, inputs)
                                    .expect("run_program");
                            }
                        }
                        lat.push(t0.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        let lat: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("load thread panicked"))
            .collect();
        (t0.elapsed(), lat)
    });

    for (rig, home) in rigs.iter().zip(&mut homes) {
        home.close_session(rig.sid).expect("close session");
    }
    let cache = server.cache_stats();
    server.shutdown();

    lat.sort_unstable();
    let requests = lat.len() as u64;
    let mean_ns = lat.iter().map(|&n| n as f64).sum::<f64>() / requests as f64;
    CellResult {
        name: spec.name(),
        requests,
        rps: requests as f64 / wall.as_secs_f64(),
        mean_ns,
        p50_ns: percentile(&lat, 0.50),
        p95_ns: percentile(&lat, 0.95),
        p99_ns: percentile(&lat, 0.99),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
    }
}

/// Runs the cell `runs` times and returns the *slowest* complete run
/// by mean latency, with every reported number (rps, tail, hit/miss)
/// taken from that one coherent run.
///
/// Worst-of-N is what makes the trajectory gate stable for thrash
/// cells. A closed-loop cell settles into a sticky cyclic request
/// order; if two connections of the same tenant happen to start
/// adjacent in that cycle, the tenant's key survives between them and
/// the whole run lands in a lucky fast regime. The cell's *designed*
/// regime — a deliberately thrashing cache — is its slow mode, so the
/// slowest of N runs is the one that actually measured the experiment,
/// on both the baseline side and the CI side. Adjacency luck would
/// have to strike all N runs to skew it, and in that case the current
/// measurement is fast and the gate passes anyway.
pub fn run_cell_worst(ctx: &Arc<CkksContext>, spec: &CellSpec, runs: usize) -> CellResult {
    assert!(runs > 0, "at least one run");
    (0..runs)
        .map(|_| run_cell(ctx, spec))
        .max_by(|a, b| a.mean_ns.total_cmp(&b.mean_ns))
        .expect("at least one run")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_the_exact_schedule() {
        let mix = OpMix::mixed();
        let a = Plan::generate(7, 32, 4, 50, &mix);
        let b = Plan::generate(7, 32, 4, 50, &mix);
        assert_eq!(a, b, "the schedule must be a pure function of the seed");
        assert_eq!(a.tenant_of.len(), 32);
        assert!(a.ops.iter().all(|seq| seq.len() == 50));
    }

    #[test]
    fn different_seeds_diverge() {
        let mix = OpMix::mixed();
        let a = Plan::generate(7, 32, 4, 50, &mix);
        let b = Plan::generate(8, 32, 4, 50, &mix);
        assert_ne!(a, b, "distinct seeds should not collide on 1600 draws");
    }

    #[test]
    fn assignment_is_balanced_for_every_seed() {
        for seed in 0..20 {
            let plan = Plan::generate(seed, 32, 4, 1, &OpMix::cached_rotate());
            let mut counts = [0usize; 4];
            for &t in &plan.tenant_of {
                counts[t] += 1;
            }
            assert_eq!(counts, [8; 4], "permutation must preserve balance");
        }
    }

    #[test]
    fn cached_rotate_draws_only_rotations() {
        let plan = Plan::generate(3, 8, 4, 100, &OpMix::cached_rotate());
        assert!(plan.ops.iter().flatten().all(|op| *op == LoadOp::Rotate));
    }

    #[test]
    fn mixed_draws_every_op_kind() {
        let plan = Plan::generate(3, 8, 4, 200, &OpMix::mixed());
        for op in LoadOp::ALL {
            assert!(
                plan.ops.iter().flatten().any(|o| *o == op),
                "{op:?} never drawn in 1600 samples of the mixed mix"
            );
        }
    }

    #[test]
    fn json_line_carries_the_gated_and_informational_fields() {
        let r = CellResult {
            name: "loadgen/cached_rotate/s4w1c8".into(),
            requests: 240,
            rps: 123.45,
            mean_ns: 8_000_000.0,
            p50_ns: 7_000_000,
            p95_ns: 12_000_000,
            p99_ns: 20_000_000,
            cache_hits: 236,
            cache_misses: 4,
        };
        let line = r.json_line();
        for needle in [
            "\"name\":\"loadgen/cached_rotate/s4w1c8\"",
            "\"mean_ns\":8000000.00",
            "\"rps\":123.45",
            "\"p99_ns\":20000000",
        ] {
            assert!(line.contains(needle), "{needle} missing from {line}");
        }
    }
}
