//! Scale-out serving sweep: the closed-loop load generator driven over
//! shard count × connection count × worker count, printing a scaling
//! table and appending one JSON row per cell to `$CRITERION_JSON` for
//! the bench-trajectory gate.
//!
//! The headline cells run the `cached_rotate` mix with four tenants on
//! a one-key global cache budget: one shard thrashes the LRU (nearly
//! every rotation pays a seeded full-chain key expansion), four shards
//! hold each tenant's key resident on its own slice. The run *fails*
//! if four shards do not beat one shard on throughput for every swept
//! connection count — the scaling claim is asserted, not eyeballed.
//!
//! `CRITERION_QUICK=1` shrinks the per-connection request counts ~3×
//! for CI; the cell set (and so the gated row names) stays identical.

use ckks::{CkksContext, CkksParams};
use mad_bench::loadgen::{run_cell, run_cell_worst, CellResult, CellSpec, OpMix};
use std::io::Write as _;
use std::sync::Arc;

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Appends one cell row to `$CRITERION_JSON` (JSON-lines, the
/// bench-guard schema).
fn emit(result: &CellResult) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(format!("{}\n", result.json_line()).as_bytes());
    }
}

fn main() {
    // A deep modulus chain with the driven ciphertext rescaled to the
    // bottom of it: switching keys span all 12 levels, so a cache miss
    // regenerates the full-chain key while a hit rotates only the
    // ciphertext's single live limb — the paper's key-byte asymmetry,
    // and the widest honest gap between a resident and a thrashing
    // shard on one core.
    let ctx: Arc<CkksContext> = CkksContext::new(
        CkksParams::builder()
            .log_degree(12)
            .levels(12)
            .scale_bits(40)
            .first_modulus_bits(50)
            .special_modulus_bits(50)
            .dnum(4)
            .build()
            .unwrap(),
    );
    let levels = ctx.params().levels();
    let quick = quick_mode();
    let per_conn = |connections: usize| {
        let total = if quick { 96 } else { 320 };
        // Enough requests per connection that connect cost and the
        // one-time migration to the owning shard amortize away.
        (total / connections).max(if quick { 3 } else { 8 })
    };

    let cell = |shards: usize, workers: usize, connections: usize, mix: OpMix| CellSpec {
        shards,
        workers,
        connections,
        tenants: 4,
        requests_per_conn: per_conn(connections),
        seed: 0xC0FF_EE00 + (shards * 100 + workers * 10 + connections) as u64,
        mix,
        // One key of global budget against four tenant keys: a single
        // shard thrashes (the cache can hold only the most recent
        // tenant), while each of four shards keeps its one tenant's key
        // resident inside its slice. The blended mix is not a residency
        // experiment — it gets an unbounded budget so its trajectory
        // row tracks op cost, not eviction luck.
        cache_keys: if mix.name == "cached_rotate" {
            Some(1)
        } else {
            None
        },
        // Rotations drive a bottom-of-chain ciphertext (cheap hit,
        // expensive miss); the blended mix needs mult/BSGS headroom and
        // runs at the top.
        ct_level: if mix.name == "cached_rotate" {
            1
        } else {
            levels
        },
    };

    // One unrecorded warmup cell absorbs first-run costs (allocator,
    // page cache, socket stack) so the first measured cell is not the
    // one paying them.
    run_cell(
        &ctx,
        &CellSpec {
            shards: 2,
            workers: 1,
            connections: 4,
            tenants: 4,
            requests_per_conn: 2,
            seed: 1,
            mix: OpMix::cached_rotate(),
            cache_keys: Some(1),
            ct_level: 1,
        },
    );

    let mut specs = Vec::new();
    // The shard scaling curve, both fan-in widths.
    for shards in [1usize, 2, 4] {
        for connections in [8usize, 32] {
            specs.push(cell(shards, 1, connections, OpMix::cached_rotate()));
        }
    }
    // The worker axis: more workers per shard cannot buy back what key
    // thrash costs, and must not regress the sharded cell.
    specs.push(cell(1, 2, 8, OpMix::cached_rotate()));
    specs.push(cell(4, 2, 8, OpMix::cached_rotate()));
    // The production-shaped mix at the sweep's endpoints.
    for shards in [1usize, 4] {
        specs.push(cell(shards, 1, 8, OpMix::mixed()));
    }

    println!(
        "{:<34} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "cell", "reqs", "req/s", "p50 ms", "p95 ms", "p99 ms", "hit/miss"
    );
    let mut results = Vec::new();
    for spec in &specs {
        let r = run_cell_worst(&ctx, spec, 3);
        println!(
            "{:<34} {:>8} {:>10.1} {:>10.2} {:>10.2} {:>10.2} {:>12}",
            r.name,
            r.requests,
            r.rps,
            r.p50_ns as f64 / 1e6,
            r.p95_ns as f64 / 1e6,
            r.p99_ns as f64 / 1e6,
            format!("{}/{}", r.cache_hits, r.cache_misses),
        );
        emit(&r);
        results.push(r);
    }

    // The scaling claim: four shards strictly beat one shard on the
    // residency mix at every connection count, single worker.
    let rps_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("cell {name} missing"))
            .rps
    };
    for connections in [8usize, 32] {
        let one = rps_of(&format!("loadgen/cached_rotate/s1w1c{connections}"));
        let four = rps_of(&format!("loadgen/cached_rotate/s4w1c{connections}"));
        assert!(
            four > one,
            "4 shards must out-serve 1 shard on cached rotations at {connections} connections \
             (got {four:.1} vs {one:.1} req/s) — key residency did not materialize"
        );
        println!(
            "scaling c{connections}: 1 shard {one:.1} req/s -> 4 shards {four:.1} req/s ({:.2}x)",
            four / one
        );
    }
}
