//! Regenerates Table 4: per-primitive operation counts, DRAM transfers,
//! and arithmetic intensity, against the paper's published values.
fn main() {
    println!("{}", mad_bench::table4().render());
}
