//! Regenerates Figure 2: cumulative impact of the caching optimizations
//! on bootstrapping DRAM transfers.
fn main() {
    println!("{}", mad_bench::fig2().render());
    let (before, after) = mad_bench::ai_improvement();
    println!(
        "bootstrapping AI with caching + algorithmic MAD: {before:.2} -> {after:.2} ({:.1}x; paper: 3x)",
        after / before
    );
}
