//! §4.4: performance vs. area/cost trade-offs. For each large-cache ASIC,
//! compares the original configuration against the same design with MAD
//! at 32 MiB: die area, estimated relative cost (area/yield), and
//! throughput per cost.
//!
//! Run with: `cargo run --release -p mad-bench --bin area_tradeoff`

use simfhe::area::{tradeoff_rows, AreaModel};
use simfhe::report::Table;
use simfhe::throughput::{run_mad_bootstrap, PublishedDesign};
use simfhe::{HardwareConfig, SchemeParams};

const DEFECT_DENSITY: f64 = 0.001; // defects per mm², 7nm-class

fn main() {
    let model = AreaModel::n7();
    let designs: [(HardwareConfig, PublishedDesign); 3] = [
        (HardwareConfig::bts(), PublishedDesign::table6()[2]),
        (HardwareConfig::ark(), PublishedDesign::table6()[3]),
        (HardwareConfig::craterlake(), PublishedDesign::table6()[4]),
    ];
    let mut t = Table::new(
        format!("§4.4 — performance vs area/cost at {model}"),
        &[
            "config",
            "die mm²",
            "mem frac",
            "rel cost",
            "tput(10^7/s)",
            "tput/cost",
        ],
    );
    for (hw, published) in designs {
        let mad = run_mad_bootstrap(SchemeParams::mad_practical(), &hw.with_cache_mb(32.0));
        let rows = tradeoff_rows(
            &hw,
            &model,
            DEFECT_DENSITY,
            &[
                (hw.on_chip_mb, published.throughput_display()),
                (32.0, mad.throughput_display),
            ],
        );
        for r in rows {
            t.row(&[
                r.label,
                format!("{:.0}", r.die_mm2),
                format!("{:.2}", r.memory_fraction),
                format!("{:.0}", r.relative_cost),
                format!("{:.0}", r.throughput),
                format!("{:.2}", r.throughput_per_cost),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "MAD at 32 MiB trades raw bootstrapping throughput for an 8x-16x smaller on-chip\n\
         memory. Under the yield model the throughput-per-cost ratio flips in MAD's favour\n\
         on BTS (5.6x) and ARK (1.8x); CraterLake - the most bandwidth-rich design - stays\n\
         roughly neutral, matching the paper's note that in some cases one must weigh\n\
         performance against area/cost before choosing which MAD optimizations to apply."
    );
}
