//! Regenerates Table 6: bootstrapping throughput of the five published
//! accelerator designs vs the same hardware with MAD at 32 MB. Pass
//! `--search` to re-optimize parameters per design.
fn main() {
    let searched = std::env::args().any(|a| a == "--search");
    println!("{}", mad_bench::table6(searched).render());
}
