//! Regenerates Figure 6: HELR LR-training and ResNet-20 inference times,
//! original designs vs +MAD at several cache sizes. Pass `lr`, `resnet`,
//! or nothing for both.
use fhe_apps::Fig6Workload;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg.is_empty() || arg == "lr" {
        println!("{}", mad_bench::fig6(Fig6Workload::LrTraining).render());
    }
    if arg.is_empty() || arg == "resnet" {
        println!(
            "{}",
            mad_bench::fig6(Fig6Workload::ResNetInference).render()
        );
    }
}
