//! Regenerates Figure 3: cumulative impact of the algorithmic
//! optimizations on bootstrapping compute and DRAM transfers.
fn main() {
    println!("{}", mad_bench::fig3().render());
}
