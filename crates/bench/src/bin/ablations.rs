//! Ablation studies for the design choices DESIGN.md calls out:
//! each algorithmic optimization in isolation (not cumulative), the BSGS
//! baby/giant trade-off of §3.2, and dnum / fftIter sweeps at 32 MiB.
//!
//! Run with: `cargo run --release -p mad-bench --bin ablations`

use simfhe::matvec::MatVecShape;
use simfhe::report::Table;
use simfhe::throughput::run_mad_bootstrap;
use simfhe::{AlgoOpts, CachingLevel, CostModel, HardwareConfig, MadConfig, SchemeParams};

fn main() {
    isolated_algorithmic_opts();
    bsgs_split();
    dnum_sweep();
    fft_iter_sweep();
    cache_sweep();
}

/// Each algorithmic optimization toggled alone against a common baseline.
fn isolated_algorithmic_opts() {
    let base_algo = AlgoOpts {
        modup_hoist: true,
        ..AlgoOpts::none()
    };
    let variants: [(&str, AlgoOpts); 4] = [
        ("none (ModUp hoist only)", base_algo),
        (
            "only ModDown merge",
            AlgoOpts {
                moddown_merge: true,
                ..base_algo
            },
        ),
        (
            "only ModDown hoisting",
            AlgoOpts {
                moddown_hoist: true,
                ..base_algo
            },
        ),
        (
            "only key compression",
            AlgoOpts {
                key_compression: true,
                ..base_algo
            },
        ),
    ];
    let mut t = Table::new(
        "Ablation: algorithmic optimizations in isolation (bootstrap, MAD params, full caching)",
        &["variant", "Gops", "ct GB", "key GB", "total GB", "AI"],
    );
    for (name, algo) in variants {
        let b = CostModel::new(
            SchemeParams::mad_practical(),
            MadConfig {
                caching: CachingLevel::LimbReorder,
                algo,
            },
        )
        .bootstrap();
        t.row(&[
            name.to_string(),
            format!("{:.1}", b.cost.ops() as f64 / 1e9),
            format!("{:.1}", (b.cost.ct_read + b.cost.ct_write) as f64 / 1e9),
            format!("{:.1}", b.cost.key_read as f64 / 1e9),
            format!("{:.1}", b.cost.dram_total() as f64 / 1e9),
            format!("{:.2}", b.cost.arithmetic_intensity()),
        ]);
    }
    println!("{}", t.render());
}

/// §3.2's baby/giant trade-off: larger baby step = more key reads, fewer
/// ciphertext reads.
fn bsgs_split() {
    let params = SchemeParams::baseline();
    let model = CostModel::new(
        params,
        MadConfig {
            caching: CachingLevel::LimbReorder,
            algo: AlgoOpts {
                modup_hoist: true,
                ..AlgoOpts::none()
            },
        },
    );
    let shape = MatVecShape {
        ell: 35,
        diagonals: 63,
    };
    let mut t = Table::new(
        "Ablation: BSGS split for one PtMatVecMult (ℓ=35, 63 diagonals)",
        &["schedule", "keys read/matmul", "ct GB", "key GB", "Gops"],
    );
    // The library's default split plus the fully-hoisted (flat) schedule.
    let bsgs = model.pt_mat_vec_mult(shape);
    let n1 = model.bsgs_baby_dim(shape.diagonals);
    let n2 = shape.diagonals.div_ceil(n1);
    t.row(&[
        format!("BSGS n1={n1}, n2={n2}"),
        format!("{}", n1 + n2 - 1),
        format!(
            "{:.2}",
            (bsgs.cost.ct_read + bsgs.cost.ct_write) as f64 / 1e9
        ),
        format!("{:.2}", bsgs.cost.key_read as f64 / 1e9),
        format!("{:.1}", bsgs.cost.ops() as f64 / 1e9),
    ]);
    let hoisted_model = CostModel::new(
        params,
        MadConfig {
            caching: CachingLevel::LimbReorder,
            algo: AlgoOpts {
                modup_hoist: true,
                moddown_hoist: true,
                ..AlgoOpts::none()
            },
        },
    );
    let flat = hoisted_model.pt_mat_vec_mult(shape);
    t.row(&[
        "flat hoisted (n1 = r)".to_string(),
        format!("{}", shape.diagonals),
        format!(
            "{:.2}",
            (flat.cost.ct_read + flat.cost.ct_write) as f64 / 1e9
        ),
        format!("{:.2}", flat.cost.key_read as f64 / 1e9),
        format!("{:.1}", flat.cost.ops() as f64 / 1e9),
    ]);
    println!("{}", t.render());
}

/// dnum sweep at 32 MiB: fewer digits mean fewer ModUps but larger α
/// (bigger working set and special basis).
fn dnum_sweep() {
    let hw = HardwareConfig::gpu().with_cache_mb(32.0);
    let mut t = Table::new(
        "Ablation: dnum at 32 MiB (L=40, logq=50, fftIter=6)",
        &["dnum", "alpha", "caching", "boot ms", "tput(10^7/s)"],
    );
    for dnum in [1usize, 2, 3, 4, 5] {
        let p = SchemeParams {
            dnum,
            ..SchemeParams::mad_practical()
        };
        if !p.is_secure_128() {
            continue;
        }
        let run = run_mad_bootstrap(p, &hw);
        t.row(&[
            dnum.to_string(),
            p.alpha().to_string(),
            run.config.caching.to_string(),
            format!("{:.1}", run.runtime_ms),
            format!("{:.0}", run.throughput_display),
        ]);
    }
    println!("{}", t.render());
}

/// fftIter sweep: more, smaller DFT matrices trade extra levels for fewer
/// rotations per matrix.
fn fft_iter_sweep() {
    let hw = HardwareConfig::gpu().with_cache_mb(32.0);
    let mut t = Table::new(
        "Ablation: fftIter at 32 MiB (L=40, logq=50, dnum=3)",
        &[
            "fftIter",
            "levels consumed",
            "log Q1",
            "boot ms",
            "tput(10^7/s)",
        ],
    );
    for fft_iter in [1usize, 2, 3, 4, 6, 8] {
        let p = SchemeParams {
            fft_iter,
            ..SchemeParams::mad_practical()
        };
        let consumed = 2 * fft_iter + 2 + simfhe::bootstrap::EVAL_MOD_DEPTH;
        if p.limbs <= consumed {
            continue;
        }
        let run = run_mad_bootstrap(p, &hw);
        t.row(&[
            fft_iter.to_string(),
            run.bootstrap.levels_consumed.to_string(),
            run.bootstrap.log_q1.to_string(),
            format!("{:.1}", run.runtime_ms),
            format!("{:.0}", run.throughput_display),
        ]);
    }
    println!("{}", t.render());
}

/// Cache-size sweep: §4.2's "any increase in the on-chip memory beyond
/// 32 MB does not improve the bootstrapping throughput" — the caching
/// ladder saturates once the α-limb working set fits.
fn cache_sweep() {
    let mut t = Table::new(
        "Ablation: on-chip memory sweep (MAD params, GPU-class bandwidth)",
        &["cache MiB", "caching level", "boot ms", "tput(10^7/s)"],
    );
    for cache in [1.0f64, 2.0, 6.0, 16.0, 32.0, 64.0, 256.0, 512.0] {
        let hw = HardwareConfig::gpu().with_cache_mb(cache);
        let run = run_mad_bootstrap(SchemeParams::mad_practical(), &hw);
        t.row(&[
            format!("{cache}"),
            run.config.caching.to_string(),
            format!("{:.1}", run.runtime_ms),
            format!("{:.0}", run.throughput_display),
        ]);
    }
    println!("{}", t.render());
}
