//! Per-operation cost breakdown of the application workloads (HELR LR
//! training and ResNet-20 inference), backing the paper's claim that
//! bootstrapping consumes the lion's share of ML application time.
//!
//! Run with: `cargo run --release -p mad-bench --bin workloads`

use fhe_apps::{helr_workload, resnet20_workload, HelrShape};
use simfhe::report::Table;
use simfhe::workload::Workload;
use simfhe::{CostModel, HardwareConfig, MadConfig, SchemeParams};

fn print_breakdown(name: &str, w: &Workload, model: &CostModel, hw: &HardwareConfig) {
    let total = model.workload_cost(w);
    let mut t = Table::new(
        format!("{name} — {w}"),
        &["op kind", "Gops", "GB", "share%", "time ms"],
    );
    for (kind, c) in model.workload_breakdown(w) {
        t.row(&[
            kind.to_string(),
            format!("{:.1}", c.ops() as f64 / 1e9),
            format!("{:.1}", c.dram_total() as f64 / 1e9),
            format!(
                "{:.1}",
                100.0 * c.dram_total() as f64 / total.dram_total() as f64
            ),
            format!("{:.1}", hw.runtime_seconds(&c) * 1e3),
        ]);
    }
    t.row(&[
        "total".to_string(),
        format!("{:.1}", total.ops() as f64 / 1e9),
        format!("{:.1}", total.dram_total() as f64 / 1e9),
        "100.0".to_string(),
        format!("{:.1}", hw.runtime_seconds(&total) * 1e3),
    ]);
    println!("{}", t.render());
}

fn main() {
    let hw = HardwareConfig::gpu().with_cache_mb(32.0);
    for (label, params, config) in [
        ("baseline", SchemeParams::baseline(), MadConfig::baseline()),
        ("MAD", SchemeParams::mad_practical(), MadConfig::all()),
    ] {
        let model = CostModel::new(params, config);
        print_breakdown(
            &format!("HELR LR training [{label}]"),
            &helr_workload(&params, HelrShape::default()),
            &model,
            &hw,
        );
        print_breakdown(
            &format!("ResNet-20 inference [{label}]"),
            &resnet20_workload(&params),
            &model,
            &hw,
        );
    }
}
