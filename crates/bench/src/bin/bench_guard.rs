//! CI perf-trajectory gate: compares a freshly measured bench JSONL
//! against the committed baseline and fails if any mean regressed beyond
//! the tolerance.
//!
//! Both files use the vendored criterion's JSON-lines schema, one object
//! per benchmark: `{"name": "...", "mean_ns": 123.45, ...}`. Extra fields
//! (`iters`, `elements`, `bytes`) are ignored.
//!
//! ```text
//! bench_guard --baseline BENCH_kernels.json --current current.json \
//!             [--max-ratio 1.25] [--allow-missing]
//! ```
//!
//! Exit status 0 when every benchmark present in the baseline was
//! measured and stayed within `max_ratio × baseline`; 1 otherwise.
//! `--allow-missing` downgrades baseline rows absent from the current
//! run to a warning (for quick-mode runs that filter groups). New
//! benchmarks with no baseline row never fail the gate — commit a
//! refreshed baseline to start tracking them.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut baseline_path = None;
    let mut current_path = None;
    let mut max_ratio = 1.25f64;
    let mut allow_missing = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next(),
            "--current" => current_path = args.next(),
            "--max-ratio" => {
                max_ratio = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--max-ratio needs a number"));
            }
            "--allow-missing" => allow_missing = true,
            other => die(&format!("unknown argument {other}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| die("--baseline <path> is required"));
    let current_path = current_path.unwrap_or_else(|| die("--current <path> is required"));

    let baseline = load(&baseline_path);
    let current = load(&current_path);
    let report = compare(&baseline, &current, max_ratio, allow_missing);

    for line in &report.lines {
        println!("{line}");
    }
    println!(
        "bench_guard: {} compared, {} regressed, {} missing (tolerance {:.0}%)",
        report.compared,
        report.regressed,
        report.missing,
        (max_ratio - 1.0) * 100.0
    );
    if report.failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bench_guard: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> BTreeMap<String, f64> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let map = parse_jsonl(&text);
    if map.is_empty() {
        die(&format!("{path} holds no benchmark rows"));
    }
    map
}

/// Pulls `(name, mean_ns)` out of each JSONL row with a hand-rolled
/// field scan — the schema is flat and machine-written, so full JSON
/// parsing would be dead weight. Later duplicates of a name win (a
/// re-run appends).
fn parse_jsonl(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = string_field(line, "name") else {
            continue;
        };
        let Some(mean) = number_field(line, "mean_ns") else {
            continue;
        };
        if mean.is_finite() && mean > 0.0 {
            out.insert(name, mean);
        }
    }
    out
}

/// The value of `"key":"..."` in `line`. Benchmark names never contain
/// escapes (criterion builds them from group/id strings), so a plain
/// quote scan is exact for this schema.
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// The value of `"key":<number>` in `line`.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    digits.parse().ok()
}

struct Report {
    lines: Vec<String>,
    compared: usize,
    regressed: usize,
    missing: usize,
    failed: bool,
}

fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    max_ratio: f64,
    allow_missing: bool,
) -> Report {
    let mut report = Report {
        lines: Vec::new(),
        compared: 0,
        regressed: 0,
        missing: 0,
        failed: false,
    };
    for (name, &base) in baseline {
        match current.get(name) {
            Some(&now) => {
                report.compared += 1;
                let ratio = now / base;
                let verdict = if ratio > max_ratio {
                    report.regressed += 1;
                    report.failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                report.lines.push(format!(
                    "{verdict:>9}  {name}: {base:.0} ns -> {now:.0} ns ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                ));
            }
            None => {
                report.missing += 1;
                if !allow_missing {
                    report.failed = true;
                }
                report
                    .lines
                    .push(format!("  MISSING  {name}: in baseline, not measured"));
            }
        }
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            report
                .lines
                .push(format!("      new  {name}: no baseline yet"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jsonl(rows: &[(&str, f64)]) -> BTreeMap<String, f64> {
        let text: String = rows
            .iter()
            .map(|(n, m)| format!("{{\"name\":\"{n}\",\"mean_ns\":{m:.2},\"iters\":3}}\n"))
            .collect();
        parse_jsonl(&text)
    }

    #[test]
    fn parses_the_criterion_stub_schema() {
        let text = concat!(
            "{\"name\":\"ntt/forward/1024\",\"mean_ns\":10276.71,\"iters\":3839,\"elements\":1024}\n",
            "{\"name\":\"serve/batching/rotate_fanin_on\",\"mean_ns\":5.5e6,\"iters\":6}\n",
            "not json at all\n",
            "{\"name\":\"dup\",\"mean_ns\":1.0}\n",
            "{\"name\":\"dup\",\"mean_ns\":2.0}\n",
        );
        let map = parse_jsonl(text);
        assert_eq!(map.len(), 3);
        assert_eq!(map["ntt/forward/1024"], 10276.71);
        assert_eq!(map["serve/batching/rotate_fanin_on"], 5.5e6);
        assert_eq!(map["dup"], 2.0, "later rows win");
    }

    #[test]
    fn within_tolerance_passes_and_beyond_fails() {
        let base = jsonl(&[("a", 100.0), ("b", 100.0)]);
        let ok = compare(&base, &jsonl(&[("a", 124.0), ("b", 80.0)]), 1.25, false);
        assert!(!ok.failed);
        assert_eq!(ok.compared, 2);
        let bad = compare(&base, &jsonl(&[("a", 126.0), ("b", 80.0)]), 1.25, false);
        assert!(bad.failed);
        assert_eq!(bad.regressed, 1);
    }

    #[test]
    fn missing_rows_fail_unless_allowed() {
        let base = jsonl(&[("a", 100.0), ("gone", 50.0)]);
        let cur = jsonl(&[("a", 100.0), ("brand_new", 1.0)]);
        let strict = compare(&base, &cur, 1.25, false);
        assert!(strict.failed);
        assert_eq!(strict.missing, 1);
        let lax = compare(&base, &cur, 1.25, true);
        assert!(!lax.failed, "--allow-missing downgrades to a warning");
        // New benchmarks never fail the gate either way.
        assert!(lax.lines.iter().any(|l| l.contains("brand_new")));
    }
}
