//! Regenerates Table 5: the brute-force memory-aware parameter search at
//! 32 MB. Pass `--fast` to search a reduced space (seconds instead of
//! minutes in debug builds).
use simfhe::search::SearchSpace;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let space = if fast {
        SearchSpace {
            log_q: vec![50, 54, 60],
            limbs: (30..=46).step_by(2).collect(),
            dnum: vec![2, 3, 4],
            fft_iter: vec![3, 6],
            ..SearchSpace::default()
        }
    } else {
        SearchSpace::default()
    };
    println!("searching {} candidates...", space.candidate_count());
    println!("{}", mad_bench::table5(&space).render());
}
