#![warn(missing_docs)]

//! Generators for every table and figure in the MAD paper's evaluation.
//!
//! Each `*_table()` function returns a [`simfhe::report::Table`] holding
//! both the simulated values and the paper's published numbers side by
//! side; the binaries in `src/bin/` print them, the Criterion benches in
//! `benches/` time them, and `EXPERIMENTS.md` records the comparison.

pub mod loadgen;

use fhe_apps::{figure6_groups, Fig6Workload};
use simfhe::bootstrap::BootstrapCost;
use simfhe::report::{sig3, Table};
use simfhe::search::{search, SearchSpace};
use simfhe::throughput::{run_mad_bootstrap, PublishedDesign};
use simfhe::{AlgoOpts, CachingLevel, Cost, CostModel, HardwareConfig, MadConfig, SchemeParams};

/// The Table-4 configuration: baseline parameters, a cache of a couple of
/// limbs (O(1)-limb fusion), ModUp hoisting as in Jung et al.
pub fn table4_model() -> CostModel {
    CostModel::new(
        SchemeParams::baseline(),
        MadConfig {
            caching: CachingLevel::OneLimb,
            algo: AlgoOpts {
                modup_hoist: true,
                ..AlgoOpts::none()
            },
        },
    )
}

/// Paper values for Table 4: `(name, Gops, GB, AI)`.
pub const TABLE4_PAPER: [(&str, f64, f64, f64); 12] = [
    ("PtAdd", 0.0046, 0.1101, 0.04),
    ("Add", 0.0092, 0.2202, 0.04),
    ("PtMult", 0.2747, 0.3282, 0.84),
    ("Decomp", 0.0092, 0.0734, 0.12),
    ("ModUp", 0.2847, 0.1510, 1.88),
    ("KSKInnerProd", 0.0629, 0.4530, 0.13),
    ("ModDown", 0.3000, 0.1877, 1.59),
    ("Mult", 1.8333, 1.9293, 0.95),
    ("Automorph", 0.0, 0.1468, 0.0),
    ("Rotate", 1.5310, 1.5645, 0.98),
    ("Conjugate", 1.5310, 1.5645, 0.98),
    ("Bootstrap", 149.546, 207.982, 0.72),
];

/// The simulated cost behind one Table-4 row.
///
/// # Panics
///
/// Panics on an unknown row name.
pub fn table4_cost(model: &CostModel, name: &str) -> Cost {
    let ell = 35;
    match name {
        "PtAdd" => model.pt_add(ell),
        "Add" => model.add(ell),
        "PtMult" => model.pt_mult(ell),
        "Decomp" => {
            // The paper's row is charged without fusion (a standalone pass).
            let unfused = CostModel::new(
                model.params,
                MadConfig {
                    caching: CachingLevel::Baseline,
                    algo: model.config.algo,
                },
            );
            unfused.decomp(ell)
        }
        "ModUp" => model.mod_up_digit(ell, model.params.alpha()),
        "KSKInnerProd" => model.ksk_inner_product(ell, 3, true, true),
        "ModDown" => model.mod_down(ell, model.params.special_limbs()),
        "Mult" => model.mult(ell),
        "Automorph" => model.automorph(ell, true),
        "Rotate" | "Conjugate" => model.rotate(ell),
        "Bootstrap" => model.bootstrap().cost,
        other => panic!("unknown Table-4 row {other}"),
    }
}

/// Regenerates Table 4 (ops, DRAM transfers, arithmetic intensity per
/// primitive) with the paper's numbers alongside.
pub fn table4() -> Table {
    let model = table4_model();
    let mut t = Table::new(
        "Table 4 — ops (Gops), DRAM (GB), arithmetic intensity; logN=17, ℓ=35, dnum=3",
        &["op", "Gops", "paper", "GB", "paper", "AI", "paper"],
    );
    for (name, p_ops, p_gb, p_ai) in TABLE4_PAPER {
        let c = table4_cost(&model, name);
        t.row(&[
            name.to_string(),
            format!("{:.4}", c.ops() as f64 / 1e9),
            format!("{p_ops:.4}"),
            format!("{:.4}", c.dram_total() as f64 / 1e9),
            format!("{p_gb:.4}"),
            format!("{:.2}", c.arithmetic_intensity()),
            format!("{p_ai:.2}"),
        ]);
    }
    t
}

/// Paper's cumulative ciphertext-traffic reductions in Figure 2.
pub const FIG2_PAPER_REDUCTIONS: [(&str, f64); 5] = [
    ("baseline", 0.0),
    ("O(1)-limb", -15.0),
    ("O(β)-limb", -22.0),
    ("O(α)-limb", -44.0),
    ("limb re-order", -52.0),
];

/// Bootstrap cost at each caching level (baseline parameters, ModUp
/// hoisting only — the Figure-2 setting).
pub fn fig2_ladder() -> Vec<(CachingLevel, BootstrapCost)> {
    CachingLevel::ALL
        .iter()
        .map(|&lvl| {
            let model = CostModel::new(
                SchemeParams::baseline(),
                MadConfig {
                    caching: lvl,
                    algo: AlgoOpts {
                        modup_hoist: true,
                        ..AlgoOpts::none()
                    },
                },
            );
            (lvl, model.bootstrap())
        })
        .collect()
}

/// Regenerates Figure 2: cumulative DRAM-transfer impact of the caching
/// optimizations on one bootstrapping operation.
pub fn fig2() -> Table {
    let ladder = fig2_ladder();
    let base_ct = (ladder[0].1.cost.ct_read + ladder[0].1.cost.ct_write) as f64;
    let mut t = Table::new(
        "Figure 2 — cumulative caching optimizations on bootstrapping",
        &["config", "ct GB", "Δct%", "paper", "total GB", "AI"],
    );
    for ((lvl, b), (_, paper_delta)) in ladder.iter().zip(FIG2_PAPER_REDUCTIONS) {
        let ct = (b.cost.ct_read + b.cost.ct_write) as f64;
        t.row(&[
            lvl.to_string(),
            format!("{:.1}", ct / 1e9),
            format!("{:+.1}", (ct / base_ct - 1.0) * 100.0),
            format!("{paper_delta:+.0}"),
            format!("{:.1}", b.cost.dram_total() as f64 / 1e9),
            format!("{:.2}", b.cost.arithmetic_intensity()),
        ]);
    }
    t
}

/// Bootstrap cost along the Figure-3 algorithmic ladder (all caching
/// optimizations on, MAD-practical parameters).
pub fn fig3_ladder() -> Vec<(&'static str, BootstrapCost)> {
    AlgoOpts::figure3_ladder()
        .into_iter()
        .map(|(name, algo)| {
            let model = CostModel::new(
                SchemeParams::mad_practical(),
                MadConfig {
                    caching: CachingLevel::LimbReorder,
                    algo,
                },
            );
            (name, model.bootstrap())
        })
        .collect()
}

/// Regenerates Figure 3: cumulative impact of the algorithmic
/// optimizations (paper: merge −6% compute; hoisting −34% compute, −19%
/// ct DRAM, +25% key reads; key compression −50% key reads).
pub fn fig3() -> Table {
    let ladder = fig3_ladder();
    let mut t = Table::new(
        "Figure 3 — cumulative algorithmic optimizations on bootstrapping",
        &[
            "config", "Gops", "Δops%", "ct GB", "Δct%", "key GB", "Δkey%", "AI",
        ],
    );
    let mut prev: Option<Cost> = None;
    for (name, b) in &ladder {
        let c = b.cost;
        let (dops, dct, dkey) = match prev {
            Some(p) => (
                (c.ops() as f64 / p.ops() as f64 - 1.0) * 100.0,
                ((c.ct_read + c.ct_write) as f64 / (p.ct_read + p.ct_write) as f64 - 1.0) * 100.0,
                (c.key_read as f64 / p.key_read as f64 - 1.0) * 100.0,
            ),
            None => (0.0, 0.0, 0.0),
        };
        t.row(&[
            name.to_string(),
            format!("{:.1}", c.ops() as f64 / 1e9),
            format!("{dops:+.1}"),
            format!("{:.1}", (c.ct_read + c.ct_write) as f64 / 1e9),
            format!("{dct:+.1}"),
            format!("{:.1}", c.key_read as f64 / 1e9),
            format!("{dkey:+.1}"),
            format!("{:.2}", c.arithmetic_intensity()),
        ]);
        prev = Some(c);
    }
    t
}

/// The headline arithmetic-intensity improvement (paper: 3×, 0.72 → ~2.2).
pub fn ai_improvement() -> (f64, f64) {
    let before = table4_model().bootstrap().cost.arithmetic_intensity();
    let after = CostModel::new(SchemeParams::mad_practical(), MadConfig::all())
        .bootstrap()
        .cost
        .arithmetic_intensity();
    (before, after)
}

/// Regenerates Table 5: the baseline parameter set vs the memory-aware
/// optimum found by the brute-force search at 32 MB.
pub fn table5(space: &SearchSpace) -> Table {
    let hw = HardwareConfig::gpu().with_cache_mb(32.0);
    let results = search(space, &hw);
    let best = results.first().expect("non-empty search space");
    let baseline_run = run_mad_bootstrap(SchemeParams::baseline(), &hw);
    let mut t = Table::new(
        "Table 5 — baseline vs memory-aware optimal bootstrapping parameters (32 MB)",
        &["set", "n", "logq", "L", "dnum", "fftIter", "tput(10^7/s)"],
    );
    for (label, run) in [
        ("baseline [20]", &baseline_run),
        ("ours (searched)", &best.run),
    ] {
        let p = run.params;
        t.row(&[
            label.to_string(),
            format!("2^{}", p.log_n - 1),
            p.log_q.to_string(),
            p.limbs.to_string(),
            p.dnum.to_string(),
            p.fft_iter.to_string(),
            sig3(run.throughput_display),
        ]);
    }
    // The paper's published rows for reference.
    t.row(&[
        "paper baseline".into(),
        "2^16".into(),
        "54".into(),
        "35".into(),
        "3".into(),
        "3".into(),
        "-".into(),
    ]);
    t.row(&[
        "paper ours".into(),
        "2^16".into(),
        "50".into(),
        "40".into(),
        "2".into(),
        "6".into(),
        "-".into(),
    ]);
    t
}

/// Regenerates Table 6: published designs vs the same hardware with MAD
/// at 32 MB (MAD-practical parameters; pass `searched = true` to run the
/// full parameter search per design instead).
pub fn table6(searched: bool) -> Table {
    let designs = [
        HardwareConfig::gpu(),
        HardwareConfig::f1(),
        HardwareConfig::bts(),
        HardwareConfig::ark(),
        HardwareConfig::craterlake(),
    ];
    // Paper's normalized-throughput column (published / MAD).
    let paper_norm = [0.1361, 0.0005, 1.7178, 2.1326, 4.6248];
    let mut t = Table::new(
        "Table 6 — bootstrapping comparison (published vs +MAD at 32 MB)",
        &[
            "design", "pub ms", "pub tput", "MAD ms", "MAD tput", "pub/MAD", "paper", "bound",
        ],
    );
    for ((pubd, hw), paper) in PublishedDesign::table6()
        .iter()
        .zip(&designs)
        .zip(paper_norm)
    {
        let mad_hw = hw.with_cache_mb(32.0);
        let params = if searched {
            simfhe::search::best_params(&SearchSpace::default(), &mad_hw)
                .expect("search finds parameters")
        } else {
            SchemeParams::mad_practical()
        };
        let run = run_mad_bootstrap(params, &mad_hw);
        t.row(&[
            pubd.name.to_string(),
            format!("{:.2}", pubd.bootstrap_ms),
            sig3(pubd.throughput_display()),
            format!("{:.2}", run.runtime_ms),
            sig3(run.throughput_display),
            format!("{:.4}", pubd.throughput_display() / run.throughput_display),
            format!("{paper:.4}"),
            if run.memory_bound { "mem" } else { "comp" }.to_string(),
        ]);
    }
    t
}

/// Regenerates one Figure-6 panel set (LR training or ResNet-20
/// inference): per design, the original bar and the +MAD bars.
pub fn fig6(kind: Fig6Workload) -> Table {
    let title = match kind {
        Fig6Workload::LrTraining => "Figure 6(a-e) — HELR LR training time",
        Fig6Workload::ResNetInference => "Figure 6(f-h) — ResNet-20 inference time",
    };
    let mut t = Table::new(
        title,
        &["bar", "cache MB", "caching", "time (s)", "speedup", "bound"],
    );
    for (_, bars) in figure6_groups(kind) {
        let orig = bars[0].runtime_s;
        for b in &bars {
            t.row(&[
                b.label.clone(),
                format!("{}", b.cache_mb as u64),
                if b.mad {
                    b.caching.to_string()
                } else {
                    "baseline".into()
                },
                format!("{:.3}", b.runtime_s),
                format!("{:.2}x", orig / b.runtime_s),
                if b.memory_bound { "mem" } else { "comp" }.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_all_rows_within_tolerance() {
        let model = table4_model();
        for (name, p_ops, p_gb, _) in TABLE4_PAPER {
            let c = table4_cost(&model, name);
            let gops = c.ops() as f64 / 1e9;
            let gb = c.dram_total() as f64 / 1e9;
            if p_ops > 0.0 {
                assert!(
                    (gops / p_ops - 1.0).abs() < 0.30,
                    "{name}: {gops:.4} Gops vs paper {p_ops}"
                );
            }
            assert!(
                (gb / p_gb - 1.0).abs() < 0.30,
                "{name}: {gb:.4} GB vs paper {p_gb}"
            );
        }
        assert_eq!(table4().len(), 12);
    }

    #[test]
    fn fig2_reductions_track_paper_shape() {
        let ladder = fig2_ladder();
        let base = (ladder[0].1.cost.ct_read + ladder[0].1.cost.ct_write) as f64;
        for ((_, b), (name, paper)) in ladder.iter().zip(FIG2_PAPER_REDUCTIONS).skip(1) {
            let delta = ((b.cost.ct_read + b.cost.ct_write) as f64 / base - 1.0) * 100.0;
            assert!(
                (delta - paper).abs() < 10.0,
                "{name}: {delta:+.1}% vs paper {paper:+.0}%"
            );
        }
    }

    #[test]
    fn fig3_directions_match_paper() {
        let ladder = fig3_ladder();
        let costs: Vec<Cost> = ladder.iter().map(|(_, b)| b.cost).collect();
        // Merge: compute down, key reads flat.
        assert!(costs[1].ops() < costs[0].ops());
        assert_eq!(costs[1].key_read, costs[0].key_read);
        // Hoisting: compute down, ct traffic down, key reads up.
        assert!(costs[2].ops() < costs[1].ops());
        assert!(costs[2].ct_read + costs[2].ct_write < costs[1].ct_read + costs[1].ct_write);
        assert!(costs[2].key_read > costs[1].key_read);
        // Key compression: exactly halves key reads, all else equal.
        assert_eq!(costs[3].key_read * 2, costs[2].key_read);
        assert_eq!(costs[3].ops(), costs[2].ops());
    }

    #[test]
    fn ai_improves_by_large_factor() {
        // Paper: 3× (0.72 → ~2.2). Our stricter accounting retains the
        // raised-digit round-trip between ModUp and KSKInnerProd, so we
        // reproduce ~1.8–2×; see EXPERIMENTS.md.
        let (before, after) = ai_improvement();
        assert!(
            after / before > 1.7,
            "AI {before:.2} -> {after:.2} (paper: 0.72 -> ~2.2, 3×)"
        );
    }

    #[test]
    fn table6_reproduces_winner_ordering() {
        let t = table6(false);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn fig6_tables_are_complete() {
        assert_eq!(fig6(Fig6Workload::LrTraining).len(), 3 + 3 + 3 + 4 + 4);
        assert_eq!(fig6(Fig6Workload::ResNetInference).len(), 17);
    }
}
