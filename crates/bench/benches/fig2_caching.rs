//! Criterion bench for the Figure-2 generator: the caching-optimization
//! ladder over one simulated bootstrap.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", mad_bench::fig2().render());
    c.bench_function("fig2/caching_ladder", |b| {
        b.iter(|| std::hint::black_box(mad_bench::fig2_ladder()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
