//! Overhead of the hardened client path: the same homomorphic add served
//! over loopback through the raw [`Client`] versus the
//! [`RetryingClient`]. On a healthy server every retrying call takes the
//! zero-retry fast path, so the gap is the pure bookkeeping price of the
//! retry machinery (attempt accounting, operand re-serialization into the
//! per-attempt closure) — the number that says whether hardening the
//! client by default would cost anything.

use ckks::{Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, KeyGenerator};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fhe_math::cfft::Complex;
use fhe_serve::{Client, RetryPolicy, RetryingClient, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn ctx_2_13() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(13)
            .levels(4)
            .scale_bits(40)
            .first_modulus_bits(50)
            .special_modulus_bits(50)
            .dnum(2)
            .build()
            .unwrap(),
    )
}

fn make_ct(ctx: &Arc<CkksContext>, seed: u64) -> Ciphertext {
    let mut rng = StdRng::seed_from_u64(seed);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let values: Vec<Complex> = (0..ctx.params().slots())
        .map(|i| Complex::new((i as f64 * 0.01).sin(), 0.0))
        .collect();
    let pt = encoder
        .encode(&values, ctx.params().levels(), ctx.params().scale())
        .unwrap();
    encryptor.encrypt_symmetric(&mut rng, &pt, &sk)
}

fn bench_retry_overhead(c: &mut Criterion) {
    let ctx = ctx_2_13();
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let ct = make_ct(&ctx, 1);

    let mut group = c.benchmark_group("serve/retry_overhead");

    let mut raw = Client::connect(addr, ctx.clone()).unwrap();
    let sid = raw.hello().unwrap();
    group.bench_function("add_raw_client", |b| {
        b.iter(|| black_box(raw.add(sid, &ct, &ct).unwrap()))
    });
    raw.close_session(sid).unwrap();

    let mut retrying = RetryingClient::connect(addr, ctx.clone(), RetryPolicy::default()).unwrap();
    group.bench_function("add_retrying_client", |b| {
        b.iter(|| black_box(retrying.add(&ct, &ct).unwrap()))
    });
    // A healthy server must never have triggered the retry path: the
    // comparison above is only the fast-path overhead if this holds.
    let stats = retrying.stats();
    assert_eq!(stats.retries, 0, "retries on a healthy server: {stats:?}");
    assert_eq!(stats.reconnects, 0, "reconnects on loopback: {stats:?}");
    retrying.close().unwrap();

    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_retry_overhead);
criterion_main!(benches);
