//! Criterion benchmarks of the functional CKKS library: the Table-2
//! primitives measured for real at test-scale parameters, including the
//! standard-vs-merged multiplication (the ModDown merge of Figure 4).
use ckks::{CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use fhe_math::cfft::Complex;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(12)
            .levels(6)
            .scale_bits(40)
            .first_modulus_bits(50)
            .special_modulus_bits(50)
            .dnum(3)
            .build()
            .unwrap(),
    );
    let mut rng = StdRng::seed_from_u64(7);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let gk = keygen.galois_keys(&mut rng, &sk, &[1], false);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());

    let values: Vec<Complex> = (0..encoder.slots())
        .map(|i| Complex::new((i as f64 * 0.01).sin(), 0.25))
        .collect();
    let pt = encoder.encode(&values, 6, ctx.params().scale()).unwrap();
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);

    c.bench_function("ckks/encode", |b| {
        b.iter(|| encoder.encode(&values, 6, ctx.params().scale()).unwrap())
    });
    c.bench_function("ckks/encrypt", |b| {
        b.iter(|| encryptor.encrypt_symmetric(&mut rng, &pt, &sk))
    });
    c.bench_function("ckks/add", |b| b.iter(|| evaluator.add(&ct, &ct)));
    c.bench_function("ckks/pt_mult", |b| b.iter(|| evaluator.mul_plain(&ct, &pt)));
    c.bench_function("ckks/mult_standard", |b| {
        b.iter(|| evaluator.mul(&ct, &ct, &rlk))
    });
    c.bench_function("ckks/mult_moddown_merged", |b| {
        b.iter(|| evaluator.mul_merged(&ct, &ct, &rlk))
    });
    c.bench_function("ckks/rotate", |b| b.iter(|| evaluator.rotate(&ct, 1, &gk)));
    c.bench_function("ckks/rescale", |b| b.iter(|| evaluator.rescale(&ct)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
