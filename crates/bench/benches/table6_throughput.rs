//! Criterion bench for the Table-6 generator: MAD bootstrapping on the
//! five published hardware designs.
use criterion::{criterion_group, criterion_main, Criterion};
use simfhe::throughput::run_mad_bootstrap;
use simfhe::{HardwareConfig, SchemeParams};

fn bench(c: &mut Criterion) {
    println!("{}", mad_bench::table6(false).render());
    c.bench_function("table6/mad_run_gpu32", |b| {
        let hw = HardwareConfig::gpu().with_cache_mb(32.0);
        b.iter(|| std::hint::black_box(run_mad_bootstrap(SchemeParams::mad_practical(), &hw)))
    });
    c.bench_function("table6/full_table", |b| {
        b.iter(|| std::hint::black_box(mad_bench::table6(false)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
