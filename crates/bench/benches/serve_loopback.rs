//! Serving-runtime benchmarks over a loopback socket at `N = 2^13`:
//!
//! 1. **Key access, cached vs regenerate-from-seed** — the same rotation
//!    served with a key cache big enough to hold both Galois keys versus
//!    one too small for even two, so every request pays the seeded
//!    expansion. The gap is the paper's compute-for-memory trade measured
//!    end to end through the server.
//! 2. **Requests/sec vs worker count** — four concurrent clients issuing
//!    homomorphic adds against 1, 2 and 4 workers.
//! 3. **Rotation fan-in, scheduler off vs on** — three clients rotating
//!    the same ciphertext under a one-key cache budget. Unbatched, the
//!    rotations thrash the cache; batched, the scheduler groups them,
//!    pins the key-set once and shares one hoisted decomposition. The
//!    cells also print the measured key expansions per request — the
//!    counter the batching scheduler exists to lower.

use ckks::{Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, KeyGenerator};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fhe_math::cfft::Complex;
use fhe_serve::{BatchConfig, BatchHint, Client, EvictionPolicy, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn ctx_2_13() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(13)
            .levels(4)
            .scale_bits(40)
            .first_modulus_bits(50)
            .special_modulus_bits(50)
            .dnum(2)
            .build()
            .unwrap(),
    )
}

struct Tenant {
    client: Client,
    sid: u64,
    ct: Ciphertext,
}

fn setup_tenant(ctx: &Arc<CkksContext>, server: &Server, steps: &[i64], seed: u64) -> Tenant {
    setup_tenant_hinted(ctx, server, steps, seed, BatchHint::Auto)
}

fn setup_tenant_hinted(
    ctx: &Arc<CkksContext>,
    server: &Server,
    steps: &[i64],
    seed: u64,
    hint: BatchHint,
) -> Tenant {
    let mut rng = StdRng::seed_from_u64(seed);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let values: Vec<Complex> = (0..ctx.params().slots())
        .map(|i| Complex::new((i as f64 * 0.01).sin(), 0.0))
        .collect();
    let pt = encoder
        .encode(&values, ctx.params().levels(), ctx.params().scale())
        .unwrap();
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
    let mut client = Client::connect(server.local_addr(), ctx.clone()).unwrap();
    let sid = client.hello_ext(hint).unwrap().session;
    if !steps.is_empty() {
        let gk = kg.galois_keys_compressed(&mut rng, &sk, steps, false);
        client.upload_galois(sid, &gk).unwrap();
    }
    Tenant { client, sid, ct }
}

fn bench_key_cache(c: &mut Criterion) {
    let ctx = ctx_2_13();
    let mut group = c.benchmark_group("serve/key_access");

    // Generous budget: both rotation keys stay expanded after first use.
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 1,
            key_cache_budget: 1 << 30,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut t = setup_tenant(&ctx, &server, &[1, 2], 1);
    // Warm the cache so the measured loop is all hits.
    t.client.rotate(t.sid, &t.ct, 1).unwrap();
    t.client.rotate(t.sid, &t.ct, 2).unwrap();
    group.bench_function("rotate_cached", |b| {
        let mut flip = 1i64;
        b.iter(|| {
            flip = 3 - flip; // alternate 1, 2
            black_box(t.client.rotate(t.sid, &t.ct, flip).unwrap())
        })
    });
    let stats = server.cache_stats();
    assert!(
        stats.hits > 0 && stats.evictions == 0,
        "cached run: {stats:?}"
    );
    server.shutdown();

    // Budget below two expanded keys: alternating rotations evict each
    // other, so every request regenerates its key from the seed.
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 1,
            key_cache_budget: 1,
            eviction: EvictionPolicy::Lru,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut t = setup_tenant(&ctx, &server, &[1, 2], 1);
    t.client.rotate(t.sid, &t.ct, 1).unwrap();
    t.client.rotate(t.sid, &t.ct, 2).unwrap();
    group.bench_function("rotate_regen_from_seed", |b| {
        let mut flip = 1i64;
        b.iter(|| {
            flip = 3 - flip;
            black_box(t.client.rotate(t.sid, &t.ct, flip).unwrap())
        })
    });
    let stats = server.cache_stats();
    assert!(stats.evictions > 0, "regen run must thrash: {stats:?}");
    server.shutdown();
    group.finish();
}

fn bench_throughput_vs_workers(c: &mut Criterion) {
    let ctx = ctx_2_13();
    const CLIENTS: usize = 4;
    const REQS_PER_CLIENT: usize = 4;
    let mut group = c.benchmark_group("serve/throughput");
    group.throughput(Throughput::Elements((CLIENTS * REQS_PER_CLIENT) as u64));
    for workers in [1usize, 2, 4] {
        let server = Server::start(
            ctx.clone(),
            ServeConfig {
                workers,
                queue_capacity: 64,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let tenants: Vec<Mutex<Tenant>> = (0..CLIENTS)
            .map(|i| Mutex::new(setup_tenant(&ctx, &server, &[], 10 + i as u64)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("add_reqs_per_sec", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for tm in &tenants {
                            s.spawn(move || {
                                let mut t = tm.lock().unwrap();
                                let Tenant { client, sid, ct } = &mut *t;
                                for _ in 0..REQS_PER_CLIENT {
                                    black_box(client.add(*sid, ct, ct).unwrap());
                                }
                            });
                        }
                    })
                })
            },
        );
        server.shutdown();
    }
    group.finish();
}

fn bench_batching_fanin(c: &mut Criterion) {
    let ctx = ctx_2_13();
    const FANIN: usize = 3;
    const STEPS: [i64; FANIN] = [1, 2, 1];
    let mut group = c.benchmark_group("serve/batching");
    group.throughput(Throughput::Elements(FANIN as u64));

    // A budget of exactly one expanded key: the {1, 2} keys evict each
    // other unbatched, while a batch pins both and keeps one resident
    // for the next round.
    // Every switching key here has the same full-basis shape, so the
    // relin key is a valid size probe for one expanded Galois key.
    let one_key_bytes = {
        let mut rng = StdRng::seed_from_u64(999);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key_compressed(&mut rng, &sk);
        let wire = ckks::serialize::serialize_switching_key(rlk.switching_key());
        ckks::serialize::deserialize_switching_key(&ctx, &wire)
            .unwrap()
            .size_bytes()
    };

    let mut misses_per_req = [0f64; 2];
    for (cell, batch) in [
        (
            0usize,
            BatchConfig {
                enabled: false,
                ..BatchConfig::baseline()
            },
        ),
        (
            1usize,
            BatchConfig {
                enabled: true,
                max_batch: FANIN,
                max_delay: Duration::from_millis(500),
            },
        ),
    ] {
        let hint = if batch.enabled {
            BatchHint::Throughput
        } else {
            BatchHint::Auto
        };
        let label = if batch.enabled {
            "rotate_fanin_on"
        } else {
            "rotate_fanin_off"
        };
        // One-key budget: without batching, the {1, 2} rotation keys
        // evict each other on nearly every request.
        let server = Server::start(
            ctx.clone(),
            ServeConfig {
                workers: 1,
                queue_capacity: 64,
                key_cache_budget: one_key_bytes,
                eviction: EvictionPolicy::Lru,
                batch,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let t = setup_tenant_hinted(&ctx, &server, &[1, 2], 1, hint);
        let sid = t.sid;
        let ct = t.ct.clone();
        let clients: Vec<Mutex<Client>> = (0..FANIN)
            .map(|_| Mutex::new(Client::connect(server.local_addr(), ctx.clone()).unwrap()))
            .collect();
        let mut iters = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                iters += 1;
                std::thread::scope(|s| {
                    for (i, cm) in clients.iter().enumerate() {
                        let ct = &ct;
                        s.spawn(move || {
                            let mut client = cm.lock().unwrap();
                            black_box(client.rotate(sid, ct, STEPS[i]).unwrap())
                        });
                    }
                })
            })
        });
        let stats = server.cache_stats();
        misses_per_req[cell] = stats.misses as f64 / (iters * FANIN as u64) as f64;
        println!(
            "serve/batching/{label}: {:.3} key expansions per request",
            misses_per_req[cell]
        );
        server.shutdown();
    }
    assert!(
        misses_per_req[1] < misses_per_req[0],
        "batching must lower key expansions per request (off {:.3}, on {:.3})",
        misses_per_req[0],
        misses_per_req[1]
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_key_cache,
    bench_throughput_vs_workers,
    bench_batching_fanin
);
criterion_main!(benches);
