//! Serving-runtime benchmarks over a loopback socket at `N = 2^13`:
//!
//! 1. **Key access, cached vs regenerate-from-seed** — the same rotation
//!    served with a key cache big enough to hold both Galois keys versus
//!    one too small for even two, so every request pays the seeded
//!    expansion. The gap is the paper's compute-for-memory trade measured
//!    end to end through the server.
//! 2. **Requests/sec vs worker count** — four concurrent clients issuing
//!    homomorphic adds against 1, 2 and 4 workers.
//! 3. **Rotation fan-in, scheduler off vs on** — three clients rotating
//!    the same ciphertext under a one-key cache budget. Unbatched, the
//!    rotations thrash the cache; batched, the scheduler groups them,
//!    pins the key-set once and shares one hoisted decomposition. The
//!    cells also print the measured key expansions per request — the
//!    counter the batching scheduler exists to lower.
//! 4. **Tail latency** — a closed-loop load phase measuring every
//!    request individually and reporting p50/p95/p99 per op; the p50
//!    and p95 land in `$CRITERION_JSON` so the bench-trajectory gate
//!    covers the tail, not just the mean.
//! 5. **Tracing overhead** — the cached-rotate path with always-on
//!    request tracing enabled vs disabled, interleaved rounds, median
//!    of round means. The run *fails* if recording costs more than the
//!    observability budget (2%; relaxed under `CRITERION_QUICK`).
//! 6. **RunProgram throughput** — a program uploaded once per session,
//!    then executed repeatedly as a single opcode: the dot-product
//!    similarity search (hoisted BSGS, Galois-only manifest) and the
//!    SHA-256-style stress round (relin + Galois). One round trip per
//!    program run instead of one per instruction.

use ckks::hoisting::LinearTransform;
use ckks::{Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, KeyGenerator};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fhe_math::cfft::Complex;
use fhe_program::{workloads, ExecInputs};
use fhe_serve::{BatchConfig, BatchHint, Client, EvictionPolicy, ObsConfig, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simfhe::program::ProgramEnv;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn ctx_2_13() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(13)
            .levels(4)
            .scale_bits(40)
            .first_modulus_bits(50)
            .special_modulus_bits(50)
            .dnum(2)
            .build()
            .unwrap(),
    )
}

struct Tenant {
    client: Client,
    sid: u64,
    ct: Ciphertext,
}

fn setup_tenant(ctx: &Arc<CkksContext>, server: &Server, steps: &[i64], seed: u64) -> Tenant {
    setup_tenant_hinted(ctx, server, steps, seed, BatchHint::Auto)
}

fn setup_tenant_hinted(
    ctx: &Arc<CkksContext>,
    server: &Server,
    steps: &[i64],
    seed: u64,
    hint: BatchHint,
) -> Tenant {
    let mut rng = StdRng::seed_from_u64(seed);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let values: Vec<Complex> = (0..ctx.params().slots())
        .map(|i| Complex::new((i as f64 * 0.01).sin(), 0.0))
        .collect();
    let pt = encoder
        .encode(&values, ctx.params().levels(), ctx.params().scale())
        .unwrap();
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
    let mut client = Client::connect(server.local_addr(), ctx.clone()).unwrap();
    let sid = client.hello_ext(hint).unwrap().session;
    if !steps.is_empty() {
        let gk = kg.galois_keys_compressed(&mut rng, &sk, steps, false);
        client.upload_galois(sid, &gk).unwrap();
    }
    Tenant { client, sid, ct }
}

fn bench_key_cache(c: &mut Criterion) {
    let ctx = ctx_2_13();
    let mut group = c.benchmark_group("serve/key_access");

    // Generous budget: both rotation keys stay expanded after first use.
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 1,
            key_cache_budget: 1 << 30,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut t = setup_tenant(&ctx, &server, &[1, 2], 1);
    // Warm the cache so the measured loop is all hits.
    t.client.rotate(t.sid, &t.ct, 1).unwrap();
    t.client.rotate(t.sid, &t.ct, 2).unwrap();
    group.bench_function("rotate_cached", |b| {
        let mut flip = 1i64;
        b.iter(|| {
            flip = 3 - flip; // alternate 1, 2
            black_box(t.client.rotate(t.sid, &t.ct, flip).unwrap())
        })
    });
    let stats = server.cache_stats();
    assert!(
        stats.hits > 0 && stats.evictions == 0,
        "cached run: {stats:?}"
    );
    server.shutdown();

    // Budget below two expanded keys: alternating rotations evict each
    // other, so every request regenerates its key from the seed.
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 1,
            key_cache_budget: 1,
            eviction: EvictionPolicy::Lru,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut t = setup_tenant(&ctx, &server, &[1, 2], 1);
    t.client.rotate(t.sid, &t.ct, 1).unwrap();
    t.client.rotate(t.sid, &t.ct, 2).unwrap();
    group.bench_function("rotate_regen_from_seed", |b| {
        let mut flip = 1i64;
        b.iter(|| {
            flip = 3 - flip;
            black_box(t.client.rotate(t.sid, &t.ct, flip).unwrap())
        })
    });
    let stats = server.cache_stats();
    assert!(stats.evictions > 0, "regen run must thrash: {stats:?}");
    server.shutdown();
    group.finish();
}

fn bench_throughput_vs_workers(c: &mut Criterion) {
    let ctx = ctx_2_13();
    const CLIENTS: usize = 4;
    const REQS_PER_CLIENT: usize = 4;
    let mut group = c.benchmark_group("serve/throughput");
    group.throughput(Throughput::Elements((CLIENTS * REQS_PER_CLIENT) as u64));
    for workers in [1usize, 2, 4] {
        let server = Server::start(
            ctx.clone(),
            ServeConfig {
                workers,
                queue_capacity: 64,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let tenants: Vec<Mutex<Tenant>> = (0..CLIENTS)
            .map(|i| Mutex::new(setup_tenant(&ctx, &server, &[], 10 + i as u64)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("add_reqs_per_sec", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for tm in &tenants {
                            s.spawn(move || {
                                let mut t = tm.lock().unwrap();
                                let Tenant { client, sid, ct } = &mut *t;
                                for _ in 0..REQS_PER_CLIENT {
                                    black_box(client.add(*sid, ct, ct).unwrap());
                                }
                            });
                        }
                    })
                })
            },
        );
        server.shutdown();
    }
    group.finish();
}

fn bench_batching_fanin(c: &mut Criterion) {
    let ctx = ctx_2_13();
    const FANIN: usize = 3;
    const STEPS: [i64; FANIN] = [1, 2, 1];
    let mut group = c.benchmark_group("serve/batching");
    group.throughput(Throughput::Elements(FANIN as u64));

    // A budget of exactly one expanded key: the {1, 2} keys evict each
    // other unbatched, while a batch pins both and keeps one resident
    // for the next round.
    // Every switching key here has the same full-basis shape, so the
    // relin key is a valid size probe for one expanded Galois key.
    let one_key_bytes = {
        let mut rng = StdRng::seed_from_u64(999);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key_compressed(&mut rng, &sk);
        let wire = ckks::serialize::serialize_switching_key(rlk.switching_key());
        ckks::serialize::deserialize_switching_key(&ctx, &wire)
            .unwrap()
            .size_bytes()
    };

    let mut misses_per_req = [0f64; 2];
    for (cell, batch) in [
        (
            0usize,
            BatchConfig {
                enabled: false,
                ..BatchConfig::baseline()
            },
        ),
        (
            1usize,
            BatchConfig {
                enabled: true,
                max_batch: FANIN,
                max_delay: Duration::from_millis(500),
            },
        ),
    ] {
        let hint = if batch.enabled {
            BatchHint::Throughput
        } else {
            BatchHint::Auto
        };
        let label = if batch.enabled {
            "rotate_fanin_on"
        } else {
            "rotate_fanin_off"
        };
        // One-key budget: without batching, the {1, 2} rotation keys
        // evict each other on nearly every request.
        let server = Server::start(
            ctx.clone(),
            ServeConfig {
                workers: 1,
                queue_capacity: 64,
                key_cache_budget: one_key_bytes,
                eviction: EvictionPolicy::Lru,
                batch,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let t = setup_tenant_hinted(&ctx, &server, &[1, 2], 1, hint);
        let sid = t.sid;
        let ct = t.ct.clone();
        let clients: Vec<Mutex<Client>> = (0..FANIN)
            .map(|_| Mutex::new(Client::connect(server.local_addr(), ctx.clone()).unwrap()))
            .collect();
        let mut iters = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                iters += 1;
                std::thread::scope(|s| {
                    for (i, cm) in clients.iter().enumerate() {
                        let ct = &ct;
                        s.spawn(move || {
                            let mut client = cm.lock().unwrap();
                            black_box(client.rotate(sid, ct, STEPS[i]).unwrap())
                        });
                    }
                })
            })
        });
        let stats = server.cache_stats();
        misses_per_req[cell] = stats.misses as f64 / (iters * FANIN as u64) as f64;
        println!(
            "serve/batching/{label}: {:.3} key expansions per request",
            misses_per_req[cell]
        );
        server.shutdown();
    }
    assert!(
        misses_per_req[1] < misses_per_req[0],
        "batching must lower key expansions per request (off {:.3}, on {:.3})",
        misses_per_req[0],
        misses_per_req[1]
    );
    group.finish();
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Appends one record to `$CRITERION_JSON` in the harness's JSON-lines
/// format, so hand-measured rows (quantiles, medians) ride the same
/// artifact the bench-trajectory gate diffs.
fn emit_row(name: &str, mean_ns: f64, iters: u64) {
    use std::io::Write as _;
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!("{{\"name\":\"{name}\",\"mean_ns\":{mean_ns:.2},\"iters\":{iters}}}\n");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Nearest-rank percentile over sorted nanosecond samples.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Closed-loop tail-latency phase: one client, every request timed
/// individually, per-op p50/p95/p99 printed and the p50/p95 recorded
/// for the trajectory gate.
fn bench_tail_latency(_c: &mut Criterion) {
    let ctx = ctx_2_13();
    let reqs: usize = if quick_mode() { 40 } else { 200 };
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            key_cache_budget: 1 << 30,
            batch: BatchConfig {
                enabled: false,
                ..BatchConfig::baseline()
            },
            obs: ObsConfig::baseline(),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut t = setup_tenant(&ctx, &server, &[1], 21);
    // Warm the connection, the workers, and the rotation key.
    for _ in 0..3 {
        t.client.add(t.sid, &t.ct, &t.ct).unwrap();
        t.client.rotate(t.sid, &t.ct, 1).unwrap();
    }

    let mut lat_add = Vec::with_capacity(reqs);
    for _ in 0..reqs {
        let t0 = Instant::now();
        black_box(t.client.add(t.sid, &t.ct, &t.ct).unwrap());
        lat_add.push(t0.elapsed().as_nanos() as u64);
    }
    let mut lat_rot = Vec::with_capacity(reqs);
    for _ in 0..reqs {
        let t0 = Instant::now();
        black_box(t.client.rotate(t.sid, &t.ct, 1).unwrap());
        lat_rot.push(t0.elapsed().as_nanos() as u64);
    }
    server.shutdown();

    for (op, mut lat) in [("add", lat_add), ("rotate", lat_rot)] {
        lat.sort_unstable();
        let (p50, p95, p99) = (
            percentile(&lat, 0.50),
            percentile(&lat, 0.95),
            percentile(&lat, 0.99),
        );
        println!(
            "serve/tail/{op}: p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  ({reqs} reqs)",
            p50 as f64 / 1e6,
            p95 as f64 / 1e6,
            p99 as f64 / 1e6,
        );
        emit_row(&format!("serve/tail/{op}/p50"), p50 as f64, reqs as u64);
        emit_row(&format!("serve/tail/{op}/p95"), p95 as f64, reqs as u64);
        assert!(p50 <= p95 && p95 <= p99, "quantiles out of order for {op}");
    }
}

/// Always-on tracing overhead on the cached-rotate path: identical
/// workloads against a tracing-on and a tracing-off server, rounds
/// interleaved so machine drift hits both equally, compared by median
/// of round means.
fn bench_obs_overhead(_c: &mut Criterion) {
    let ctx = ctx_2_13();
    let (rounds, per_round) = if quick_mode() { (5, 10) } else { (7, 30) };
    let start_cell = |enabled: bool| {
        let server = Server::start(
            ctx.clone(),
            ServeConfig {
                workers: 1,
                key_cache_budget: 1 << 30,
                batch: BatchConfig {
                    enabled: false,
                    ..BatchConfig::baseline()
                },
                obs: ObsConfig {
                    enabled,
                    ..ObsConfig::baseline()
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut t = setup_tenant(&ctx, &server, &[1, 2], 1);
        t.client.rotate(t.sid, &t.ct, 1).unwrap();
        t.client.rotate(t.sid, &t.ct, 2).unwrap();
        (server, t)
    };
    let (server_on, mut t_on) = start_cell(true);
    let (server_off, mut t_off) = start_cell(false);

    let mut means_on: Vec<f64> = Vec::with_capacity(rounds);
    let mut means_off: Vec<f64> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        for (means, t) in [(&mut means_on, &mut t_on), (&mut means_off, &mut t_off)] {
            let mut flip = 1i64;
            let t0 = Instant::now();
            for _ in 0..per_round {
                flip = 3 - flip;
                black_box(t.client.rotate(t.sid, &t.ct, flip).unwrap());
            }
            means.push(t0.elapsed().as_nanos() as f64 / per_round as f64);
        }
    }
    server_on.shutdown();
    server_off.shutdown();

    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let on = median(&mut means_on);
    let off = median(&mut means_off);
    let overhead = (on - off) / off;
    println!(
        "serve/obs/overhead: cached rotate {:+.2}% (tracing on {:.3} ms, off {:.3} ms)",
        overhead * 100.0,
        on / 1e6,
        off / 1e6,
    );
    emit_row(
        "serve/obs/rotate_cached_on",
        on,
        (rounds * per_round) as u64,
    );
    emit_row(
        "serve/obs/rotate_cached_off",
        off,
        (rounds * per_round) as u64,
    );
    // The observability budget: always-on recording must stay in the
    // noise on a real op. Quick mode's tiny rounds are noisy, so the
    // gate widens there — the real bar is the full run's.
    let budget = if quick_mode() { 0.10 } else { 0.02 };
    assert!(
        overhead < budget,
        "always-on tracing costs {:.2}% on the cached-rotate path (budget {:.0}%)",
        overhead * 100.0,
        budget * 100.0,
    );
}

/// RunProgram throughput: each program is uploaded once, then every
/// measured iteration is one opcode round trip executing the whole
/// instruction stream server-side with the manifest's keys pinned.
fn bench_program_throughput(c: &mut Criterion) {
    let ctx = ctx_2_13();
    let slots = ctx.params().slots();
    let levels = ctx.params().levels();
    let mut group = c.benchmark_group("serve/program");
    group.throughput(Throughput::Elements(1));
    group.sample_size(10);

    let diagonals = 8usize;
    let dot = workloads::dot_product_program(slots, levels, diagonals);
    let sha = workloads::sha256_stress_program(levels, 1, 4);
    let env = ProgramEnv { levels, slots };
    let steps: Vec<i64> = [&dot, &sha]
        .iter()
        .flat_map(|p| p.validate(&env).unwrap().manifest.galois_steps)
        .collect::<BTreeSet<i64>>()
        .into_iter()
        .collect();

    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 1,
            key_cache_budget: 1 << 30,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let rlk = kg.relin_key_compressed(&mut rng, &sk);
    let gk = kg.galois_keys_compressed(&mut rng, &sk, &steps, false);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let mut encrypt = |v: &[f64]| {
        let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let pt = encoder.encode(&cv, levels, ctx.params().scale()).unwrap();
        encryptor.encrypt_symmetric(&mut rng, &pt, &sk)
    };

    let mut client = Client::connect(server.local_addr(), ctx.clone()).unwrap();
    let sid = client.hello().unwrap();
    client.upload_relin(sid, rlk.switching_key()).unwrap();
    client.upload_galois(sid, &gk).unwrap();

    // Dot-product inputs: an 8-diagonal plaintext database, one query.
    let mut diags = BTreeMap::new();
    for d in 0..diagonals {
        let diag: Vec<Complex> = (0..slots)
            .map(|j| Complex::new(((j * 3 + d * 5) % 7) as f64 * 0.1 - 0.2, 0.0))
            .collect();
        diags.insert(d, diag);
    }
    let query: Vec<f64> = (0..slots)
        .map(|b| ((b * 2 + 1) % 5) as f64 * 0.15)
        .collect();
    let mut dot_inputs = ExecInputs::default();
    dot_inputs.cts.insert("query".into(), encrypt(&query));
    dot_inputs
        .mats
        .insert("db".into(), LinearTransform::from_diagonals(diags, slots));

    // SHA stress inputs: four 0/1 slot vectors.
    let mut sha_inputs = ExecInputs::default();
    for (seed, name) in ["x", "y", "z", "w"].iter().enumerate() {
        let bits: Vec<f64> = (0..slots)
            .map(|b| f64::from((b * 31 + seed * 17).is_multiple_of(3)))
            .collect();
        sha_inputs.cts.insert((*name).into(), encrypt(&bits));
    }

    for (label, prog, inputs) in [
        ("run_dot_product", &dot, &dot_inputs),
        ("run_sha_round", &sha, &sha_inputs),
    ] {
        let pid = client.upload_program(sid, prog).unwrap();
        // Warm the key pins and the connection before measuring.
        client.run_program(sid, pid, prog, inputs).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| black_box(client.run_program(sid, pid, prog, inputs).unwrap()))
        });
    }
    client.close_session(sid).unwrap();
    server.shutdown();
    group.finish();
}

criterion_group!(
    benches,
    bench_key_cache,
    bench_throughput_vs_workers,
    bench_batching_fanin,
    bench_tail_latency,
    bench_obs_overhead,
    bench_program_throughput
);
criterion_main!(benches);
