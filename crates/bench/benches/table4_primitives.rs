//! Criterion bench for the Table-4 generator: times the per-primitive
//! cost-model evaluation and prints the regenerated table once.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", mad_bench::table4().render());
    let model = mad_bench::table4_model();
    c.bench_function("table4/mult_cost", |b| {
        b.iter(|| std::hint::black_box(model.mult(35)))
    });
    c.bench_function("table4/bootstrap_cost", |b| {
        b.iter(|| std::hint::black_box(model.bootstrap()))
    });
    c.bench_function("table4/full_table", |b| {
        b.iter(|| std::hint::black_box(mad_bench::table4()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
