//! Criterion micro-benchmarks of the limb-wise and slot-wise kernels
//! (Table 3 of the paper): negacyclic NTT/iNTT and the fast basis
//! extension, measured on real data.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fhe_math::prime::{generate_ntt_primes, generate_ntt_primes_excluding};
use fhe_math::rns::{BasisExtender, RnsBasis};
use fhe_math::NttTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt");
    for log_n in [10u32, 12, 14] {
        let n = 1usize << log_n;
        let q = generate_ntt_primes(1, 50, n)[0];
        let table = NttTable::new(q, n).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    table.forward(&mut d);
                    d
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("inverse", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut d = data.clone();
                    table.forward(&mut d);
                    d
                },
                |mut d| {
                    table.inverse(&mut d);
                    d
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_basis_extension(c: &mut Criterion) {
    let mut group = c.benchmark_group("basis_extension");
    let n = 1usize << 12;
    for src_limbs in [4usize, 8, 12] {
        let src_primes = generate_ntt_primes(src_limbs, 45, n);
        let dst_primes = generate_ntt_primes_excluding(4, 46, n, &src_primes);
        let src = RnsBasis::new(&src_primes, n).unwrap();
        let dst = RnsBasis::new(&dst_primes, n).unwrap();
        let ext = BasisExtender::new(&src, &dst);
        let mut rng = StdRng::seed_from_u64(2);
        let limbs: Vec<Vec<u64>> = src_primes
            .iter()
            .map(|&q| (0..n).map(|_| rng.gen_range(0..q)).collect())
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("extend_polys", src_limbs),
            &src_limbs,
            |b, _| {
                let refs: Vec<&[u64]> = limbs.iter().map(|l| l.as_slice()).collect();
                b.iter(|| {
                    let mut out = vec![vec![0u64; n]; 4];
                    ext.extend_polys(&refs, &mut out);
                    out
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ntt, bench_basis_extension);
criterion_main!(benches);
