//! Criterion micro-benchmarks of the limb-wise and slot-wise kernels
//! (Table 3 of the paper): negacyclic NTT/iNTT, the fast basis extension
//! over flat limb-major buffers, and serial-vs-parallel comparisons of the
//! multithreaded kernels (full-poly NTT and hybrid key switching) at
//! production ring sizes N = 2^15 and 2^16.
#[cfg(feature = "parallel")]
use ckks::{CkksContext, CkksParams, KeyGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
#[cfg(feature = "parallel")]
use fhe_math::poly::{Representation, RnsPoly};
use fhe_math::prime::{generate_ntt_primes, generate_ntt_primes_excluding};
use fhe_math::rns::{BasisExtender, RnsBasis};
use fhe_math::sampling::sample_uniform_flat;
use fhe_math::NttTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
#[cfg(feature = "parallel")]
use std::sync::Arc;

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt");
    for log_n in [10u32, 12, 14] {
        let n = 1usize << log_n;
        let q = generate_ntt_primes(1, 50, n)[0];
        let table = NttTable::new(q, n).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    table.forward(&mut d);
                    d
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("inverse", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut d = data.clone();
                    table.forward(&mut d);
                    d
                },
                |mut d| {
                    table.inverse(&mut d);
                    d
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Scalar vs unrolled (lazy-reduction, blocked) kernel backends on the
/// single-limb NTT — the headline readout for the `KernelBackend` layer.
/// N = 2^15 is the production ring size the backend work targets.
fn bench_backend_comparison(c: &mut Criterion) {
    use fhe_math::BackendKind;
    for log_n in [12u32, 15] {
        let n = 1usize << log_n;
        let q = generate_ntt_primes(1, 50, n)[0];
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let mut group = c.benchmark_group(format!("ntt_backends_n{n}"));
        group.throughput(Throughput::Elements(n as u64));
        for kind in [BackendKind::Scalar, BackendKind::Unrolled] {
            let table = NttTable::with_backend(q, n, kind.instance()).unwrap();
            group.bench_function(
                BenchmarkId::new(format!("{}/forward", kind.name()), n),
                |b| {
                    b.iter_batched(
                        || data.clone(),
                        |mut d| {
                            table.forward(&mut d);
                            d
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("{}/inverse", kind.name()), n),
                |b| {
                    b.iter_batched(
                        || {
                            let mut d = data.clone();
                            table.forward(&mut d);
                            d
                        },
                        |mut d| {
                            table.inverse(&mut d);
                            d
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
        group.finish();
    }

    // The fused basis-extension inner loops, per backend.
    let n = 1usize << 12;
    let src_primes = generate_ntt_primes(8, 45, n);
    let dst_primes = generate_ntt_primes_excluding(4, 46, n, &src_primes);
    let mut rng = StdRng::seed_from_u64(6);
    let src = sample_uniform_flat(&mut rng, &src_primes, n);
    let mut group = c.benchmark_group(format!("basis_ext_backends_n{n}"));
    group.throughput(Throughput::Elements(n as u64));
    for kind in [BackendKind::Scalar, BackendKind::Unrolled] {
        let src_basis = RnsBasis::with_backend(&src_primes, n, kind.instance()).unwrap();
        let dst_basis = RnsBasis::with_backend(&dst_primes, n, kind.instance()).unwrap();
        let ext = BasisExtender::new(&src_basis, &dst_basis);
        group.bench_function(BenchmarkId::new(kind.name(), n), |b| {
            let mut out = vec![0u64; dst_primes.len() * n];
            b.iter(|| {
                ext.extend_flat(&src, &mut out, n);
                out.last().copied()
            })
        });
    }
    group.finish();
}

fn bench_basis_extension(c: &mut Criterion) {
    let mut group = c.benchmark_group("basis_extension");
    let n = 1usize << 12;
    for src_limbs in [4usize, 8, 12] {
        let src_primes = generate_ntt_primes(src_limbs, 45, n);
        let dst_primes = generate_ntt_primes_excluding(4, 46, n, &src_primes);
        let src_basis = RnsBasis::new(&src_primes, n).unwrap();
        let dst_basis = RnsBasis::new(&dst_primes, n).unwrap();
        let ext = BasisExtender::new(&src_basis, &dst_basis);
        let mut rng = StdRng::seed_from_u64(2);
        let src = sample_uniform_flat(&mut rng, &src_primes, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("extend_flat", src_limbs),
            &src_limbs,
            |b, _| {
                let mut out = vec![0u64; 4 * n];
                b.iter(|| {
                    ext.extend_flat(&src, &mut out, n);
                    out.last().copied()
                })
            },
        );
    }
    group.finish();
}

/// Runs `f` once with the parallel path forced off, then forced on, under
/// the given Criterion labels — the serial-vs-parallel speedup readout for
/// the limb-parallel kernels. Only compiled with the `parallel` feature
/// (without it there is nothing to compare).
#[cfg(feature = "parallel")]
fn bench_serial_vs_parallel(c: &mut Criterion) {
    // Full-polynomial NTT (all limbs) at production ring sizes.
    for log_n in [15u32, 16] {
        let n = 1usize << log_n;
        let limbs = 8usize;
        let primes = generate_ntt_primes(limbs, 45, n);
        let basis = Arc::new(RnsBasis::new(&primes, n).unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        let flat = sample_uniform_flat(&mut rng, &primes, n);
        let poly = RnsPoly::from_flat(basis, flat, Representation::Coefficient);
        let mut group = c.benchmark_group(format!("ntt_full_poly_n{n}"));
        group.throughput(Throughput::Elements((limbs * n) as u64));
        for (label, forced) in [("serial", false), ("parallel", true)] {
            group.bench_function(BenchmarkId::new(label, n), |b| {
                fhe_math::parallel::set_forced(Some(forced));
                b.iter_batched(
                    || poly.clone(),
                    |mut p| {
                        p.to_eval();
                        p
                    },
                    criterion::BatchSize::LargeInput,
                );
                fhe_math::parallel::set_forced(None);
            });
        }
        group.finish();
    }

    // Hybrid key switching end to end.
    for log_n in [15u32, 16] {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_degree(log_n)
                .levels(6)
                .scale_bits(40)
                .first_modulus_bits(50)
                .dnum(3)
                .build()
                .unwrap(),
        );
        let n = ctx.params().degree();
        let mut rng = StdRng::seed_from_u64(4);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key(&mut rng, &sk);
        let ksk = rlk.switching_key();
        let basis = ctx.level_basis(6).clone();
        let moduli: Vec<u64> = basis.moduli().iter().map(|m| m.value()).collect();
        let x = RnsPoly::from_flat(
            basis,
            sample_uniform_flat(&mut rng, &moduli, n),
            Representation::Evaluation,
        );
        let mut group = c.benchmark_group(format!("keyswitch_n{n}"));
        group.sample_size(10);
        for (label, forced) in [("serial", false), ("parallel", true)] {
            group.bench_function(BenchmarkId::new(label, n), |b| {
                fhe_math::parallel::set_forced(Some(forced));
                b.iter(|| {
                    let (v, u) = ckks::keyswitch::keyswitch(&ctx, &x, ksk);
                    v.recycle(ctx.scratch());
                    u.recycle(ctx.scratch());
                });
                fhe_math::parallel::set_forced(None);
            });
        }
        group.finish();
    }
}

#[cfg(not(feature = "parallel"))]
fn bench_serial_vs_parallel(_c: &mut Criterion) {}

criterion_group!(
    benches,
    bench_ntt,
    bench_backend_comparison,
    bench_basis_extension,
    bench_serial_vs_parallel
);
criterion_main!(benches);
