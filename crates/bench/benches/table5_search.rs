//! Criterion bench for the Table-5 parameter search (reduced space so a
//! bench iteration stays sub-second).
use criterion::{criterion_group, criterion_main, Criterion};
use simfhe::search::SearchSpace;

fn reduced_space() -> SearchSpace {
    SearchSpace {
        log_q: vec![50, 54, 60],
        limbs: (30..=46).step_by(2).collect(),
        dnum: vec![2, 3, 4],
        fft_iter: vec![3, 6],
        ..SearchSpace::default()
    }
}

fn bench(c: &mut Criterion) {
    println!("{}", mad_bench::table5(&reduced_space()).render());
    c.bench_function("table5/search_reduced", |b| {
        let space = reduced_space();
        let hw = simfhe::HardwareConfig::gpu().with_cache_mb(32.0);
        b.iter(|| std::hint::black_box(simfhe::search::search(&space, &hw)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
