//! Criterion bench for Figure 6(f–h): ResNet-20 inference across designs
//! and cache sizes.
use criterion::{criterion_group, criterion_main, Criterion};
use fhe_apps::Fig6Workload;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        mad_bench::fig6(Fig6Workload::ResNetInference).render()
    );
    c.bench_function("fig6/resnet_panel", |b| {
        b.iter(|| std::hint::black_box(mad_bench::fig6(Fig6Workload::ResNetInference)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
