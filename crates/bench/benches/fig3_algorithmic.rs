//! Criterion bench for the Figure-3 generator: the algorithmic-
//! optimization ladder over one simulated bootstrap.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", mad_bench::fig3().render());
    c.bench_function("fig3/algorithmic_ladder", |b| {
        b.iter(|| std::hint::black_box(mad_bench::fig3_ladder()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
