//! Executor/schedule identity: the HELR gradient step expressed as a
//! program-IR `Program` must produce *byte-identical* ciphertexts to the
//! hard-coded `fhe_apps::encrypted_lr_step` schedule, and the three
//! shipped workloads must decrypt to their plaintext references.

use ckks::hoisting::LinearTransform;
use ckks::{
    Ciphertext, CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator,
};
use fhe_apps::helr_enc::{encrypted_lr_step, helr_step_program, lr_fold_steps};
use fhe_math::cfft::Complex;
use fhe_program::{execute, workloads, ExecInputs, ExecKeys};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

fn assert_ct_identical(label: &str, a: &Ciphertext, b: &Ciphertext) {
    assert_eq!(
        a.scale().to_bits(),
        b.scale().to_bits(),
        "{label}: scale differs"
    );
    for (side, pa, pb) in [("c0", a.c0(), b.c0()), ("c1", a.c1(), b.c1())] {
        assert_eq!(
            pa.limb_count(),
            pb.limb_count(),
            "{label}/{side}: limb count differs"
        );
        for i in 0..pa.limb_count() {
            assert_eq!(pa.limb(i), pb.limb(i), "{label}/{side}: limb {i} differs");
        }
    }
}

struct Setup {
    ctx: Arc<CkksContext>,
    encoder: Encoder,
    encryptor: Encryptor,
    decryptor: Decryptor,
    ev: Evaluator,
    keygen: KeyGenerator,
    rng: StdRng,
    sk: ckks::SecretKey,
}

fn setup(levels: usize) -> Setup {
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(levels)
            .scale_bits(30)
            .first_modulus_bits(40)
            .special_modulus_bits(34)
            .dnum(levels.min(5))
            .build()
            .unwrap(),
    );
    let mut rng = StdRng::seed_from_u64(41);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    Setup {
        encoder: Encoder::new(ctx.clone()),
        encryptor: Encryptor::new(ctx.clone()),
        decryptor: Decryptor::new(ctx.clone()),
        ev: Evaluator::new(ctx.clone()),
        keygen,
        ctx,
        rng,
        sk,
    }
}

impl Setup {
    fn encrypt(&mut self, v: &[f64], level: usize) -> Ciphertext {
        let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let pt = self
            .encoder
            .encode(&cv, level, self.ctx.params().scale())
            .unwrap();
        self.encryptor
            .encrypt_symmetric(&mut self.rng, &pt, &self.sk)
    }

    fn decrypt(&self, ct: &Ciphertext) -> Vec<f64> {
        self.encoder
            .decode(&self.decryptor.decrypt(ct, &self.sk))
            .iter()
            .map(|c| c.re)
            .collect()
    }
}

#[test]
fn helr_step_program_is_byte_identical_to_the_hardcoded_schedule() {
    let levels = 10;
    let mut s = setup(levels);
    let slots = s.ctx.params().slots();
    let dim = 3;
    let rlk = s.keygen.relin_key(&mut s.rng, &s.sk);
    let gk = s
        .keygen
        .galois_keys(&mut s.rng, &s.sk, &lr_fold_steps(slots), false);

    let xs_plain: Vec<Vec<f64>> = (0..dim)
        .map(|d| {
            (0..slots)
                .map(|b| ((b * 7 + d * 3) % 5) as f64 * 0.2 - 0.4)
                .collect()
        })
        .collect();
    let y01: Vec<f64> = (0..slots).map(|b| ((b % 3) == 0) as u8 as f64).collect();
    let xs: Vec<Ciphertext> = xs_plain.iter().map(|c| s.encrypt(c, levels)).collect();
    let y_ct = s.encrypt(&y01, levels);
    let weights: Vec<Ciphertext> = (0..dim)
        .map(|d| s.encrypt(&vec![0.01 * d as f64; slots], levels))
        .collect();

    // Hard-coded schedule (mutates in place).
    let mut legacy = weights.clone();
    encrypted_lr_step(
        &s.ev,
        rlk.switching_key(),
        &gk,
        &mut legacy,
        &xs,
        &y_ct,
        slots,
        1.0,
    );

    // The same step as a program.
    let prog = helr_step_program(dim, slots, levels, 1.0);
    let mut inputs = ExecInputs::default();
    for (d, w) in weights.iter().enumerate() {
        inputs.cts.insert(format!("w{d}"), w.clone());
    }
    for (d, x) in xs.iter().enumerate() {
        inputs.cts.insert(format!("x{d}"), x.clone());
    }
    inputs.cts.insert("y".into(), y_ct);
    let keys = ExecKeys {
        relin: Some(rlk.switching_key()),
        galois: Some(&gk),
    };
    let out = execute(&s.ev, &s.encoder, &prog, &inputs, keys).expect("program executes");

    assert_eq!(out.len(), dim);
    for (d, (name, ct)) in out.iter().enumerate() {
        assert_eq!(name, &format!("wout{d}"));
        assert_ct_identical(name, ct, &legacy[d]);
    }
}

#[test]
fn aggregate_program_matches_plain_reference() {
    let mut s = setup(6);
    let slots = s.ctx.params().slots();
    let rlk = s.keygen.relin_key(&mut s.rng, &s.sk);
    let prog = workloads::aggregate_program(slots, 6);
    let info = prog
        .validate(&simfhe::program::ProgramEnv { levels: 6, slots })
        .unwrap();
    let gk = s
        .keygen
        .galois_keys(&mut s.rng, &s.sk, &info.manifest.galois_steps, false);

    let vs: Vec<Vec<f64>> = (0..3)
        .map(|d| {
            (0..slots)
                .map(|b| ((b * 5 + d) % 9) as f64 / 10.0)
                .collect()
        })
        .collect();
    let mut inputs = ExecInputs::default();
    for (d, v) in vs.iter().enumerate() {
        let ct = s.encrypt(v, 6);
        inputs.cts.insert(format!("v{d}"), ct);
    }
    let keys = ExecKeys {
        relin: Some(rlk.switching_key()),
        galois: Some(&gk),
    };
    let out = execute(&s.ev, &s.encoder, &prog, &inputs, keys).expect("aggregate executes");
    let by_name: BTreeMap<&str, &Ciphertext> = out.iter().map(|(n, c)| (n.as_str(), c)).collect();

    let global_mean: f64 = vs.iter().flatten().sum::<f64>() / (3 * slots) as f64;
    let mean = s.decrypt(by_name["mean"]);
    for (b, &got) in mean.iter().enumerate() {
        assert!(
            (got - global_mean).abs() < 2e-2,
            "mean slot {b}: {got} vs {global_mean}"
        );
    }

    // Two smooth-max folds m ← (m+v)/2 + (m−v)²/2 in the clear.
    let smax_ref: Vec<f64> = (0..slots)
        .map(|b| {
            let mut m = vs[0][b];
            for v in [vs[1][b], vs[2][b]] {
                m = (m + v) / 2.0 + (m - v) * (m - v) / 2.0;
            }
            m
        })
        .collect();
    let smax = s.decrypt(by_name["smax"]);
    for (b, (&got, &want)) in smax.iter().zip(&smax_ref).enumerate() {
        assert!((got - want).abs() < 2e-2, "smax slot {b}: {got} vs {want}");
    }
}

#[test]
fn dot_product_program_matches_plain_reference() {
    let mut s = setup(4);
    let slots = s.ctx.params().slots();
    let diagonals = 8;
    let prog = workloads::dot_product_program(slots, 4, diagonals);
    let info = prog
        .validate(&simfhe::program::ProgramEnv { levels: 4, slots })
        .unwrap();
    let gk = s
        .keygen
        .galois_keys(&mut s.rng, &s.sk, &info.manifest.galois_steps, false);

    // Database rows packed as the first `diagonals` diagonals.
    let mut diags = BTreeMap::new();
    for d in 0..diagonals {
        let diag: Vec<Complex> = (0..slots)
            .map(|j| Complex::new(((j * 3 + d * 5) % 7) as f64 * 0.1 - 0.2, 0.0))
            .collect();
        diags.insert(d, diag);
    }
    let lt = LinearTransform::from_diagonals(diags.clone(), slots);
    let query: Vec<f64> = (0..slots)
        .map(|b| ((b * 2 + 1) % 5) as f64 * 0.15)
        .collect();

    let mut inputs = ExecInputs::default();
    let q_ct = s.encrypt(&query, 4);
    inputs.cts.insert("query".into(), q_ct);
    inputs.mats.insert("db".into(), lt);
    let keys = ExecKeys {
        relin: None,
        galois: Some(&gk),
    };
    let out = execute(&s.ev, &s.encoder, &prog, &inputs, keys).expect("dot-product executes");
    let scores = s.decrypt(&out[0].1);

    // y[j] = Σ_d diag_d[j] · query[(j + d) mod slots], scaled by 1/8.
    for j in 0..slots {
        let want: f64 = (0..diagonals)
            .map(|d| diags[&d][j].re * query[(j + d) % slots])
            .sum::<f64>()
            * 0.125;
        assert!(
            (scores[j] - want).abs() < 2e-2,
            "score slot {j}: {} vs {want}",
            scores[j]
        );
    }
}

#[test]
fn sha_stress_program_matches_plain_gates() {
    let mut s = setup(3);
    let slots = s.ctx.params().slots();
    let (rot_a, rot_b) = (1, 4);
    let prog = workloads::sha256_stress_program(3, rot_a, rot_b);
    let info = prog
        .validate(&simfhe::program::ProgramEnv { levels: 3, slots })
        .unwrap();
    assert_eq!(info.manifest.galois_steps, vec![rot_a, rot_b]);
    let rlk = s.keygen.relin_key(&mut s.rng, &s.sk);
    let gk = s
        .keygen
        .galois_keys(&mut s.rng, &s.sk, &info.manifest.galois_steps, false);

    let bits = |seed: usize| -> Vec<f64> {
        (0..slots)
            .map(|b| f64::from((b * 31 + seed * 17).is_multiple_of(3)))
            .collect()
    };
    let (x, y, z, w) = (bits(0), bits(1), bits(2), bits(3));
    let mut inputs = ExecInputs::default();
    for (name, v) in [("x", &x), ("y", &y), ("z", &z), ("w", &w)] {
        let ct = s.encrypt(v, 3);
        inputs.cts.insert(name.into(), ct);
    }
    let keys = ExecKeys {
        relin: Some(rlk.switching_key()),
        galois: Some(&gk),
    };
    let out = execute(&s.ev, &s.encoder, &prog, &inputs, keys).expect("sha stress executes");
    let digest = s.decrypt(&out[0].1);

    let xor = |a: f64, b: f64| a + b - 2.0 * a * b;
    for j in 0..slots {
        let (ra, rb) = (
            x[(j + rot_a as usize) % slots],
            x[(j + rot_b as usize) % slots],
        );
        let want =
            xor(ra, rb) + (w[j] + y[j] * (z[j] - w[j])) + (x[j] * y[j] + xor(x[j], y[j]) * z[j]);
        assert!(
            (digest[j] - want).abs() < 2e-2,
            "digest slot {j}: {} vs {want}",
            digest[j]
        );
    }
}
