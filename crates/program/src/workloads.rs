//! The three program-IR workloads shipped with the repo, each priced by
//! the analytical model and executed by the functional library (the
//! `validate` binary carries a measured-vs-modeled row for every one):
//!
//! - [`aggregate_program`] — encrypted aggregate over `k = 3` batched
//!   vectors: slot-wise mean, a rotate-fold global mean, and a smooth
//!   maximum (`max(a,b) ≈ (a+b)/2 + (a−b)²/2` on inputs normalized to
//!   `[0, 1]`).
//! - [`dot_product_program`] — encrypted dot-product similarity search:
//!   one BSGS matrix-vector product scoring a query against a plaintext
//!   database, scaled by `1/8`.
//! - [`sha256_stress_program`] — a bitwise SHA-256-style stress round:
//!   the σ₀-style XOR of two rotations (sharing a hoisted ModUp) plus the
//!   `Ch`/`Maj` choice and majority gates over 0/1-encoded slots.
//!
//! Builders only emit the IR; operand *values* (query vectors, database
//! diagonals) are bound at execution time through
//! [`ExecInputs`](crate::ExecInputs).

use simfhe::program::{CtDecl, Instr, MatDecl, Program};

fn add(dst: &str, a: &str, b: &str) -> Instr {
    Instr::Add {
        dst: dst.into(),
        a: a.into(),
        b: b.into(),
    }
}

fn sub(dst: &str, a: &str, b: &str) -> Instr {
    Instr::Sub {
        dst: dst.into(),
        a: a.into(),
        b: b.into(),
    }
}

fn mult(dst: &str, a: &str, b: &str) -> Instr {
    Instr::Mult {
        dst: dst.into(),
        a: a.into(),
        b: b.into(),
    }
}

fn mul_const(dst: &str, a: &str, value: f64) -> Instr {
    Instr::MulConst {
        dst: dst.into(),
        a: a.into(),
        value,
    }
}

fn rotate(dst: &str, a: &str, steps: i64) -> Instr {
    Instr::Rotate {
        dst: dst.into(),
        a: a.into(),
        steps,
    }
}

fn rescale(dst: &str, a: &str) -> Instr {
    Instr::Rescale {
        dst: dst.into(),
        a: a.into(),
    }
}

/// `value · a` followed by a rescale — the library's `mul_scalar` +
/// `rescale` idiom as two IR instructions.
fn scaled(instrs: &mut Vec<Instr>, dst: &str, a: &str, value: f64) {
    let raw = format!("{dst}#raw");
    instrs.push(mul_const(&raw, a, value));
    instrs.push(rescale(dst, &raw));
}

/// Encrypted aggregate over three batched vectors (`v0..v2`, each one
/// ciphertext of `slots` values in `[0, 1]`, arriving at `level` limbs).
///
/// Outputs:
/// - `mean` — the global mean: slot-wise sum, scaled by `1/3`, then a
///   power-of-two rotate-fold so every slot holds the mean of all
///   `3 · slots` values (depth 2: `level − 2` limbs out).
/// - `smax` — slot-wise smooth maximum via two rounds of
///   `(m + v)/2 + (m − v)²/2` (depth 4: `level − 4` limbs out).
///
/// Requires `level ≥ 5`.
pub fn aggregate_program(slots: usize, level: usize) -> Program {
    assert!(level >= 5, "aggregate needs 5 levels, got {level}");
    let mut instrs = Vec::new();

    // Slot-wise mean of the three vectors.
    instrs.push(add("sum", "v0", "v1"));
    instrs.push(add("sum", "sum", "v2"));
    scaled(&mut instrs, "acc", "sum", 1.0 / 3.0);

    // Rotate-fold: after log2(slots) rounds every slot holds the sum of
    // all slots (the same ladder as `helr_enc`'s slot mean).
    let mut step = 1i64;
    while (step as usize) < slots {
        instrs.push(rotate("rot", "acc", step));
        instrs.push(add("acc", "acc", "rot"));
        step *= 2;
    }
    scaled(&mut instrs, "mean", "acc", 1.0 / slots as f64);

    // Smooth maximum, folded over the batch: m ← (m+v)/2 + (m−v)²/2.
    let batch = ["v1", "v2"];
    let mut m = "v0".to_string();
    for (round, v) in batch.iter().enumerate() {
        let (avg, diff, sq, half) = (
            format!("avg{round}"),
            format!("diff{round}"),
            format!("sq{round}"),
            format!("half{round}"),
        );
        let next = if round + 1 == batch.len() {
            "smax".to_string()
        } else {
            format!("m{round}")
        };
        instrs.push(add(&avg, &m, v));
        scaled(&mut instrs, &avg, &avg, 0.5);
        instrs.push(sub(&diff, &m, v));
        instrs.push(mult(&sq, &diff, &diff));
        scaled(&mut instrs, &half, &sq, 0.5);
        instrs.push(add(&next, &avg, &half));
        m = next;
    }

    Program {
        name: "aggregate".into(),
        ct_inputs: (0..3)
            .map(|i| CtDecl {
                name: format!("v{i}"),
                level,
            })
            .collect(),
        pt_inputs: Vec::new(),
        matrices: Vec::new(),
        instrs,
        outputs: vec!["mean".into(), "smax".into()],
    }
}

/// Encrypted dot-product similarity search: scores a query ciphertext
/// against a plaintext database packed as the `diagonals` non-zero
/// diagonals `0..diagonals` of a `slots × slots` transform, then scales
/// the scores by `1/8`.
///
/// One `BsgsMatVec` plus a scaled rescale — depth 2, so `level ≥ 3`.
pub fn dot_product_program(slots: usize, level: usize, diagonals: usize) -> Program {
    assert!(level >= 3, "dot-product needs 3 levels, got {level}");
    assert!(
        diagonals >= 1 && diagonals <= slots,
        "diagonal count {diagonals} out of range for {slots} slots"
    );
    let mut instrs = vec![Instr::BsgsMatVec {
        dst: "raw".into(),
        a: "query".into(),
        mat: "db".into(),
    }];
    scaled(&mut instrs, "scores", "raw", 0.125);

    Program {
        name: "dot_product".into(),
        ct_inputs: vec![CtDecl {
            name: "query".into(),
            level,
        }],
        pt_inputs: Vec::new(),
        matrices: vec![MatDecl {
            name: "db".into(),
            slots,
            offsets: (0..diagonals).collect(),
        }],
        instrs,
        outputs: vec!["scores".into()],
    }
}

/// Bitwise SHA-256-style stress round over 0/1-encoded slot vectors
/// `x, y, z, w`:
///
/// - `xor = rot(x, rot_a) ⊕ rot(x, rot_b)` — the σ₀-style rotation XOR;
///   the two rotations of `x` are consecutive and share a hoisted ModUp.
/// - `ch = Ch(y, z, w) = w + y·(z − w)` — the SHA choice gate.
/// - `maj = Maj(x, y, z) = x·y + (x ⊕ y)·z` — the majority gate.
///
/// (`a ⊕ b = a + b − 2ab` on 0/1 values.) The single output `digest`
/// sums the three gates. Multiplicative depth 2, so `level ≥ 3`; the
/// Galois manifest is exactly `{rot_a, rot_b}`.
pub fn sha256_stress_program(level: usize, rot_a: i64, rot_b: i64) -> Program {
    assert!(level >= 3, "sha stress needs 3 levels, got {level}");
    assert!(
        rot_a != 0 && rot_b != 0 && rot_a != rot_b,
        "rotations must be distinct and non-zero"
    );
    let instrs = vec![
        // σ₀-style XOR of two rotations of x (hoisted run of length 2).
        rotate("ra", "x", rot_a),
        rotate("rb", "x", rot_b),
        mult("rab", "ra", "rb"),
        add("rsum", "ra", "rb"),
        sub("xor", "rsum", "rab"),
        sub("xor", "xor", "rab"),
        // Ch(y, z, w) = w + y·(z − w).
        sub("sel", "z", "w"),
        mult("ysel", "y", "sel"),
        add("ch", "w", "ysel"),
        // Maj(x, y, z) = x·y + (x ⊕ y)·z.
        mult("xy", "x", "y"),
        add("xysum", "x", "y"),
        sub("xyxor", "xysum", "xy"),
        sub("xyxor", "xyxor", "xy"),
        mult("mz", "xyxor", "z"),
        add("maj", "xy", "mz"),
        // digest = xor + ch + maj.
        add("digest", "xor", "ch"),
        add("digest", "digest", "maj"),
    ];

    Program {
        name: "sha256_stress".into(),
        ct_inputs: ["x", "y", "z", "w"]
            .iter()
            .map(|n| CtDecl {
                name: (*n).into(),
                level,
            })
            .collect(),
        pt_inputs: Vec::new(),
        matrices: Vec::new(),
        instrs,
        outputs: vec!["digest".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfhe::program::ProgramEnv;

    #[test]
    fn workloads_validate_and_derive_expected_manifests() {
        let env = ProgramEnv {
            levels: 5,
            slots: 16,
        };

        let agg = aggregate_program(16, 5);
        let info = agg.validate(&env).expect("aggregate validates");
        assert!(info.manifest.relin);
        assert_eq!(info.manifest.galois_steps, vec![1, 2, 4, 8]);
        assert_eq!(info.outputs, vec![(3, 1), (1, 1)]);

        let dot = dot_product_program(16, 3, 8);
        let info = dot.validate(&env).expect("dot-product validates");
        assert!(!info.manifest.relin);
        // n1 = 4 babies {1,2,3} plus the single non-zero giant 4.
        assert_eq!(info.manifest.galois_steps, vec![1, 2, 3, 4]);
        assert_eq!(info.outputs, vec![(1, 1)]);

        let sha = sha256_stress_program(3, 1, 4);
        let info = sha.validate(&env).expect("sha validates");
        assert!(info.manifest.relin);
        assert_eq!(info.manifest.galois_steps, vec![1, 4]);
        assert_eq!(info.outputs, vec![(1, 1)]);
        // The two rotations of x share a hoisted ModUp.
        use simfhe::program::HoistRole;
        assert_eq!(info.instrs[0].hoist, HoistRole::Leader(2));
        assert_eq!(info.instrs[1].hoist, HoistRole::Follower);
    }

    #[test]
    fn workload_builders_reject_shallow_chains() {
        let env = ProgramEnv {
            levels: 4,
            slots: 16,
        };
        // aggregate_program(_, 5) declared above the env's chain.
        assert!(aggregate_program(16, 5).validate(&env).is_err());
    }
}
