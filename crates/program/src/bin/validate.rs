//! Cross-validates the functional library against the analytical model.
//!
//! Runs every CKKS primitive (and two micro application kernels modeled
//! on HELR and ResNet-20) in the `ckks` crate at a reduced parameter set,
//! with the `telemetry` feature counting the modular operations actually
//! executed, then diffs those counts against simfhe's `CostModel`
//! predictions. A `programs` section does the same end-to-end for the
//! three program-IR workloads (`fhe_program::workloads`): each program is
//! priced by `CostModel::program_cost` and executed by
//! `fhe_program::execute` under the telemetry counters. Emits a
//! `mad-validate-v1` JSON report on stdout and exits non-zero if any
//! gated metric's relative error exceeds its committed tolerance
//! (`crates/core/validate-tolerances.txt` for the primitives,
//! `crates/core/program-tolerances.txt` for the program rows).
//!
//! The parameter point (`N = 2^6`, `L = 5`, `dnum = 2`) is chosen so the
//! two crates' digit geometries coincide: the model uses `α = ⌈(L+1)/dnum⌉`
//! while the functional library uses `α = ⌈L/dnum⌉`, and at `L = 5`,
//! `dnum = 2` both give `α = 3`, with matching `β` and digit widths at the
//! levels the validator exercises (ℓ = 4, 5).
//!
//! Usage: `validate [--tolerances PATH] [--out PATH]`

use ckks::hoisting::{apply_bsgs, LinearTransform};
use ckks::{CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_math::cfft::Complex;
use fhe_math::telemetry::{self, Snapshot};
use fhe_program::{execute, workloads, ExecInputs, ExecKeys};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simfhe::matvec::MatVecShape;
use simfhe::program::ProgramEnv;
use simfhe::validate::{MetricCheck, PrimitiveCheck, Tolerances, ValidationReport};
use simfhe::{AlgoOpts, CachingLevel, Cost, CostModel, MadConfig, SchemeParams};
use std::process::ExitCode;

/// Reduced parameter set: small enough to run in seconds, large enough
/// that every primitive exercises its full digit/limb structure.
const LOG_N: u32 = 6;
const LEVELS: usize = 5;
const DNUM: usize = 2;

/// Tolerances committed next to the model crate; `--tolerances` replaces
/// both files.
const DEFAULT_TOLERANCES: &str = include_str!("../../../core/validate-tolerances.txt");
const DEFAULT_PROGRAM_TOLERANCES: &str = include_str!("../../../core/program-tolerances.txt");

fn main() -> ExitCode {
    let mut tol_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerances" => tol_path = args.next(),
            "--out" => out_path = args.next(),
            "--help" | "-h" => {
                eprintln!("usage: validate [--tolerances PATH] [--out PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let tol_text = match &tol_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        },
        None => format!("{DEFAULT_TOLERANCES}\n{DEFAULT_PROGRAM_TOLERANCES}"),
    };
    let tol = match Tolerances::parse(&tol_text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bad tolerance file: {e}");
            return ExitCode::from(2);
        }
    };

    let report = run_validation();
    let json = report.to_json(&tol);
    print!("{json}");
    if let Some(p) = &out_path {
        if let Err(e) = std::fs::write(p, &json) {
            eprintln!("cannot write {p}: {e}");
            return ExitCode::from(2);
        }
    }
    let violations = report.evaluate(&tol);
    for v in &violations {
        eprintln!("FAIL {}", v.reason);
    }
    if violations.is_empty() {
        eprintln!(
            "validate: all {} primitives within tolerance",
            report.primitives.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("validate: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Modeled cost plus whole-limb transform counts, accumulated op by op
/// alongside the measured execution.
#[derive(Clone, Copy, Default)]
struct Modeled {
    cost: Cost,
    fwd: u64,
    inv: u64,
}

impl Modeled {
    fn add(&mut self, cost: Cost, (fwd, inv): (u64, u64)) {
        self.cost += cost;
        self.fwd += fwd;
        self.inv += inv;
    }
}

/// Transform counts of a full key switch at `ell` limbs: β digit ModUps
/// plus two ModDowns.
fn keyswitch_transforms(m: &CostModel, ell: usize) -> (u64, u64) {
    let (mut fwd, mut inv) = (0, 0);
    for j in 0..m.params.beta_at(ell) {
        let (f, i) = m.mod_up_transforms(ell, m.digit_width(ell, j));
        fwd += f;
        inv += i;
    }
    let (f, i) = m.mod_down_transforms(ell, m.params.special_limbs());
    (fwd + 2 * f, inv + 2 * i)
}

/// ModUp-only transform counts (the `Decomp` + raise phase).
fn modup_transforms(m: &CostModel, ell: usize) -> (u64, u64) {
    let (mut fwd, mut inv) = (0, 0);
    for j in 0..m.params.beta_at(ell) {
        let (f, i) = m.mod_up_transforms(ell, m.digit_width(ell, j));
        fwd += f;
        inv += i;
    }
    (fwd, inv)
}

/// Model of the `Decomp` + `ModUp` phase (everything in `keyswitch`
/// before the inner product).
fn modup_cost(m: &CostModel, ell: usize) -> Cost {
    let mut c = m.decomp(ell);
    for j in 0..m.params.beta_at(ell) {
        c += m.mod_up_digit(ell, m.digit_width(ell, j));
    }
    c
}

/// The model's cost of encoding plaintexts inside a measured region: the
/// analytical model assumes pre-encoded operands, but the functional
/// schedules (`apply_bsgs`, the micro kernels) encode on the fly — each
/// encode is `ell` forward limb NTTs.
fn encode_cost(m: &CostModel, count: u64, ell: usize) -> (Cost, (u64, u64)) {
    (
        m.ntt_limb_ops() * (count * ell as u64),
        (count * ell as u64, 0),
    )
}

fn check(name: &str, snap: Snapshot, modeled: Modeled) -> PrimitiveCheck {
    let mut p = PrimitiveCheck::new(name);
    p.metrics.push(MetricCheck {
        metric: "mults",
        measured: snap.mults,
        modeled: modeled.cost.mults,
    });
    p.metrics.push(MetricCheck {
        metric: "adds",
        measured: snap.adds,
        modeled: modeled.cost.adds,
    });
    p.metrics.push(MetricCheck {
        metric: "ntt_fwd",
        measured: snap.ntt_fwd,
        modeled: modeled.fwd,
    });
    p.metrics.push(MetricCheck {
        metric: "ntt_inv",
        measured: snap.ntt_inv,
        modeled: modeled.inv,
    });
    p.info.push(MetricCheck {
        metric: "transfer_bytes",
        measured: snap.transfer_bytes(),
        modeled: modeled.cost.dram_total(),
    });
    p.info.push(MetricCheck {
        metric: "scratch_lease_bytes",
        measured: snap.scratch_lease_bytes,
        modeled: modeled.cost.dram_total(),
    });
    p
}

fn measure<T>(f: impl FnOnce() -> T) -> (T, Snapshot) {
    telemetry::reset();
    let out = f();
    (out, telemetry::snapshot())
}

fn run_validation() -> ValidationReport {
    // --- functional side -------------------------------------------------
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(LOG_N)
            .levels(LEVELS)
            .scale_bits(30)
            .first_modulus_bits(36)
            .special_modulus_bits(36)
            .dnum(DNUM)
            .build()
            .expect("reduced validation parameters are valid"),
    );
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());
    let keygen = KeyGenerator::new(ctx.clone());
    let mut rng = StdRng::seed_from_u64(7);
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let gk = keygen.galois_keys(&mut rng, &sk, &[1, 2, 3, 4, 8], false);
    let pool = ctx.scratch();
    let slots = encoder.slots();
    let scale = ctx.params().scale();
    let n = ctx.params().degree();

    let vec_a: Vec<Complex> = (0..slots)
        .map(|i| Complex::new(0.02 * i as f64 - 0.3, (i as f64 * 0.4).cos() * 0.2))
        .collect();
    let vec_b: Vec<Complex> = (0..slots)
        .map(|i| Complex::new((i as f64 * 0.3).sin() * 0.25, 0.01 * i as f64))
        .collect();
    let encode_at = |v: &[Complex], ell: usize| encoder.encode(v, ell, scale).expect("encodes");
    let ct_a = encryptor.encrypt_symmetric(&mut rng, &encode_at(&vec_a, LEVELS), &sk);
    let ct_b = encryptor.encrypt_symmetric(&mut rng, &encode_at(&vec_b, LEVELS), &sk);
    let pt_top = encode_at(&vec_b, LEVELS);
    let pt_l3 = encode_at(&vec_b, 3);

    // --- analytical side -------------------------------------------------
    let params = SchemeParams {
        log_n: LOG_N,
        log_q: 30,
        limbs: LEVELS,
        dnum: DNUM,
        fft_iter: 1,
    };
    // Caching level is irrelevant to op counts (§3.1: caching is
    // compute-neutral); OneLimb matches the scratch-reusing implementation
    // most closely for the informational byte proxies.
    let m_std = CostModel::new(
        params,
        MadConfig {
            caching: CachingLevel::OneLimb,
            algo: AlgoOpts {
                modup_hoist: true,
                ..AlgoOpts::none()
            },
        },
    );
    let m_merged = CostModel::new(
        params,
        MadConfig {
            caching: CachingLevel::OneLimb,
            algo: AlgoOpts {
                modup_hoist: true,
                moddown_merge: true,
                ..AlgoOpts::none()
            },
        },
    );

    let ell = LEVELS;
    let mut report = ValidationReport {
        params: vec![
            ("log_n".into(), LOG_N.to_string()),
            ("limbs".into(), LEVELS.to_string()),
            ("dnum".into(), DNUM.to_string()),
            ("alpha".into(), ctx.params().alpha().to_string()),
            ("beta".into(), ctx.params().beta_at(ell).to_string()),
            ("degree".into(), n.to_string()),
        ],
        primitives: Vec::new(),
    };

    // --- Table 2 primitives ----------------------------------------------
    let (_, snap) = measure(|| evaluator.add(&ct_a, &ct_b));
    report.primitives.push(check(
        "Add",
        snap,
        Modeled {
            cost: m_std.add(ell),
            ..Modeled::default()
        },
    ));

    let (_, snap) = measure(|| evaluator.add_plain(&ct_a, &pt_top));
    report.primitives.push(check(
        "PtAdd",
        snap,
        Modeled {
            cost: m_std.pt_add(ell),
            ..Modeled::default()
        },
    ));

    let (_, snap) = measure(|| evaluator.mul_plain(&ct_a, &pt_top));
    let mut modeled = Modeled::default();
    modeled.add(m_std.pt_mult(ell), m_std.rescale_transforms(ell));
    report.primitives.push(check("PtMult", snap, modeled));

    let (_, snap) = measure(|| evaluator.rescale(&ct_a));
    let mut modeled = Modeled::default();
    modeled.add(m_std.rescale(ell), m_std.rescale_transforms(ell));
    report.primitives.push(check("Rescale", snap, modeled));

    let (_, snap) = measure(|| {
        let lifted = fhe_math::poly::pmod_up_with(ct_a.c0(), ctx.raised_basis(ell).clone(), pool);
        lifted.recycle(pool);
    });
    // PModUp is transform-free: per coefficient of each source limb, one
    // multiply by the lift constant (Algorithm 5).
    report.primitives.push(check(
        "PModUp",
        snap,
        Modeled {
            cost: Cost::compute(n as u64 * ell as u64, 0),
            ..Modeled::default()
        },
    ));

    // One full key switch, measured through the span layer: the nested
    // spans give ModUp / KSKInnerProd / ModDown and the enclosing total.
    telemetry::reset();
    let (v, u) = ckks::keyswitch::keyswitch(&ctx, ct_a.c1(), rlk.switching_key());
    v.recycle(pool);
    u.recycle(pool);
    let span_total = |name: &str| {
        telemetry::span_report(name)
            .unwrap_or_else(|| panic!("span {name} not recorded"))
            .total
    };
    let mut modeled = Modeled::default();
    modeled.add(modup_cost(&m_std, ell), modup_transforms(&m_std, ell));
    report
        .primitives
        .push(check("ModUp", span_total("ModUp"), modeled));

    let beta = m_std.params.beta_at(ell);
    report.primitives.push(check(
        "KSKInnerProd",
        span_total("KSKInnerProd"),
        Modeled {
            cost: m_std.ksk_inner_product(ell, beta, true, true),
            ..Modeled::default()
        },
    ));

    let (f, i) = m_std.mod_down_transforms(ell, m_std.params.special_limbs());
    let mut modeled = Modeled::default();
    modeled.add(
        m_std.mod_down(ell, m_std.params.special_limbs()) * 2,
        (2 * f, 2 * i),
    );
    report
        .primitives
        .push(check("ModDown", span_total("ModDown"), modeled));

    let mut modeled = Modeled::default();
    modeled.add(m_std.keyswitch(ell), keyswitch_transforms(&m_std, ell));
    report
        .primitives
        .push(check("KeySwitch", span_total("KeySwitch"), modeled));

    let (_, snap) = measure(|| evaluator.rotate(&ct_a, 1, &gk));
    let mut modeled = Modeled::default();
    modeled.add(m_std.rotate(ell), keyswitch_transforms(&m_std, ell));
    report.primitives.push(check("Rotate", snap, modeled));

    let (_, snap) = measure(|| evaluator.mul(&ct_a, &ct_b, &rlk));
    let mut modeled = Modeled::default();
    modeled.add(m_std.mult(ell), keyswitch_transforms(&m_std, ell));
    modeled.add(Cost::ZERO, m_std.rescale_transforms(ell));
    report.primitives.push(check("Mult", snap, modeled));

    let (_, snap) = measure(|| evaluator.mul_merged(&ct_a, &ct_b, &rlk));
    let mut modeled = Modeled::default();
    modeled.add(m_merged.mult(ell), modup_transforms(&m_merged, ell));
    let (f, i) = m_merged.mod_down_transforms(ell - 1, m_merged.params.special_limbs() + 1);
    modeled.add(Cost::ZERO, (2 * f, 2 * i));
    report.primitives.push(check("MultMerged", snap, modeled));

    // --- BSGS PtMatVecMult -----------------------------------------------
    let lt3 = banded_transform(slots, &[0, 1, 5]);
    let shape = MatVecShape { ell, diagonals: 3 };
    let n1 = m_std.bsgs_baby_dim(shape.diagonals);
    let (_, snap) = measure(|| apply_bsgs(&evaluator, &encoder, &ct_a, &lt3, &gk, n1));
    let mut modeled = Modeled::default();
    modeled.add(
        m_std.pt_mat_vec_mult(shape).cost,
        bsgs_transforms(&m_std, shape, n1),
    );
    let (c, t) = encode_cost(&m_std, shape.diagonals as u64, ell);
    modeled.add(c, t);
    report.primitives.push(check("BsgsMatVec", snap, modeled));

    // --- HELR micro kernel -----------------------------------------------
    // One logistic-regression-style iteration (the shape of fhe-apps'
    // HELR schedule at toy size): ct×ct product, a rotate-and-add fold
    // over 8 slots, a squaring for the sigmoid polynomial, a plaintext
    // scaling, and the weight update add.
    let w_low = evaluator.drop_to(&ct_a, 2);
    let (_, snap) = measure(|| {
        let prod = evaluator.mul(&ct_a, &ct_b, &rlk);
        let folded = evaluator.sum_slots(&prod, 3, &gk);
        let sq = evaluator.square(&folded, &rlk);
        let act = evaluator.mul_plain(&sq, &pt_l3);
        evaluator.add(&act, &w_low)
    });
    let mut modeled = Modeled::default();
    modeled.add(m_std.mult(ell), keyswitch_transforms(&m_std, ell));
    modeled.add(Cost::ZERO, m_std.rescale_transforms(ell));
    for _ in 0..3 {
        modeled.add(m_std.rotate(ell - 1), keyswitch_transforms(&m_std, ell - 1));
        modeled.add(m_std.add(ell - 1), (0, 0));
    }
    modeled.add(m_std.mult(ell - 1), keyswitch_transforms(&m_std, ell - 1));
    modeled.add(Cost::ZERO, m_std.rescale_transforms(ell - 1));
    modeled.add(m_std.pt_mult(ell - 2), m_std.rescale_transforms(ell - 2));
    modeled.add(m_std.add(ell - 3), (0, 0));
    report.primitives.push(check("HelrMicro", snap, modeled));

    // --- ResNet micro kernel ---------------------------------------------
    // One convolution-shaped BSGS product (9 diagonals, the 3×3 kernel
    // footprint of fhe-apps' ResNet-20 layers), a squaring activation
    // proxy, and the bias add.
    let lt9 = banded_transform(slots, &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
    let shape9 = MatVecShape { ell, diagonals: 9 };
    let n1_9 = m_std.bsgs_baby_dim(shape9.diagonals);
    let (_, snap) = measure(|| {
        let y = apply_bsgs(&evaluator, &encoder, &ct_a, &lt9, &gk, n1_9);
        let act = evaluator.square(&y, &rlk);
        let bias = encoder
            .encode(&vec_b, act.limb_count(), act.scale())
            .expect("bias encodes");
        evaluator.add_plain(&act, &bias)
    });
    let mut modeled = Modeled::default();
    modeled.add(
        m_std.pt_mat_vec_mult(shape9).cost,
        bsgs_transforms(&m_std, shape9, n1_9),
    );
    let (c, t) = encode_cost(&m_std, shape9.diagonals as u64, ell);
    modeled.add(c, t);
    modeled.add(m_std.mult(ell - 1), keyswitch_transforms(&m_std, ell - 1));
    modeled.add(Cost::ZERO, m_std.rescale_transforms(ell - 1));
    let (c, t) = encode_cost(&m_std, 1, ell - 2);
    modeled.add(c, t);
    modeled.add(m_std.pt_add(ell - 2), (0, 0));
    report.primitives.push(check("ResNetMicro", snap, modeled));

    // --- Program-IR workloads --------------------------------------------
    // Each workload is one `Program`: priced by `CostModel::program_cost`
    // (the fold of Table-2 primitive costs over the instruction stream)
    // and executed by `fhe_program::execute` under the same telemetry
    // counters as the primitive rows above.
    let env = ProgramEnv {
        levels: LEVELS,
        slots,
    };
    let fill = |seed: usize| -> Vec<Complex> {
        (0..slots)
            .map(|i| {
                Complex::new(
                    ((i * 3 + seed * 7) % 11) as f64 * 0.05 + 0.1,
                    ((i + seed * 5) % 7) as f64 * 0.02,
                )
            })
            .collect()
    };
    let programs = [
        (
            "ProgAggregate",
            workloads::aggregate_program(slots, LEVELS),
            None,
        ),
        (
            "ProgDotProduct",
            workloads::dot_product_program(slots, LEVELS, 8),
            Some(("db", banded_transform(slots, &[0, 1, 2, 3, 4, 5, 6, 7]))),
        ),
        (
            "ProgShaStress",
            workloads::sha256_stress_program(LEVELS, 1, 4),
            None,
        ),
    ];
    for (row, prog, mat) in programs {
        let info = prog
            .validate(&env)
            .unwrap_or_else(|e| panic!("{row} fails static validation: {e}"));
        let prog_gk = keygen.galois_keys(&mut rng, &sk, &info.manifest.galois_steps, false);
        let mut inputs = ExecInputs::default();
        for (i, decl) in prog.ct_inputs.iter().enumerate() {
            let pt = encode_at(&fill(i), decl.level);
            inputs.cts.insert(
                decl.name.clone(),
                encryptor.encrypt_symmetric(&mut rng, &pt, &sk),
            );
        }
        if let Some((name, lt)) = mat {
            inputs.mats.insert(name.into(), lt);
        }
        let keys = ExecKeys {
            relin: Some(rlk.switching_key()),
            galois: Some(&prog_gk),
        };
        let (out, snap) = measure(|| execute(&evaluator, &encoder, &prog, &inputs, keys));
        out.unwrap_or_else(|e| panic!("{row} fails to execute: {e}"));
        let pc = m_std.program_cost(&prog, &info);
        report.primitives.push(check(
            row,
            snap,
            Modeled {
                cost: pc.cost,
                fwd: pc.ntt_fwd,
                inv: pc.ntt_inv,
            },
        ));
    }

    report
}

/// Transform counts of the model's BSGS schedule (`matvec_bsgs`): one
/// shared ModUp, `n1` ModDown pairs, `n2 − 1` full rotates, one rescale.
fn bsgs_transforms(m: &CostModel, shape: MatVecShape, n1: usize) -> (u64, u64) {
    let n2 = shape.diagonals.div_ceil(n1);
    let (mut fwd, mut inv) = modup_transforms(m, shape.ell);
    let (f, i) = m.mod_down_transforms(shape.ell, m.params.special_limbs());
    fwd += 2 * f * n1 as u64;
    inv += 2 * i * n1 as u64;
    for _ in 0..n2.saturating_sub(1) {
        let (f, i) = keyswitch_transforms(m, shape.ell);
        fwd += f;
        inv += i;
    }
    let (f, i) = m.rescale_transforms(shape.ell);
    (fwd + f, inv + i)
}

/// A banded slot matrix with the given nonzero diagonals.
fn banded_transform(slots: usize, diagonals: &[usize]) -> LinearTransform {
    let mut map = std::collections::BTreeMap::new();
    for &d in diagonals {
        let diag: Vec<Complex> = (0..slots)
            .map(|j| {
                Complex::new(
                    0.08 + ((j * 5 + d * 3) % 7) as f64 * 0.03,
                    ((j + 2 * d) % 5) as f64 * 0.02 - 0.04,
                )
            })
            .collect();
        map.insert(d, diag);
    }
    LinearTransform::from_diagonals(map, slots)
}
