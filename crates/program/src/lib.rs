#![warn(missing_docs)]
//! Functional executor for the [`simfhe::program`] encrypted-program IR.
//!
//! [`execute`] interprets a validated [`Program`] against a
//! [`CkksContext`], mapping each instruction onto the `ckks` crate's
//! `Evaluator` exactly the way the hand-written application schedules do —
//! so a workload expressed as a `Program` is *byte-identical* to its
//! hard-coded counterpart (asserted for the HELR step in this crate's
//! tests). Two schedule-level behaviors are shared contracts with the
//! analytical pricer ([`simfhe::program::CostModel::program_cost`] via
//! `CostModel`):
//!
//! - **Rotation hoisting** — the maximal consecutive-rotation runs
//!   computed by [`simfhe::program::hoisted_runs`] execute through
//!   [`ckks::hoisting::rotate_hoisted`], sharing one Decomp+ModUp across
//!   the run. The pricer charges the same schedule.
//! - **BSGS baby dimension** — `BsgsMatVec` uses
//!   [`simfhe::program::bsgs_baby_dim`], the same `n1` the model's
//!   `pt_mat_vec_mult` assumes, so the required Galois steps and the
//!   rotation count agree between manifest, price, and execution.
//!
//! With the `telemetry` feature on, every instruction runs inside a
//! `Prog.<Mnemonic>` telemetry span; the serving runtime's deep-sampling
//! observer surfaces these as per-instruction time attribution for
//! `RunProgram` jobs.

use std::collections::BTreeMap;
use std::fmt;

use ckks::hoisting::{apply_bsgs, rotate_hoisted, LinearTransform};
use ckks::{Ciphertext, CkksContext, Encoder, Evaluator, GaloisKeys, SwitchingKey};
use fhe_math::cfft::Complex;
use fhe_math::telemetry;
use simfhe::program::{
    bsgs_baby_dim, HoistRole, Instr, KeyManifest, Program, ProgramEnv, ProgramInfo, ValidateError,
};

pub mod workloads;

pub use simfhe::program;

/// Relative tolerance for input-ciphertext scales against the scheme
/// scale Δ (fresh encryptions are exact; the bound leaves room for
/// clients that re-encode).
pub const INPUT_SCALE_TOLERANCE: f64 = 1e-3;

/// Keys available to an execution; checked against the program's
/// [`KeyManifest`] before any instruction runs.
#[derive(Clone, Copy)]
pub struct ExecKeys<'a> {
    /// Relinearization (`s² → s`) switching key, required iff the program
    /// contains a `Mult`.
    pub relin: Option<&'a SwitchingKey>,
    /// Galois key set covering the manifest's rotation steps.
    pub galois: Option<&'a GaloisKeys>,
}

/// Named operand bindings for one execution.
#[derive(Clone, Default)]
pub struct ExecInputs {
    /// Ciphertext registers, one per `ct_inputs` declaration.
    pub cts: BTreeMap<String, Ciphertext>,
    /// Plaintext slot vectors, one per `pt_inputs` declaration (encoded
    /// on the fly at the consuming instruction's level).
    pub pts: BTreeMap<String, Vec<Complex>>,
    /// Diagonal matrices, one per `matrices` declaration; the transform's
    /// slot count and offsets must match the declaration exactly.
    pub mats: BTreeMap<String, LinearTransform>,
}

/// Structured execution failure. The executor never panics on bad
/// programs or bindings: everything a client could get wrong surfaces
/// here (the serving runtime maps these onto protocol error replies).
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The program failed static validation.
    Invalid(ValidateError),
    /// A declared ciphertext input was not bound.
    MissingInput(String),
    /// A bound ciphertext arrived at the wrong level.
    InputLevel {
        /// Input name.
        name: String,
        /// Declared limb count.
        want: usize,
        /// Bound limb count.
        got: usize,
    },
    /// A bound ciphertext's scale is not the scheme scale Δ.
    InputScale(String),
    /// A declared plaintext operand was not bound.
    MissingPlaintext(String),
    /// A declared matrix operand was not bound.
    MissingMatrix(String),
    /// A bound matrix disagrees with its declared slot count or offsets.
    MatrixShape(String),
    /// The program multiplies but no relinearization key was supplied.
    MissingRelinKey,
    /// A manifest rotation step has no Galois key.
    MissingGaloisKey(i64),
    /// The instruction is priced by the model but not executable by the
    /// functional library (`Bootstrap`).
    Unsupported(&'static str),
    /// A plaintext operand failed to encode.
    Encode(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Invalid(e) => write!(f, "invalid program: {e}"),
            ExecError::MissingInput(n) => write!(f, "ciphertext input `{n}` not bound"),
            ExecError::InputLevel { name, want, got } => {
                write!(f, "input `{name}` at {got} limbs, declared {want}")
            }
            ExecError::InputScale(n) => write!(f, "input `{n}` not at the scheme scale"),
            ExecError::MissingPlaintext(n) => write!(f, "plaintext `{n}` not bound"),
            ExecError::MissingMatrix(n) => write!(f, "matrix `{n}` not bound"),
            ExecError::MatrixShape(n) => write!(f, "matrix `{n}` shape mismatch"),
            ExecError::MissingRelinKey => write!(f, "program needs a relinearization key"),
            ExecError::MissingGaloisKey(s) => write!(f, "missing Galois key for step {s}"),
            ExecError::Unsupported(what) => write!(f, "{what} is not executable"),
            ExecError::Encode(n) => write!(f, "plaintext `{n}` failed to encode"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ValidateError> for ExecError {
    fn from(e: ValidateError) -> Self {
        ExecError::Invalid(e)
    }
}

/// Checks that `keys` cover `manifest` under the given context (Galois
/// steps resolve through `rotation_element`, matching how the serving
/// runtime's key cache indexes them).
pub fn check_keys(
    ctx: &CkksContext,
    manifest: &KeyManifest,
    keys: &ExecKeys<'_>,
) -> Result<(), ExecError> {
    if manifest.relin && keys.relin.is_none() {
        return Err(ExecError::MissingRelinKey);
    }
    if !manifest.galois_steps.is_empty() {
        let gk = keys.galois.ok_or(ExecError::MissingGaloisKey(
            *manifest.galois_steps.first().expect("non-empty"),
        ))?;
        for &step in &manifest.galois_steps {
            if gk.get(ctx.rotation_element(step)).is_none() {
                return Err(ExecError::MissingGaloisKey(step));
            }
        }
    }
    Ok(())
}

/// Static telemetry span name for one instruction (spans require
/// `&'static str`).
fn span_name(instr: &Instr) -> &'static str {
    match instr {
        Instr::Add { .. } => "Prog.Add",
        Instr::Sub { .. } => "Prog.Sub",
        Instr::PtMult { .. } => "Prog.PtMult",
        Instr::MulConst { .. } => "Prog.MulConst",
        Instr::AddConst { .. } => "Prog.AddConst",
        Instr::Mult { .. } => "Prog.Mult",
        Instr::Rotate { .. } => "Prog.Rotate",
        Instr::Rescale { .. } => "Prog.Rescale",
        Instr::BsgsMatVec { .. } => "Prog.BsgsMatVec",
        Instr::Bootstrap { .. } => "Prog.Bootstrap",
    }
}

/// Validates `program` against the context, checks the bindings and keys,
/// and interprets the instruction stream. Returns the output ciphertexts
/// in `program.outputs` order.
///
/// Deterministic: the same program, bindings, and keys produce
/// byte-identical outputs on every call (the serving runtime's
/// `RunProgram` opcode relies on this for its loopback identity
/// guarantee).
pub fn execute(
    ev: &Evaluator,
    encoder: &Encoder,
    prog: &Program,
    inputs: &ExecInputs,
    keys: ExecKeys<'_>,
) -> Result<Vec<(String, Ciphertext)>, ExecError> {
    let ctx = ev.context();
    let env = ProgramEnv {
        levels: ctx.params().levels(),
        slots: encoder.slots(),
    };
    let info = prog.validate(&env)?;
    execute_validated(ev, encoder, prog, &info, inputs, keys)
}

/// [`execute`] for a program already validated against the same context
/// (the serving runtime validates once at upload and reuses the
/// [`ProgramInfo`] on every run).
pub fn execute_validated(
    ev: &Evaluator,
    encoder: &Encoder,
    prog: &Program,
    info: &ProgramInfo,
    inputs: &ExecInputs,
    keys: ExecKeys<'_>,
) -> Result<Vec<(String, Ciphertext)>, ExecError> {
    let ctx = ev.context();
    let scale = ctx.params().scale();

    // Fail closed before touching any ciphertext: unsupported ops, key
    // coverage, binding presence, levels, scales, matrix shapes.
    if prog
        .instrs
        .iter()
        .any(|i| matches!(i, Instr::Bootstrap { .. }))
    {
        return Err(ExecError::Unsupported("Bootstrap"));
    }
    check_keys(ctx, &info.manifest, &keys)?;
    for decl in &prog.ct_inputs {
        let ct = inputs
            .cts
            .get(&decl.name)
            .ok_or_else(|| ExecError::MissingInput(decl.name.clone()))?;
        if ct.limb_count() != decl.level {
            return Err(ExecError::InputLevel {
                name: decl.name.clone(),
                want: decl.level,
                got: ct.limb_count(),
            });
        }
        if (ct.scale() / scale - 1.0).abs() > INPUT_SCALE_TOLERANCE {
            return Err(ExecError::InputScale(decl.name.clone()));
        }
    }
    for decl in &prog.pt_inputs {
        if !inputs.pts.contains_key(&decl.name) {
            return Err(ExecError::MissingPlaintext(decl.name.clone()));
        }
    }
    for decl in &prog.matrices {
        let lt = inputs
            .mats
            .get(&decl.name)
            .ok_or_else(|| ExecError::MissingMatrix(decl.name.clone()))?;
        if lt.slots() != decl.slots || lt.offsets() != decl.offsets {
            return Err(ExecError::MatrixShape(decl.name.clone()));
        }
    }

    let mut regs: BTreeMap<&str, Ciphertext> = BTreeMap::new();
    for decl in &prog.ct_inputs {
        regs.insert(&decl.name, inputs.cts[&decl.name].clone());
    }

    let mut idx = 0;
    while idx < prog.instrs.len() {
        let instr = &prog.instrs[idx];
        let meta = &info.instrs[idx];

        // A hoisted run executes as one rotate_hoisted call sharing the
        // Decomp+ModUp; its members then fill their destinations in order.
        if let HoistRole::Leader(len) = meta.hoist {
            let _span = telemetry::span("Prog.RotateHoisted");
            let src = match instr {
                Instr::Rotate { a, .. } => a.as_str(),
                _ => unreachable!("hoist leaders are rotations"),
            };
            let steps: Vec<i64> = prog.instrs[idx..idx + len]
                .iter()
                .map(|i| match i {
                    Instr::Rotate { steps, .. } => *steps,
                    _ => unreachable!("hoisted runs contain only rotations"),
                })
                .collect();
            let gk = keys.galois.expect("checked against the manifest");
            let rotated = rotate_hoisted(ev, &regs[src], &steps, gk);
            for (member, out) in prog.instrs[idx..idx + len].iter().zip(rotated) {
                regs.insert(member.dst(), out);
            }
            idx += len;
            continue;
        }

        let _span = telemetry::span(span_name(instr));
        let out = match instr {
            Instr::Add { a, b, .. } => ev.add(&regs[a.as_str()], &regs[b.as_str()]),
            Instr::Sub { a, b, .. } => ev.sub(&regs[a.as_str()], &regs[b.as_str()]),
            Instr::PtMult { a, pt, .. } => {
                let ct = &regs[a.as_str()];
                let encoded = encoder
                    .encode(&inputs.pts[pt], ct.limb_count(), scale)
                    .map_err(|_| ExecError::Encode(pt.clone()))?;
                ev.mul_plain_no_rescale(ct, &encoded)
            }
            Instr::MulConst { a, value, .. } => {
                ev.mul_scalar_no_rescale(&regs[a.as_str()], *value, scale)
            }
            Instr::AddConst { a, value, .. } => ev.add_scalar(&regs[a.as_str()], *value),
            Instr::Mult { a, b, .. } => {
                let rlk = keys.relin.expect("checked against the manifest");
                ev.mul_with_key(&regs[a.as_str()], &regs[b.as_str()], rlk)
            }
            Instr::Rotate { a, steps, .. } => {
                if *steps == 0 {
                    regs[a.as_str()].clone()
                } else {
                    let gk = keys.galois.expect("checked against the manifest");
                    ev.rotate(&regs[a.as_str()], *steps, gk)
                }
            }
            Instr::Rescale { a, .. } => ev.rescale(&regs[a.as_str()]),
            Instr::BsgsMatVec { a, mat, .. } => {
                let gk = keys.galois.expect("checked against the manifest");
                let lt = &inputs.mats[mat.as_str()];
                let n1 = bsgs_baby_dim(lt.diagonal_count());
                apply_bsgs(ev, encoder, &regs[a.as_str()], lt, gk, n1)
            }
            Instr::Bootstrap { .. } => unreachable!("rejected above"),
        };
        regs.insert(instr.dst(), out);
        idx += 1;
    }

    Ok(prog
        .outputs
        .iter()
        .map(|name| (name.clone(), regs[name.as_str()].clone()))
        .collect())
}
