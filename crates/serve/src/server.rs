//! The server: an acceptor, per-connection reader threads, and a bounded
//! worker pool executing FHE ops against shared session/cache state.
//!
//! Threading model (all `std::thread`, no async runtime):
//!
//! - The **acceptor** owns the listener and spawns one reader thread per
//!   connection.
//! - A **reader** parses frames and enqueues jobs on a bounded
//!   [`sync_channel`]; a full queue is answered immediately with
//!   [`ErrorCode::Overloaded`] (backpressure), never buffered. The reader
//!   then blocks for that job's reply and writes it, so each connection
//!   sees strict request/response ordering.
//! - **Workers** pop jobs, drop any whose deadline passed while queued,
//!   and run the op under `catch_unwind` so a panic (e.g. a scale
//!   mismatch assertion deep in the evaluator) becomes a structured
//!   [`ErrorCode::Internal`] instead of a dead worker.
//!
//! Shutdown is a graceful drain: readers stop accepting new frames,
//! in-queue jobs still execute and their replies are delivered, then
//! every thread is joined.

use crate::cache::{CacheStats, EvictionPolicy, KeyCache, KeyKind};
#[cfg(feature = "chaos")]
use crate::fault::{FaultDecision, FaultPlan};
use crate::metrics::Metrics;
use crate::protocol::{
    read_frame, write_frame, BodyReader, ErrorCode, FrameRead, Opcode, DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
use crate::session::{Session, SessionManager};
use ckks::hoisting::{apply_bsgs, bsgs_required_steps, LinearTransform};
use ckks::serialize::{
    deserialize_ciphertext, deserialize_plaintext, deserialize_switching_key,
    galois_key_set_entries, serialize_ciphertext,
};
use ckks::{Ciphertext, CkksContext, Encoder, Evaluator, GaloisKeys};
use fhe_apps::{encrypted_lr_step, lr_fold_steps};
use fhe_math::cfft::Complex;
use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing FHE ops.
    pub workers: usize,
    /// Bounded queue length; a full queue rejects with `Overloaded`.
    pub queue_capacity: usize,
    /// Byte budget for expanded switching keys ([`KeyCache`]).
    pub key_cache_budget: u64,
    /// Cache eviction policy.
    pub eviction: EvictionPolicy,
    /// Maximum time a request may wait in the queue before a worker
    /// starts it; exceeded requests answer `DeadlineExceeded`.
    pub request_deadline: Duration,
    /// Ceiling on a single frame.
    pub max_frame_bytes: u32,
    /// Deterministic fault schedule threaded through the connection
    /// handler and worker pool; `None` (the default) serves faithfully.
    /// Only present when built with the `chaos` feature, so the default
    /// build carries no injection branches.
    #[cfg(feature = "chaos")]
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 32,
            key_cache_budget: 64 << 20,
            eviction: EvictionPolicy::Lru,
            request_deadline: Duration::from_secs(30),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            #[cfg(feature = "chaos")]
            fault_plan: None,
        }
    }
}

/// State shared by every thread.
pub(crate) struct ServerState {
    pub(crate) ctx: Arc<CkksContext>,
    pub(crate) evaluator: Evaluator,
    pub(crate) encoder: Encoder,
    pub(crate) sessions: SessionManager,
    pub(crate) cache: KeyCache,
    pub(crate) metrics: Metrics,
    #[cfg(feature = "chaos")]
    pub(crate) fault: Option<Arc<FaultPlan>>,
}

struct Job {
    op: Opcode,
    body: Vec<u8>,
    enqueued: Instant,
    reply: std::sync::mpsc::Sender<(u8, Vec<u8>)>,
    /// A worker-side fault drawn for this request by the chaos plan.
    #[cfg(feature = "chaos")]
    chaos: Option<FaultDecision>,
}

/// A running server; dropping without [`Server::shutdown`] aborts
/// non-gracefully (threads are detached), so call `shutdown`.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    queue: Option<SyncSender<Job>>,
}

impl Server {
    /// Binds a loopback listener on an OS-assigned port and starts the
    /// acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates listener-creation I/O errors.
    pub fn start(ctx: Arc<CkksContext>, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            evaluator: Evaluator::new(ctx.clone()),
            encoder: Encoder::new(ctx.clone()),
            ctx,
            sessions: SessionManager::new(),
            cache: KeyCache::new(config.key_cache_budget, config.eviction),
            metrics: Metrics::new(),
            #[cfg(feature = "chaos")]
            fault: config.fault_plan.clone(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<Job>(config.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let state = state.clone();
                let rx = rx.clone();
                let deadline = config.request_deadline;
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&state, &rx, deadline))
                    .expect("spawn worker")
            })
            .collect();

        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let acceptor = {
            let state = state.clone();
            let shutdown = shutdown.clone();
            let conn_handles = conn_handles.clone();
            let tx = tx.clone();
            let max_frame = config.max_frame_bytes;
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        state
                            .metrics
                            .connections_total
                            .fetch_add(1, Ordering::Relaxed);
                        let state = state.clone();
                        let shutdown = shutdown.clone();
                        let tx = tx.clone();
                        let handle = std::thread::Builder::new()
                            .name("serve-conn".into())
                            .spawn(move || {
                                connection_loop(&state, &shutdown, &tx, stream, max_frame)
                            })
                            .expect("spawn connection thread");
                        conn_handles.lock().expect("handles poisoned").push(handle);
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr,
            state,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            conn_handles,
            queue: Some(tx),
        })
    }

    /// The bound address to hand to [`crate::client::Client::connect`].
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Key-cache counters (also part of the metrics dump).
    pub fn cache_stats(&self) -> CacheStats {
        self.state.cache.stats()
    }

    /// Asserts the key cache's internal invariants (byte ledger, stats
    /// mirror, budget) and returns a consistent snapshot. Panics on
    /// violation — used by the chaos and stress suites, safe to call on
    /// a live server.
    pub fn assert_cache_consistent(&self) -> CacheStats {
        self.state.cache.check_invariants()
    }

    /// The current metrics dump, server-side (the `Metrics` opcode
    /// returns the same text over the wire).
    pub fn metrics_dump(&self) -> String {
        self.state
            .metrics
            .dump(&self.state.cache.stats(), self.kernel_backend_name())
    }

    /// The name of the kernel backend the serving context dispatches its
    /// hot kernels to (also reported in the `Hello` reply and the metrics
    /// dump).
    pub fn kernel_backend_name(&self) -> &'static str {
        self.state.ctx.kernel_backend().name()
    }

    /// Graceful drain: stop accepting, let queued requests finish and
    /// their replies flush, then join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conn_handles.lock().expect("handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
        // All reader-held senders are gone; dropping ours disconnects the
        // channel once the queue drains, and the workers exit.
        drop(self.queue.take());
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
    }
}

fn worker_loop(state: &ServerState, rx: &Arc<Mutex<Receiver<Job>>>, deadline: Duration) {
    loop {
        let job = {
            let rx = rx.lock().expect("queue poisoned");
            rx.recv()
        };
        let Ok(job) = job else { break };
        state.metrics.dequeued();
        #[cfg(feature = "chaos")]
        if let Some(fault) = job.chaos {
            match fault {
                // Slept *before* the deadline check so injected latency
                // counts against the request deadline exactly like real
                // queueing delay.
                FaultDecision::Delay(d) => std::thread::sleep(d),
                FaultDecision::EvictionStorm => {
                    state.cache.evict_all();
                }
                FaultDecision::SessionReset => {
                    state.sessions.close_all();
                    state.cache.evict_all();
                }
                // WorkerPanic fires inside catch_unwind below; reader-side
                // faults never reach the queue.
                _ => {}
            }
        }
        if job.enqueued.elapsed() > deadline {
            state
                .metrics
                .rejected_deadline
                .fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send((
                ErrorCode::DeadlineExceeded as u8,
                format!("queued longer than {deadline:?}").into_bytes(),
            ));
            continue;
        }
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "chaos")]
            if matches!(job.chaos, Some(FaultDecision::WorkerPanic)) {
                panic!("injected chaos panic");
            }
            handle(state, job.op, &job.body)
        }));
        state.metrics.latency(job.op).observe(start.elapsed());
        let (status, body) = match result {
            Ok(Ok(body)) => (0u8, body),
            Ok(Err((code, msg))) => (code as u8, msg.into_bytes()),
            Err(_) => (ErrorCode::Internal as u8, b"operation panicked".to_vec()),
        };
        let _ = job.reply.send((status, body));
    }
}

/// Blocks through read timeouts, polling the shutdown flag, so an idle
/// connection wakes up promptly at shutdown while a slow frame mid-body
/// still completes.
struct PatientReader<'a> {
    stream: &'a TcpStream,
    shutdown: &'a AtomicBool,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            let mut stream = self.stream;
            match stream.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "server shutting down",
                        ));
                    }
                }
                r => return r,
            }
        }
    }
}

fn connection_loop(
    state: &ServerState,
    shutdown: &AtomicBool,
    queue: &SyncSender<Job>,
    mut stream: TcpStream,
    max_frame: u32,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let respond = |stream: &mut TcpStream, status: u8, body: &[u8]| {
        if status != 0 {
            state.metrics.errors_total.fetch_add(1, Ordering::Relaxed);
        }
        state
            .metrics
            .bytes_written
            .fetch_add(6 + body.len() as u64, Ordering::Relaxed);
        write_frame(stream, status, body).is_ok()
    };
    loop {
        let mut reader = PatientReader {
            stream: &stream,
            shutdown,
        };
        match read_frame(&mut reader, max_frame) {
            Ok(FrameRead::Frame(frame)) => {
                state
                    .metrics
                    .bytes_read
                    .fetch_add(6 + frame.body.len() as u64, Ordering::Relaxed);
                if frame.version != PROTOCOL_VERSION {
                    let msg = format!("version {} unsupported", frame.version);
                    if !respond(
                        &mut stream,
                        ErrorCode::UnsupportedVersion as u8,
                        msg.as_bytes(),
                    ) {
                        break;
                    }
                    continue;
                }
                let Some(op) = Opcode::from_u8(frame.tag) else {
                    let msg = format!("opcode {:#04x}", frame.tag);
                    if !respond(&mut stream, ErrorCode::UnknownOpcode as u8, msg.as_bytes()) {
                        break;
                    }
                    continue;
                };
                // Chaos: exactly one plan decision per parsed frame.
                // Reader-side faults act right here; worker-side faults
                // ride on the job; write aborts fire when the reply comes
                // back.
                #[cfg(feature = "chaos")]
                let mut worker_fault = None;
                #[cfg(feature = "chaos")]
                let mut write_fault = None;
                #[cfg(feature = "chaos")]
                if let Some(plan) = &state.fault {
                    if let Some(fault) = plan.decide(op) {
                        state
                            .metrics
                            .faults_injected
                            .fetch_add(1, Ordering::Relaxed);
                        match fault {
                            // A failed socket read: the connection dies
                            // with no reply at all.
                            FaultDecision::ReadError => break,
                            // Synthetic admission-control pushback.
                            FaultDecision::Overloaded => {
                                state
                                    .metrics
                                    .rejected_overload
                                    .fetch_add(1, Ordering::Relaxed);
                                if !respond(
                                    &mut stream,
                                    ErrorCode::Overloaded as u8,
                                    b"injected overload, retry later",
                                ) {
                                    break;
                                }
                                continue;
                            }
                            FaultDecision::WriteAbort { .. } => write_fault = Some(fault),
                            other => worker_fault = Some(other),
                        }
                    }
                }
                let (reply_tx, reply_rx) = std::sync::mpsc::channel();
                let job = Job {
                    op,
                    body: frame.body,
                    enqueued: Instant::now(),
                    reply: reply_tx,
                    #[cfg(feature = "chaos")]
                    chaos: worker_fault,
                };
                // Count before sending: a worker may pop (and decrement)
                // the instant `try_send` returns.
                state.metrics.enqueued();
                match queue.try_send(job) {
                    Ok(()) => {
                        let (status, body) = reply_rx.recv().unwrap_or((
                            ErrorCode::Internal as u8,
                            b"worker dropped the request".to_vec(),
                        ));
                        #[cfg(feature = "chaos")]
                        if let Some(FaultDecision::WriteAbort { keep }) = write_fault {
                            // Torn frame: a strict prefix of the real
                            // response, then the connection drops.
                            use std::io::Write as _;
                            let bytes = crate::protocol::frame_bytes(status, &body);
                            let keep = keep.min(bytes.len().saturating_sub(1));
                            let _ = (&stream).write_all(&bytes[..keep]);
                            let _ = (&stream).flush();
                            break;
                        }
                        if !respond(&mut stream, status, &body) {
                            break;
                        }
                    }
                    Err(TrySendError::Full(_)) => {
                        state.metrics.retracted();
                        state
                            .metrics
                            .rejected_overload
                            .fetch_add(1, Ordering::Relaxed);
                        if !respond(
                            &mut stream,
                            ErrorCode::Overloaded as u8,
                            b"queue full, retry later",
                        ) {
                            break;
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        state.metrics.retracted();
                        break;
                    }
                }
            }
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::TooLarge(len)) => {
                // The unread body leaves the stream out of sync: answer,
                // then drop the connection.
                let msg = format!("frame of {len} bytes exceeds limit {max_frame}");
                respond(&mut stream, ErrorCode::FrameTooLarge as u8, msg.as_bytes());
                break;
            }
            Err(_) => break,
        }
    }
}

type OpResult = Result<Vec<u8>, (ErrorCode, String)>;

fn fail<T>(code: ErrorCode, msg: impl Into<String>) -> Result<T, (ErrorCode, String)> {
    Err((code, msg.into()))
}

fn handle(state: &ServerState, op: Opcode, body: &[u8]) -> OpResult {
    match op {
        Opcode::Hello => {
            let sid = state.sessions.create();
            // 8 LE bytes of session id, then the active kernel-backend name
            // in UTF-8. Pre-backend clients read only the first 8 bytes.
            let mut reply = sid.to_le_bytes().to_vec();
            reply.extend_from_slice(state.ctx.kernel_backend().name().as_bytes());
            Ok(reply)
        }
        Opcode::UploadRelin => {
            let mut r = BodyReader::new(body);
            let (_sid, session) = need_session(state, &mut r)?;
            let key_bytes = r.rest();
            // Validate against the context before filing it away, so MULT
            // never trips over garbage later.
            if deserialize_switching_key(&state.ctx, key_bytes).is_err() {
                return fail(ErrorCode::Malformed, "relin key bytes rejected");
            }
            session.set_relin(key_bytes.to_vec());
            Ok(Vec::new())
        }
        Opcode::UploadGalois => {
            let mut r = BodyReader::new(body);
            let (_sid, session) = need_session(state, &mut r)?;
            let bundle = r.rest();
            let entries = match galois_key_set_entries(bundle) {
                Ok(e) if !e.is_empty() => e,
                _ => return fail(ErrorCode::Malformed, "galois bundle rejected"),
            };
            // Keys are stored compressed, split but unexpanded — the
            // cache pays for expansion on first use.
            for (element, key_bytes) in entries {
                session.set_galois(element, key_bytes.to_vec());
            }
            Ok(Vec::new())
        }
        Opcode::CloseSession => {
            let mut r = BodyReader::new(body);
            let sid = r.u64().ok_or_else(malformed)?;
            state
                .sessions
                .close(sid)
                .map_err(|c| (c, format!("session {sid}")))?;
            state.cache.purge_session(sid);
            Ok(Vec::new())
        }
        Opcode::Add => {
            let mut r = BodyReader::new(body);
            let (_sid, _session) = need_session(state, &mut r)?;
            let a = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let b = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let (a, b) = state.evaluator.align_levels(&a, &b);
            Ok(serialize_ciphertext(&state.evaluator.add(&a, &b)))
        }
        Opcode::PtMult => {
            let mut r = BodyReader::new(body);
            let (_sid, _session) = need_session(state, &mut r)?;
            let ct = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let pt = deserialize_plaintext(&state.ctx, r.blob().ok_or_else(malformed)?)
                .map_err(|e| (ErrorCode::Malformed, e.to_string()))?;
            if ct.limb_count() != pt.limb_count() || ct.limb_count() < 2 {
                return fail(ErrorCode::Malformed, "plaintext level mismatch");
            }
            Ok(serialize_ciphertext(&state.evaluator.mul_plain(&ct, &pt)))
        }
        Opcode::Mult => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let a = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let b = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            if a.limb_count().min(b.limb_count()) < 2 {
                return fail(ErrorCode::Malformed, "no level left to multiply at");
            }
            let rlk = expand_key(state, sid, &session, KeyKind::Relin)?;
            let (a, b) = state.evaluator.align_levels(&a, &b);
            Ok(serialize_ciphertext(
                &state.evaluator.mul_with_key(&a, &b, &rlk),
            ))
        }
        Opcode::Rotate => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let steps = r.i64().ok_or_else(malformed)?;
            let ct = read_ct(state, r.rest())?;
            if steps == 0 {
                return Ok(serialize_ciphertext(&ct));
            }
            let gk = assemble_galois(state, sid, &session, &[steps])?;
            Ok(serialize_ciphertext(
                &state.evaluator.rotate(&ct, steps, &gk),
            ))
        }
        Opcode::Rescale => {
            let mut r = BodyReader::new(body);
            let (_sid, _session) = need_session(state, &mut r)?;
            let ct = read_ct(state, r.rest())?;
            if ct.limb_count() < 2 {
                return fail(ErrorCode::Malformed, "no limb left to rescale away");
            }
            Ok(serialize_ciphertext(&state.evaluator.rescale(&ct)))
        }
        Opcode::Bsgs => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let slots = state.ctx.params().slots();
            let n1 = r.u32().ok_or_else(malformed)? as usize;
            let diag_count = r.u32().ok_or_else(malformed)? as usize;
            if n1 == 0 || n1 > slots || diag_count == 0 || diag_count > slots {
                return fail(ErrorCode::Malformed, "bad BSGS dimensions");
            }
            let mut diagonals = BTreeMap::new();
            for _ in 0..diag_count {
                let offset = r.u32().ok_or_else(malformed)? as usize;
                if offset >= slots {
                    return fail(ErrorCode::Malformed, "diagonal offset out of range");
                }
                let mut diag = Vec::with_capacity(slots);
                for _ in 0..slots {
                    let re = r.f64().ok_or_else(malformed)?;
                    let im = r.f64().ok_or_else(malformed)?;
                    diag.push(Complex::new(re, im));
                }
                diagonals.insert(offset, diag);
            }
            let ct = read_ct(state, r.rest())?;
            let lt = LinearTransform::from_diagonals(diagonals, slots);
            let steps = bsgs_required_steps(&lt, n1);
            let gk = assemble_galois(state, sid, &session, &steps)?;
            Ok(serialize_ciphertext(&apply_bsgs(
                &state.evaluator,
                &state.encoder,
                &ct,
                &lt,
                &gk,
                n1,
            )))
        }
        Opcode::HelrStep => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let learning_rate = r.f64().ok_or_else(malformed)?;
            let dim = r.u32().ok_or_else(malformed)? as usize;
            if dim == 0 || dim > 64 {
                return fail(ErrorCode::Malformed, "feature dimension out of range");
            }
            let read_cts = |n: usize,
                            r: &mut BodyReader<'_>|
             -> Result<Vec<Ciphertext>, (ErrorCode, String)> {
                (0..n)
                    .map(|_| read_ct(state, r.blob().ok_or_else(malformed)?))
                    .collect()
            };
            let mut weights = read_cts(dim, &mut r)?;
            let xs = read_cts(dim, &mut r)?;
            let y01 = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let slots = state.ctx.params().slots();
            if weights[0].limb_count() <= fhe_apps::helr_enc::LR_STEP_DEPTH {
                return fail(ErrorCode::Malformed, "not enough levels for a step");
            }
            let rlk = expand_key(state, sid, &session, KeyKind::Relin)?;
            let gk = assemble_galois(state, sid, &session, &lr_fold_steps(slots))?;
            encrypted_lr_step(
                &state.evaluator,
                &rlk,
                &gk,
                &mut weights,
                &xs,
                &y01,
                slots,
                learning_rate,
            );
            let mut out = crate::protocol::BodyWriter::new();
            for w in &weights {
                out.blob(&serialize_ciphertext(w));
            }
            Ok(out.0)
        }
        Opcode::Metrics => Ok(state
            .metrics
            .dump(&state.cache.stats(), state.ctx.kernel_backend().name())
            .into_bytes()),
    }
}

fn malformed() -> (ErrorCode, String) {
    (ErrorCode::Malformed, "truncated request body".into())
}

fn need_session(
    state: &ServerState,
    r: &mut BodyReader<'_>,
) -> Result<(u64, Arc<Session>), (ErrorCode, String)> {
    let sid = r.u64().ok_or_else(malformed)?;
    let session = state
        .sessions
        .get(sid)
        .map_err(|c| (c, format!("session {sid}")))?;
    Ok((sid, session))
}

fn read_ct(state: &ServerState, bytes: &[u8]) -> Result<Ciphertext, (ErrorCode, String)> {
    deserialize_ciphertext(&state.ctx, bytes).map_err(|e| (ErrorCode::Malformed, e.to_string()))
}

/// Fetches one expanded key via the cache, resolving the compressed bytes
/// from the session store.
fn expand_key(
    state: &ServerState,
    sid: u64,
    session: &Session,
    kind: KeyKind,
) -> Result<Arc<ckks::SwitchingKey>, (ErrorCode, String)> {
    let bytes = session
        .key_bytes(kind)
        .map_err(|c| (c, format!("{kind:?} for session {sid}")))?;
    state
        .cache
        .get_or_expand(&state.ctx, sid, kind, &bytes)
        .map_err(|c| (c, format!("{kind:?} failed to expand")))
}

/// Builds a per-request Galois key set for `steps` from cached shared
/// expansions, failing with `MissingKey` *before* any evaluator call can
/// panic on an absent key.
fn assemble_galois(
    state: &ServerState,
    sid: u64,
    session: &Session,
    steps: &[i64],
) -> Result<GaloisKeys, (ErrorCode, String)> {
    let mut gk = GaloisKeys::new();
    for &s in steps {
        if s == 0 {
            continue;
        }
        let element = state.ctx.rotation_element(s);
        if gk.get_shared(element).is_some() {
            continue;
        }
        let key = expand_key(state, sid, session, KeyKind::Galois(element))
            .map_err(|(c, _)| (c, format!("rotation step {s} (element {element})")))?;
        gk.insert_shared(element, key);
    }
    Ok(gk)
}
