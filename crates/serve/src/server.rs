//! The server: an acceptor, per-connection reader threads, a key-reuse
//! batching scheduler, and a bounded worker pool executing FHE ops
//! against shared session/cache state.
//!
//! Threading model (all `std::thread`, no async runtime):
//!
//! - The **acceptor** owns the listener and spawns one reader thread per
//!   connection.
//! - A **reader** parses frames and enqueues jobs on a bounded
//!   [`sync_channel`]; a full queue is answered immediately with
//!   [`ErrorCode::Overloaded`] (backpressure), never buffered. The reader
//!   then blocks for that job's reply and writes it, so each connection
//!   sees strict request/response ordering. Keyed ops (Mult / Rotate /
//!   Bsgs / HelrStep) go to the **scheduler**'s admission channel when
//!   batching is enabled; everything else goes straight to the workers.
//! - The **scheduler** groups keyed jobs by `(session, KeyClass)` and
//!   dispatches a group as one `WorkItem::Batch` when it fills
//!   (`max_batch`), when its window expires (`max_delay`), or eagerly
//!   when the worker pool is idle (holding would buy nothing). A held
//!   job's deadline clock restarts at dispatch — the batching window is
//!   the scheduler's choice, not queue congestion, so it must not count
//!   against the per-request deadline.
//! - **Workers** pop work items, drop any job whose deadline passed
//!   while queued, and run ops under `catch_unwind` so a panic (e.g. a
//!   scale mismatch assertion deep in the evaluator) becomes a
//!   structured [`ErrorCode::Internal`] instead of a dead worker. A
//!   batch pins its whole expanded key-set in the [`KeyCache`] first,
//!   executes its jobs back-to-back against the pinned `Arc`s, and
//!   shares one hoisted ModUp decomposition across rotations of the
//!   same ciphertext.
//!
//! Shutdown is a graceful drain: readers stop accepting new frames, the
//! scheduler flushes held groups, in-queue jobs still execute and their
//! replies are delivered, then every thread is joined.

use crate::batch::{
    peek_bsgs_steps, peek_program_id, peek_rotate_ct, peek_rotate_steps, peek_session, BatchConfig,
    KeyClass,
};
use crate::cache::{CacheStats, EvictionPolicy, KeyCache, KeyKind};
#[cfg(feature = "chaos")]
use crate::fault::{FaultDecision, FaultPlan};
use crate::metrics::Metrics;
use crate::obs::{self, FinishedTrace, ObsConfig, Observer, RequestTrace, Stage};
use crate::protocol::{
    read_frame, write_frame, BatchHint, BodyReader, ErrorCode, FrameRead, Opcode,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::session::{Session, SessionManager, StoredProgram};
use ckks::hoisting::{apply_bsgs, bsgs_required_steps, rotate_hoisted, LinearTransform};
use ckks::serialize::{
    deserialize_ciphertext, deserialize_plaintext, deserialize_switching_key,
    galois_key_set_entries, serialize_ciphertext,
};
use ckks::{Ciphertext, CkksContext, Encoder, Evaluator, GaloisKeys, SwitchingKey};
use fhe_apps::{encrypted_lr_step, lr_fold_steps};
use fhe_math::cfft::Complex;
use fhe_program::program::{Instr, Program, ProgramEnv};
use fhe_program::{execute_validated, ExecError, ExecInputs, ExecKeys};
use std::collections::{BTreeMap, HashMap};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing FHE ops.
    pub workers: usize,
    /// Bounded queue length; a full queue rejects with `Overloaded`.
    pub queue_capacity: usize,
    /// Byte budget for expanded switching keys ([`KeyCache`]).
    pub key_cache_budget: u64,
    /// Cache eviction policy.
    pub eviction: EvictionPolicy,
    /// Maximum time a request may wait in the queue before a worker
    /// starts it; exceeded requests answer `DeadlineExceeded`.
    pub request_deadline: Duration,
    /// Ceiling on a single frame.
    pub max_frame_bytes: u32,
    /// Key-reuse batching scheduler knobs. The default reads the
    /// `MAD_SERVE_BATCHING` / `MAD_SERVE_BATCH_SIZE` /
    /// `MAD_SERVE_BATCH_DELAY_MS` environment variables.
    pub batch: BatchConfig,
    /// Request-tracing knobs ([`crate::obs`]). The default reads the
    /// `MAD_SERVE_OBS` / `MAD_SERVE_TRACE_RING` / `MAD_SERVE_DEEP_EVERY`
    /// / `MAD_SERVE_SLOW_MS` environment variables.
    pub obs: ObsConfig,
    /// Deterministic fault schedule threaded through the connection
    /// handler and worker pool; `None` (the default) serves faithfully.
    /// Only present when built with the `chaos` feature, so the default
    /// build carries no injection branches.
    #[cfg(feature = "chaos")]
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 32,
            key_cache_budget: 64 << 20,
            eviction: EvictionPolicy::Lru,
            request_deadline: Duration::from_secs(30),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            batch: BatchConfig::from_env(),
            obs: ObsConfig::from_env(),
            #[cfg(feature = "chaos")]
            fault_plan: None,
        }
    }
}

/// State shared by every thread.
pub(crate) struct ServerState {
    pub(crate) ctx: Arc<CkksContext>,
    pub(crate) evaluator: Evaluator,
    pub(crate) encoder: Encoder,
    pub(crate) sessions: SessionManager,
    pub(crate) cache: KeyCache,
    pub(crate) metrics: Metrics,
    pub(crate) obs: Observer,
    /// Whether the batching scheduler is wired in (reported in Hello).
    pub(crate) batching: bool,
    #[cfg(feature = "chaos")]
    pub(crate) fault: Option<Arc<FaultPlan>>,
}

struct Job {
    op: Opcode,
    body: Vec<u8>,
    /// When this request's deadline clock started. Readers stamp it at
    /// enqueue; the scheduler re-stamps it at batch dispatch, because a
    /// hold inside the batching window is the server's own choice and
    /// must not be double-counted against the per-op deadline.
    deadline_start: Instant,
    reply: std::sync::mpsc::Sender<(u8, Vec<u8>)>,
    /// The request's always-on timeline; `None` when tracing is
    /// disabled. The reader keeps a second handle and finishes the
    /// trace after writing the reply.
    trace: Option<Arc<RequestTrace>>,
    /// A worker-side fault drawn for this request by the chaos plan.
    #[cfg(feature = "chaos")]
    chaos: Option<FaultDecision>,
}

/// One unit of worker-pool work: a lone request, or a scheduler-formed
/// group sharing a session and key class.
enum WorkItem {
    Single(Job),
    Batch {
        sid: u64,
        class: KeyClass,
        jobs: Vec<Job>,
    },
}

/// Where readers drop parsed jobs: keyed ops into the scheduler's
/// admission channel (when batching is on), everything else straight to
/// the worker queue. `backlog` counts work items sent to the workers but
/// not yet finished — the scheduler's "is the pool idle" signal.
struct JobSinks {
    direct: SyncSender<WorkItem>,
    batched: Option<SyncSender<Job>>,
    backlog: Arc<AtomicU64>,
}

impl JobSinks {
    /// Routes one job; `Err` mirrors the sync-channel try_send contract
    /// (`Full` → Overloaded reply, `Disconnected` → drop connection).
    fn dispatch(&self, job: Job) -> Result<(), TrySendError<()>> {
        fn strip<T>(e: TrySendError<T>) -> TrySendError<()> {
            match e {
                TrySendError::Full(_) => TrySendError::Full(()),
                TrySendError::Disconnected(_) => TrySendError::Disconnected(()),
            }
        }
        let batchable = KeyClass::of(job.op).is_some() && peek_session(&job.body).is_some();
        match &self.batched {
            Some(tx) if batchable => tx.try_send(job).map_err(strip),
            _ => {
                self.backlog.fetch_add(1, Ordering::Relaxed);
                let r = self.direct.try_send(WorkItem::Single(job));
                if r.is_err() {
                    self.backlog.fetch_sub(1, Ordering::Relaxed);
                }
                r.map_err(strip)
            }
        }
    }
}

/// A running server; dropping without [`Server::shutdown`] aborts
/// non-gracefully (threads are detached), so call `shutdown`.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    queue: Option<SyncSender<WorkItem>>,
    batch_queue: Option<SyncSender<Job>>,
}

impl Server {
    /// Binds a loopback listener on an OS-assigned port and starts the
    /// acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates listener-creation I/O errors.
    pub fn start(ctx: Arc<CkksContext>, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            evaluator: Evaluator::new(ctx.clone()),
            encoder: Encoder::new(ctx.clone()),
            ctx,
            sessions: SessionManager::new(),
            cache: KeyCache::new(config.key_cache_budget, config.eviction),
            metrics: Metrics::new(),
            obs: Observer::new(config.obs.clone()),
            batching: config.batch.enabled,
            #[cfg(feature = "chaos")]
            fault: config.fault_plan.clone(),
        });
        state
            .metrics
            .batching_enabled
            .store(u64::from(config.batch.enabled), Ordering::Relaxed);
        let shutdown = Arc::new(AtomicBool::new(false));
        let backlog = Arc::new(AtomicU64::new(0));
        let (work_tx, work_rx) = sync_channel::<WorkItem>(config.queue_capacity);
        let work_rx = Arc::new(Mutex::new(work_rx));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let state = state.clone();
                let rx = work_rx.clone();
                let backlog = backlog.clone();
                let deadline = config.request_deadline;
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&state, &rx, &backlog, deadline))
                    .expect("spawn worker")
            })
            .collect();

        let (batch_tx, scheduler) = if config.batch.enabled {
            let (batch_tx, batch_rx) = sync_channel::<Job>(config.queue_capacity);
            let state = state.clone();
            let work_tx = work_tx.clone();
            let backlog = backlog.clone();
            let batch_cfg = config.batch.clone();
            let handle = std::thread::Builder::new()
                .name("serve-scheduler".into())
                .spawn(move || scheduler_loop(&state, &batch_rx, &work_tx, &backlog, &batch_cfg))
                .expect("spawn scheduler");
            (Some(batch_tx), Some(handle))
        } else {
            (None, None)
        };

        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let acceptor = {
            let state = state.clone();
            let shutdown = shutdown.clone();
            let conn_handles = conn_handles.clone();
            let sinks = Arc::new(JobSinks {
                direct: work_tx.clone(),
                batched: batch_tx.clone(),
                backlog,
            });
            let max_frame = config.max_frame_bytes;
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        state
                            .metrics
                            .connections_total
                            .fetch_add(1, Ordering::Relaxed);
                        let state = state.clone();
                        let shutdown = shutdown.clone();
                        let sinks = sinks.clone();
                        let handle = std::thread::Builder::new()
                            .name("serve-conn".into())
                            .spawn(move || {
                                connection_loop(&state, &shutdown, &sinks, stream, max_frame)
                            })
                            .expect("spawn connection thread");
                        conn_handles.lock().expect("handles poisoned").push(handle);
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr,
            state,
            shutdown,
            acceptor: Some(acceptor),
            scheduler,
            workers,
            conn_handles,
            queue: Some(work_tx),
            batch_queue: batch_tx,
        })
    }

    /// The bound address to hand to [`crate::client::Client::connect`].
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Key-cache counters (also part of the metrics dump).
    pub fn cache_stats(&self) -> CacheStats {
        self.state.cache.stats()
    }

    /// Asserts the key cache's internal invariants (byte ledger, stats
    /// mirror, budget) and returns a consistent snapshot. Panics on
    /// violation — used by the chaos and stress suites, safe to call on
    /// a live server.
    pub fn assert_cache_consistent(&self) -> CacheStats {
        self.state.cache.check_invariants()
    }

    /// The current metrics dump, server-side (the `Metrics` opcode
    /// returns the same text over the wire).
    pub fn metrics_dump(&self) -> String {
        self.state
            .metrics
            .dump(&self.state.cache.stats(), self.kernel_backend_name())
    }

    /// The name of the kernel backend the serving context dispatches its
    /// hot kernels to (also reported in the `Hello` reply and the metrics
    /// dump).
    pub fn kernel_backend_name(&self) -> &'static str {
        self.state.ctx.kernel_backend().name()
    }

    /// Recent finished request timelines, oldest first (the `TraceDump`
    /// opcode renders the same data as Chrome trace-event JSON).
    pub fn recent_traces(&self) -> Vec<FinishedTrace> {
        self.state.obs.recent()
    }

    /// The slowest request observed since the server started, retained
    /// even after it ages out of the trace ring.
    pub fn slowest_trace(&self) -> Option<FinishedTrace> {
        self.state.obs.slowest()
    }

    /// Chrome trace-event JSON of the retained request timelines —
    /// server-side twin of the `TraceDump` opcode, loadable in Perfetto.
    pub fn trace_json(&self) -> String {
        self.state.obs.chrome_trace_json()
    }

    /// The structured slow-request log (requests over the configured
    /// threshold, annotated with their dominant stage), oldest first.
    pub fn slow_log(&self) -> String {
        self.state.obs.slow_log()
    }

    /// Graceful drain: stop accepting, let queued requests finish and
    /// their replies flush, then join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conn_handles.lock().expect("handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
        // All reader-held sink clones are gone. Dropping ours disconnects
        // the scheduler's admission channel; it flushes held groups to
        // the workers and exits.
        drop(self.batch_queue.take());
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        // Now the last worker-queue sender goes away; workers drain the
        // remaining items and exit.
        drop(self.queue.take());
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    state: &ServerState,
    rx: &Arc<Mutex<Receiver<WorkItem>>>,
    backlog: &AtomicU64,
    deadline: Duration,
) {
    loop {
        let item = {
            let rx = rx.lock().expect("queue poisoned");
            rx.recv()
        };
        let Ok(item) = item else { break };
        match item {
            WorkItem::Single(job) => {
                state.metrics.dequeued();
                if let Some(t) = &job.trace {
                    t.mark_picked();
                }
                if admit_job(state, &job, deadline) {
                    execute_job(state, job, None);
                }
            }
            WorkItem::Batch { sid, class, jobs } => run_batch(state, sid, class, jobs, deadline),
        }
        // Decremented after execution, not at pop: backlog == 0 means the
        // pool is truly idle, which is the scheduler's eager-dispatch
        // signal.
        backlog.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-job admission: apply worker-side chaos faults, then check the
/// deadline. Returns `false` (after replying `DeadlineExceeded`) if the
/// job must not run.
fn admit_job(state: &ServerState, job: &Job, deadline: Duration) -> bool {
    #[cfg(feature = "chaos")]
    if let Some(fault) = job.chaos {
        match fault {
            // Slept *before* the deadline check so injected latency
            // counts against the request deadline exactly like real
            // queueing delay.
            FaultDecision::Delay(d) => std::thread::sleep(d),
            FaultDecision::EvictionStorm => {
                state.cache.evict_all();
            }
            FaultDecision::SessionReset => {
                state.sessions.close_all();
                state.cache.evict_all();
            }
            // WorkerPanic fires inside catch_unwind during execution;
            // reader-side faults never reach the queue.
            _ => {}
        }
    }
    if job.deadline_start.elapsed() > deadline {
        state
            .metrics
            .rejected_deadline
            .fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send((
            ErrorCode::DeadlineExceeded as u8,
            format!("queued longer than {deadline:?}").into_bytes(),
        ));
        return false;
    }
    true
}

/// Runs one job to completion (chaos/deadline already applied) and
/// delivers its reply.
fn execute_job(state: &ServerState, job: Job, keys: Option<&BatchKeys>) {
    let start = Instant::now();
    let result = {
        // Guard scope: exec accounting and the deep-trace bridge close
        // before the reply is sent, so the reader can never finish the
        // trace while the worker is still writing to it.
        let _exec = job.trace.as_ref().map(|t| state.obs.enter_exec(t));
        catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "chaos")]
            if matches!(job.chaos, Some(FaultDecision::WorkerPanic)) {
                panic!("injected chaos panic");
            }
            handle(state, job.op, &job.body, keys)
        }))
    };
    state.metrics.latency(job.op).observe(start.elapsed());
    let (status, body) = match result {
        Ok(Ok(body)) => (0u8, body),
        Ok(Err((code, msg))) => (code as u8, msg.into_bytes()),
        Err(_) => (ErrorCode::Internal as u8, b"operation panicked".to_vec()),
    };
    let _ = job.reply.send((status, body));
}

/// The expanded keys a batch pinned up front, consulted by the handler
/// before it ever touches the shared cache. Every hit here is a cache
/// round-trip (and, under budget pressure, a potential re-expansion)
/// avoided.
#[derive(Default)]
struct BatchKeys {
    map: HashMap<KeyKind, Arc<SwitchingKey>>,
}

impl BatchKeys {
    fn get(&self, kind: KeyKind) -> Option<&Arc<SwitchingKey>> {
        self.map.get(&kind)
    }
}

/// Executes a scheduler-formed batch: pin the union key-set, run the
/// jobs back-to-back against the pinned expansions (rotations of the
/// same ciphertext jointly, sharing one hoisted ModUp decomposition),
/// then unpin.
fn run_batch(state: &ServerState, sid: u64, class: KeyClass, jobs: Vec<Job>, deadline: Duration) {
    state.metrics.batches_total.fetch_add(1, Ordering::Relaxed);
    state
        .metrics
        .batch_jobs_total
        .fetch_add(jobs.len() as u64, Ordering::Relaxed);
    state.metrics.batch_size.observe(jobs.len() as u64);

    let mut runnable = Vec::with_capacity(jobs.len());
    for job in jobs {
        state.metrics.dequeued();
        if let Some(t) = &job.trace {
            t.mark_picked();
        }
        if admit_job(state, &job, deadline) {
            runnable.push(job);
        }
    }
    if runnable.is_empty() {
        return;
    }
    // A dead session (closed, or chaos-reset while queued) fails every
    // job through the ordinary per-job path, structured errors included.
    let Ok(session) = state.sessions.get(sid) else {
        for job in runnable {
            execute_job(state, job, None);
        }
        return;
    };

    // Pin the union of the batch's key requirements. Peeks that fail on
    // malformed bodies contribute nothing; those jobs error per-job.
    let slots = state.ctx.params().slots();
    let mut kinds: Vec<KeyKind> = Vec::new();
    let want = |kinds: &mut Vec<KeyKind>, k: KeyKind| {
        if !kinds.contains(&k) {
            kinds.push(k);
        }
    };
    for job in &runnable {
        match job.op {
            Opcode::Mult => want(&mut kinds, KeyKind::Relin),
            Opcode::Rotate => {
                if let Some(s) = peek_rotate_steps(&job.body) {
                    if s != 0 {
                        want(&mut kinds, KeyKind::Galois(state.ctx.rotation_element(s)));
                    }
                }
            }
            Opcode::Bsgs => {
                for s in peek_bsgs_steps(&job.body, slots).unwrap_or_default() {
                    want(&mut kinds, KeyKind::Galois(state.ctx.rotation_element(s)));
                }
            }
            Opcode::HelrStep => {
                want(&mut kinds, KeyKind::Relin);
                for s in lr_fold_steps(slots) {
                    if s != 0 {
                        want(&mut kinds, KeyKind::Galois(state.ctx.rotation_element(s)));
                    }
                }
            }
            // The program's own key manifest names the exact pins — the
            // opcode's static RelinGalois class is only the grouping key.
            Opcode::RunProgram => {
                if let Some(sp) =
                    peek_program_id(&job.body).and_then(|pid| session.program(pid).ok())
                {
                    if sp.info.manifest.relin {
                        want(&mut kinds, KeyKind::Relin);
                    }
                    for &s in &sp.info.manifest.galois_steps {
                        if s != 0 {
                            want(&mut kinds, KeyKind::Galois(state.ctx.rotation_element(s)));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    let mut keys = BatchKeys::default();
    let mut pinned: Vec<KeyKind> = Vec::new();
    let pin_start = Instant::now();
    for kind in kinds {
        // A missing or corrupt key is a per-job error, surfaced with the
        // right code when the job executes; the pin phase just skips it.
        let Ok(bytes) = session.key_bytes(kind) else {
            continue;
        };
        if let Ok(key) = state
            .cache
            .get_or_expand_pinned(&state.ctx, sid, kind, &bytes)
        {
            keys.map.insert(kind, key);
            pinned.push(kind);
            state
                .metrics
                .batch_keys_pinned
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    // Every batch member waited out the shared pin phase in wall time,
    // so each job's key stage carries the full phase duration.
    let pin_elapsed = pin_start.elapsed();
    if !pin_elapsed.is_zero() {
        for job in &runnable {
            if let Some(t) = &job.trace {
                obs::add_stage(t, Stage::Key, pin_elapsed);
            }
        }
    }

    if class == KeyClass::Galois {
        run_galois_batch(state, runnable, &keys);
    } else {
        for job in runnable {
            execute_job(state, job, Some(&keys));
        }
    }

    for kind in pinned {
        state.cache.unpin(sid, kind);
    }
}

/// Executes a Galois-class batch, folding rotations of bit-identical
/// ciphertexts into one `rotate_hoisted` call so the ModUp decomposition
/// of `c1` is computed once per distinct ciphertext instead of once per
/// request. Jobs that cannot join a group (Bsgs, rotate-by-zero,
/// malformed bodies, missing keys, chaos-panic carriers) run through the
/// ordinary per-job path — still against the batch's pinned keys.
fn run_galois_batch(state: &ServerState, runnable: Vec<Job>, keys: &BatchKeys) {
    // Group joint-eligible rotations by ciphertext bytes.
    let eligible = |job: &Job| -> bool {
        #[cfg(feature = "chaos")]
        if matches!(job.chaos, Some(FaultDecision::WorkerPanic)) {
            return false;
        }
        job.op == Opcode::Rotate
            && peek_rotate_ct(&job.body).is_some()
            && peek_rotate_steps(&job.body).is_some_and(|s| {
                s != 0
                    && keys
                        .get(KeyKind::Galois(state.ctx.rotation_element(s)))
                        .is_some()
            })
    };
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, job) in runnable.iter().enumerate() {
        if !eligible(job) {
            continue;
        }
        let ct = peek_rotate_ct(&job.body).expect("eligible");
        match groups
            .iter_mut()
            .find(|g| peek_rotate_ct(&runnable[g[0]].body) == Some(ct))
        {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    let joint: Vec<Vec<usize>> = groups.into_iter().filter(|g| g.len() >= 2).collect();
    let in_joint: Vec<bool> = {
        let mut v = vec![false; runnable.len()];
        for g in &joint {
            for &i in g {
                v[i] = true;
            }
        }
        v
    };

    let mut slots: Vec<Option<Job>> = runnable.into_iter().map(Some).collect();
    for g in &joint {
        let jobs: Vec<Job> = g
            .iter()
            .map(|&i| slots[i].take().expect("unused"))
            .collect();
        let steps: Vec<i64> = jobs
            .iter()
            .map(|j| peek_rotate_steps(&j.body).expect("eligible"))
            .collect();
        let ct_bytes = peek_rotate_ct(&jobs[0].body).expect("eligible").to_vec();
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(
            || -> Result<Vec<Vec<u8>>, (ErrorCode, String)> {
                let ct = read_ct(state, &ct_bytes)?;
                // Keys were verified present; resolve through the pinned
                // set exactly like the per-job path would.
                let gk = assemble_galois_set(state, &steps, keys)?;
                let outs = rotate_hoisted(&state.evaluator, &ct, &steps, &gk);
                Ok(outs.iter().map(serialize_ciphertext).collect())
            },
        ));
        let elapsed = start.elapsed();
        for job in &jobs {
            if let Some(t) = &job.trace {
                t.set_exec_ending_now(elapsed);
            }
        }
        state
            .metrics
            .batch_hoist_shared
            .fetch_add(jobs.len() as u64 - 1, Ordering::Relaxed);
        match result {
            Ok(Ok(bodies)) => {
                for (job, body) in jobs.into_iter().zip(bodies) {
                    state.metrics.latency(job.op).observe(elapsed);
                    let _ = job.reply.send((0u8, body));
                }
            }
            Ok(Err((code, msg))) => {
                for job in jobs {
                    state.metrics.latency(job.op).observe(elapsed);
                    let _ = job.reply.send((code as u8, msg.clone().into_bytes()));
                }
            }
            Err(_) => {
                for job in jobs {
                    state.metrics.latency(job.op).observe(elapsed);
                    let _ = job
                        .reply
                        .send((ErrorCode::Internal as u8, b"operation panicked".to_vec()));
                }
            }
        }
    }
    for (i, slot) in slots.into_iter().enumerate() {
        if let Some(job) = slot {
            debug_assert!(!in_joint[i]);
            execute_job(state, job, Some(keys));
        }
    }
}

/// Builds a Galois key set for `steps` purely from a batch's pinned
/// expansions (joint rotations pre-verified every key is pinned).
fn assemble_galois_set(
    state: &ServerState,
    steps: &[i64],
    keys: &BatchKeys,
) -> Result<GaloisKeys, (ErrorCode, String)> {
    let mut gk = GaloisKeys::new();
    for &s in steps {
        let element = state.ctx.rotation_element(s);
        if gk.get_shared(element).is_some() {
            continue;
        }
        let key = keys.get(KeyKind::Galois(element)).ok_or_else(|| {
            (
                ErrorCode::MissingKey,
                format!("rotation step {s} (element {element})"),
            )
        })?;
        state
            .metrics
            .batch_expansions_avoided
            .fetch_add(1, Ordering::Relaxed);
        gk.insert_shared(element, key.clone());
    }
    Ok(gk)
}

/// Pending batch groups, keyed by `(session, KeyClass)`.
struct PendingGroup {
    jobs: Vec<Job>,
    oldest: Instant,
    /// `Throughput` sessions always wait out the window; `Auto` groups
    /// flush eagerly the moment the worker pool goes idle.
    hold: bool,
}

/// Hands one scheduler-formed group to the worker queue: restarts each
/// job's deadline clock (time held for batching is the scheduler's
/// choice, not congestion), stamps the hold on its trace, and — when
/// the workers are already gone in a shutdown race — retires the
/// dropped jobs from the queue-depth gauge. Their readers counted them
/// `enqueued()` at admission and no worker will ever `dequeued()` them,
/// so skipping that here would leak `serve_queue_depth` permanently.
fn dispatch_batch(
    metrics: &Metrics,
    work: &SyncSender<WorkItem>,
    backlog: &AtomicU64,
    sid: u64,
    class: KeyClass,
    mut jobs: Vec<Job>,
) {
    let now = Instant::now();
    for j in &mut jobs {
        j.deadline_start = now;
        if let Some(t) = &j.trace {
            t.mark_batch_dispatch();
        }
    }
    backlog.fetch_add(1, Ordering::Relaxed);
    if let Err(std::sync::mpsc::SendError(item)) = work.send(WorkItem::Batch { sid, class, jobs }) {
        // Workers already gone (shutdown race); replies drop with the
        // channel and readers answer Internal.
        backlog.fetch_sub(1, Ordering::Relaxed);
        if let WorkItem::Batch { jobs, .. } = item {
            for _ in &jobs {
                metrics.dequeued();
            }
        }
    }
}

/// The scheduler thread: collects keyed jobs into per-`(session, class)`
/// groups and dispatches each as one `WorkItem::Batch` when it fills,
/// expires, or the pool idles. On channel disconnect (shutdown) every
/// held group flushes before the thread exits, so no reply is lost.
fn scheduler_loop(
    state: &ServerState,
    rx: &Receiver<Job>,
    work: &SyncSender<WorkItem>,
    backlog: &AtomicU64,
    cfg: &BatchConfig,
) {
    let mut groups: HashMap<(u64, KeyClass), PendingGroup> = HashMap::new();
    let dispatch = |sid: u64, class: KeyClass, jobs: Vec<Job>| {
        dispatch_batch(&state.metrics, work, backlog, sid, class, jobs);
    };
    let flush = |groups: &mut HashMap<(u64, KeyClass), PendingGroup>,
                 pred: &dyn Fn(&PendingGroup) -> bool| {
        let due: Vec<(u64, KeyClass)> = groups
            .iter()
            .filter(|(_, p)| pred(p))
            .map(|(k, _)| *k)
            .collect();
        for key in due {
            let p = groups.remove(&key).expect("listed");
            dispatch(key.0, key.1, p.jobs);
        }
    };
    loop {
        let next_due = groups.values().map(|p| p.oldest + cfg.max_delay).min();
        let job = match next_due {
            None => match rx.recv() {
                Ok(j) => Some(j),
                Err(_) => break,
            },
            Some(due) => {
                let now = Instant::now();
                if due <= now {
                    None
                } else {
                    match rx.recv_timeout(due - now) {
                        Ok(j) => Some(j),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        };
        if let Some(job) = job {
            admit_to_group(state, &mut groups, job, cfg, &dispatch);
            // Coalesce the rest of an already-waiting burst before any
            // dispatch decision.
            while let Ok(j) = rx.try_recv() {
                admit_to_group(state, &mut groups, j, cfg, &dispatch);
            }
            // An idle pool means holding buys nothing: flush every group
            // that didn't ask to wait.
            if backlog.load(Ordering::Relaxed) == 0 {
                flush(&mut groups, &|p| !p.hold);
            }
        }
        let now = Instant::now();
        flush(&mut groups, &|p| p.oldest + cfg.max_delay <= now);
    }
    // Shutdown drain: every held job still executes and replies.
    flush(&mut groups, &|_| true);
}

/// Files one job into its `(session, class)` group, dispatching the
/// group if it reaches `max_batch`. `Interactive` sessions and jobs with
/// no resolvable group dispatch immediately as singletons.
fn admit_to_group(
    state: &ServerState,
    groups: &mut HashMap<(u64, KeyClass), PendingGroup>,
    job: Job,
    cfg: &BatchConfig,
    dispatch: &dyn Fn(u64, KeyClass, Vec<Job>),
) {
    let (Some(class), Some(sid)) = (KeyClass::of(job.op), peek_session(&job.body)) else {
        // Readers only route keyed ops here, but stay safe: run it alone.
        dispatch(0, KeyClass::Relin, vec![job]);
        return;
    };
    let hint = state
        .sessions
        .get(sid)
        .map(|s| s.batch_hint())
        .unwrap_or(BatchHint::Auto);
    if hint == BatchHint::Interactive {
        dispatch(sid, class, vec![job]);
        return;
    }
    let p = groups.entry((sid, class)).or_insert_with(|| PendingGroup {
        jobs: Vec::new(),
        oldest: Instant::now(),
        hold: hint == BatchHint::Throughput,
    });
    p.jobs.push(job);
    if p.jobs.len() >= cfg.max_batch {
        let p = groups.remove(&(sid, class)).expect("just inserted");
        dispatch(sid, class, p.jobs);
    }
}

/// Blocks through read timeouts, polling the shutdown flag, so an idle
/// connection wakes up promptly at shutdown while a slow frame mid-body
/// still completes.
struct PatientReader<'a> {
    stream: &'a TcpStream,
    shutdown: &'a AtomicBool,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            let mut stream = self.stream;
            match stream.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "server shutting down",
                        ));
                    }
                }
                r => return r,
            }
        }
    }
}

fn connection_loop(
    state: &ServerState,
    shutdown: &AtomicBool,
    sinks: &JobSinks,
    mut stream: TcpStream,
    max_frame: u32,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let respond = |stream: &mut TcpStream, status: u8, body: &[u8]| {
        if status != 0 {
            state.metrics.errors_total.fetch_add(1, Ordering::Relaxed);
        }
        state
            .metrics
            .bytes_written
            .fetch_add(6 + body.len() as u64, Ordering::Relaxed);
        write_frame(stream, status, body).is_ok()
    };
    loop {
        let mut reader = PatientReader {
            stream: &stream,
            shutdown,
        };
        match read_frame(&mut reader, max_frame) {
            Ok(FrameRead::Frame(frame)) => {
                state
                    .metrics
                    .bytes_read
                    .fetch_add(6 + frame.body.len() as u64, Ordering::Relaxed);
                if frame.version != PROTOCOL_VERSION {
                    let msg = format!("version {} unsupported", frame.version);
                    if !respond(
                        &mut stream,
                        ErrorCode::UnsupportedVersion as u8,
                        msg.as_bytes(),
                    ) {
                        break;
                    }
                    continue;
                }
                let Some(op) = Opcode::from_u8(frame.tag) else {
                    let msg = format!("opcode {:#04x}", frame.tag);
                    if !respond(&mut stream, ErrorCode::UnknownOpcode as u8, msg.as_bytes()) {
                        break;
                    }
                    continue;
                };
                // Chaos: exactly one plan decision per parsed frame.
                // Reader-side faults act right here; worker-side faults
                // ride on the job; write aborts fire when the reply comes
                // back.
                #[cfg(feature = "chaos")]
                let mut worker_fault = None;
                #[cfg(feature = "chaos")]
                let mut write_fault = None;
                #[cfg(feature = "chaos")]
                if let Some(plan) = &state.fault {
                    if let Some(fault) = plan.decide(op) {
                        state
                            .metrics
                            .faults_injected
                            .fetch_add(1, Ordering::Relaxed);
                        match fault {
                            // A failed socket read: the connection dies
                            // with no reply at all.
                            FaultDecision::ReadError => break,
                            // Synthetic admission-control pushback.
                            FaultDecision::Overloaded => {
                                state
                                    .metrics
                                    .rejected_overload
                                    .fetch_add(1, Ordering::Relaxed);
                                if !respond(
                                    &mut stream,
                                    ErrorCode::Overloaded as u8,
                                    b"injected overload, retry later",
                                ) {
                                    break;
                                }
                                continue;
                            }
                            FaultDecision::WriteAbort { .. } => write_fault = Some(fault),
                            other => worker_fault = Some(other),
                        }
                    }
                }
                let (reply_tx, reply_rx) = std::sync::mpsc::channel();
                let trace = state.obs.begin(op);
                let job = Job {
                    op,
                    body: frame.body,
                    deadline_start: Instant::now(),
                    reply: reply_tx,
                    trace: trace.clone(),
                    #[cfg(feature = "chaos")]
                    chaos: worker_fault,
                };
                // Count before sending: a worker may pop (and decrement)
                // the instant `try_send` returns.
                state.metrics.enqueued();
                if let Some(t) = &trace {
                    t.mark_enqueued();
                }
                match sinks.dispatch(job) {
                    Ok(()) => {
                        let (status, body) = reply_rx.recv().unwrap_or((
                            ErrorCode::Internal as u8,
                            b"worker dropped the request".to_vec(),
                        ));
                        #[cfg(feature = "chaos")]
                        if let Some(FaultDecision::WriteAbort { keep }) = write_fault {
                            // Torn frame: a strict prefix of the real
                            // response, then the connection drops. The
                            // trace is abandoned unfinished — a reply
                            // that never made it is not timeline data.
                            use std::io::Write as _;
                            let bytes = crate::protocol::frame_bytes(status, &body);
                            let keep = keep.min(bytes.len().saturating_sub(1));
                            let _ = (&stream).write_all(&bytes[..keep]);
                            let _ = (&stream).flush();
                            break;
                        }
                        let write_start = Instant::now();
                        let ok = respond(&mut stream, status, &body);
                        if let Some(t) = &trace {
                            obs::add_stage(t, Stage::Write, write_start.elapsed());
                            state.obs.finish(&state.metrics, t, status);
                        }
                        if !ok {
                            break;
                        }
                    }
                    Err(TrySendError::Full(())) => {
                        state.metrics.retracted();
                        state
                            .metrics
                            .rejected_overload
                            .fetch_add(1, Ordering::Relaxed);
                        if !respond(
                            &mut stream,
                            ErrorCode::Overloaded as u8,
                            b"queue full, retry later",
                        ) {
                            break;
                        }
                    }
                    Err(TrySendError::Disconnected(())) => {
                        state.metrics.retracted();
                        break;
                    }
                }
            }
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::TooLarge(len)) => {
                // The unread body leaves the stream out of sync: answer,
                // then drop the connection.
                let msg = format!("frame of {len} bytes exceeds limit {max_frame}");
                respond(&mut stream, ErrorCode::FrameTooLarge as u8, msg.as_bytes());
                break;
            }
            Err(_) => break,
        }
    }
}

type OpResult = Result<Vec<u8>, (ErrorCode, String)>;

fn fail<T>(code: ErrorCode, msg: impl Into<String>) -> Result<T, (ErrorCode, String)> {
    Err((code, msg.into()))
}

fn handle(state: &ServerState, op: Opcode, body: &[u8], keys: Option<&BatchKeys>) -> OpResult {
    match op {
        Opcode::Hello => {
            // Optional leading batching-hint byte; anything else in the
            // body (old clients, fuzzed frames) reads as Auto.
            let hint = BatchHint::from_u8(body.first().copied().unwrap_or(0));
            let sid = state.sessions.create_with_hint(hint);
            // 8 LE bytes of session id, a flags byte (bit 0: batching
            // scheduler enabled), then the active kernel-backend name in
            // UTF-8. Pre-backend clients read only the first 8 bytes.
            let mut reply = sid.to_le_bytes().to_vec();
            reply.push(u8::from(state.batching));
            reply.extend_from_slice(state.ctx.kernel_backend().name().as_bytes());
            Ok(reply)
        }
        Opcode::UploadRelin => {
            let mut r = BodyReader::new(body);
            let (_sid, session) = need_session(state, &mut r)?;
            let key_bytes = r.rest();
            // Validate against the context before filing it away, so MULT
            // never trips over garbage later.
            if deserialize_switching_key(&state.ctx, key_bytes).is_err() {
                return fail(ErrorCode::Malformed, "relin key bytes rejected");
            }
            session.set_relin(key_bytes.to_vec());
            Ok(Vec::new())
        }
        Opcode::UploadGalois => {
            let mut r = BodyReader::new(body);
            let (_sid, session) = need_session(state, &mut r)?;
            let bundle = r.rest();
            let entries = match galois_key_set_entries(bundle) {
                Ok(e) if !e.is_empty() => e,
                _ => return fail(ErrorCode::Malformed, "galois bundle rejected"),
            };
            // Keys are stored compressed, split but unexpanded — the
            // cache pays for expansion on first use.
            for (element, key_bytes) in entries {
                session.set_galois(element, key_bytes.to_vec());
            }
            Ok(Vec::new())
        }
        Opcode::CloseSession => {
            let mut r = BodyReader::new(body);
            let sid = r.u64().ok_or_else(malformed)?;
            state
                .sessions
                .close(sid)
                .map_err(|c| (c, format!("session {sid}")))?;
            state.cache.purge_session(sid);
            Ok(Vec::new())
        }
        Opcode::UploadProgram => {
            let mut r = BodyReader::new(body);
            let (_sid, session) = need_session(state, &mut r)?;
            let wire = r.rest();
            let program = Program::from_bytes(wire)
                .map_err(|e| (ErrorCode::Malformed, format!("program rejected: {e}")))?;
            // Validate against *this server's* parameters once at upload,
            // so every RunProgram skips straight to execution and a
            // mis-parameterized program fails loudly up front.
            let env = ProgramEnv {
                levels: state.ctx.params().levels(),
                slots: state.ctx.params().slots(),
            };
            let info = program
                .validate(&env)
                .map_err(|e| (ErrorCode::Malformed, format!("program rejected: {e}")))?;
            if program
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::Bootstrap { .. }))
            {
                return fail(
                    ErrorCode::Malformed,
                    "program uses Bootstrap, which the serving runtime cannot execute",
                );
            }
            let pid = session.store_program(StoredProgram {
                wire_len: wire.len(),
                info,
                program,
            });
            Ok(pid.to_le_bytes().to_vec())
        }
        Opcode::Add => {
            let mut r = BodyReader::new(body);
            let (_sid, _session) = need_session(state, &mut r)?;
            let a = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let b = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let (a, b) = state.evaluator.align_levels(&a, &b);
            Ok(ser_ct(&state.evaluator.add(&a, &b)))
        }
        Opcode::PtMult => {
            let mut r = BodyReader::new(body);
            let (_sid, _session) = need_session(state, &mut r)?;
            let ct = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let pt = deserialize_plaintext(&state.ctx, r.blob().ok_or_else(malformed)?)
                .map_err(|e| (ErrorCode::Malformed, e.to_string()))?;
            if ct.limb_count() != pt.limb_count() || ct.limb_count() < 2 {
                return fail(ErrorCode::Malformed, "plaintext level mismatch");
            }
            Ok(ser_ct(&state.evaluator.mul_plain(&ct, &pt)))
        }
        Opcode::Mult => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let a = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let b = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            if a.limb_count().min(b.limb_count()) < 2 {
                return fail(ErrorCode::Malformed, "no level left to multiply at");
            }
            let rlk = expand_key(state, sid, &session, KeyKind::Relin, keys)?;
            let (a, b) = state.evaluator.align_levels(&a, &b);
            Ok(ser_ct(&state.evaluator.mul_with_key(&a, &b, &rlk)))
        }
        Opcode::Rotate => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let steps = r.i64().ok_or_else(malformed)?;
            let ct = read_ct(state, r.rest())?;
            if steps == 0 {
                return Ok(ser_ct(&ct));
            }
            let gk = assemble_galois(state, sid, &session, &[steps], keys)?;
            // The hoisted formulation in *both* modes: hoisted digit
            // automorphism is only semantically — not bitwise — equal to
            // the automorph-then-decompose order, so batch-of-k and
            // batch-of-1 stay byte-identical only if the singleton path
            // hoists too.
            let out = rotate_hoisted(&state.evaluator, &ct, &[steps], &gk)
                .pop()
                .expect("one step in, one ciphertext out");
            Ok(ser_ct(&out))
        }
        Opcode::Rescale => {
            let mut r = BodyReader::new(body);
            let (_sid, _session) = need_session(state, &mut r)?;
            let ct = read_ct(state, r.rest())?;
            if ct.limb_count() < 2 {
                return fail(ErrorCode::Malformed, "no limb left to rescale away");
            }
            Ok(ser_ct(&state.evaluator.rescale(&ct)))
        }
        Opcode::Bsgs => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let slots = state.ctx.params().slots();
            let n1 = r.u32().ok_or_else(malformed)? as usize;
            let diag_count = r.u32().ok_or_else(malformed)? as usize;
            if n1 == 0 || n1 > slots || diag_count == 0 || diag_count > slots {
                return fail(ErrorCode::Malformed, "bad BSGS dimensions");
            }
            let mut diagonals = BTreeMap::new();
            for _ in 0..diag_count {
                let offset = r.u32().ok_or_else(malformed)? as usize;
                if offset >= slots {
                    return fail(ErrorCode::Malformed, "diagonal offset out of range");
                }
                let mut diag = Vec::with_capacity(slots);
                for _ in 0..slots {
                    let re = r.f64().ok_or_else(malformed)?;
                    let im = r.f64().ok_or_else(malformed)?;
                    diag.push(Complex::new(re, im));
                }
                diagonals.insert(offset, diag);
            }
            let ct = read_ct(state, r.rest())?;
            let lt = LinearTransform::from_diagonals(diagonals, slots);
            let steps = bsgs_required_steps(&lt, n1);
            let gk = assemble_galois(state, sid, &session, &steps, keys)?;
            Ok(ser_ct(&apply_bsgs(
                &state.evaluator,
                &state.encoder,
                &ct,
                &lt,
                &gk,
                n1,
            )))
        }
        Opcode::HelrStep => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let learning_rate = r.f64().ok_or_else(malformed)?;
            let dim = r.u32().ok_or_else(malformed)? as usize;
            if dim == 0 || dim > 64 {
                return fail(ErrorCode::Malformed, "feature dimension out of range");
            }
            let read_cts = |n: usize,
                            r: &mut BodyReader<'_>|
             -> Result<Vec<Ciphertext>, (ErrorCode, String)> {
                (0..n)
                    .map(|_| read_ct(state, r.blob().ok_or_else(malformed)?))
                    .collect()
            };
            let mut weights = read_cts(dim, &mut r)?;
            let xs = read_cts(dim, &mut r)?;
            let y01 = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let slots = state.ctx.params().slots();
            if weights[0].limb_count() <= fhe_apps::helr_enc::LR_STEP_DEPTH {
                return fail(ErrorCode::Malformed, "not enough levels for a step");
            }
            let rlk = expand_key(state, sid, &session, KeyKind::Relin, keys)?;
            let gk = assemble_galois(state, sid, &session, &lr_fold_steps(slots), keys)?;
            encrypted_lr_step(
                &state.evaluator,
                &rlk,
                &gk,
                &mut weights,
                &xs,
                &y01,
                slots,
                learning_rate,
            );
            let mut out = crate::protocol::BodyWriter::new();
            for w in &weights {
                out.blob(&ser_ct(w));
            }
            Ok(out.0)
        }
        Opcode::RunProgram => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let pid = r.u64().ok_or_else(malformed)?;
            let sp = session
                .program(pid)
                .map_err(|c| (c, format!("program {pid} not uploaded to session {sid}")))?;
            let prog = &sp.program;
            // Inputs arrive in declaration order: ciphertext blobs, then
            // plaintext vectors, then matrix diagonals (declared offsets,
            // `slots` complex values each).
            let mut inputs = ExecInputs::default();
            for decl in &prog.ct_inputs {
                let ct = read_ct(state, r.blob().ok_or_else(malformed)?)?;
                inputs.cts.insert(decl.name.clone(), ct);
            }
            for decl in &prog.pt_inputs {
                let n = r.u32().ok_or_else(malformed)? as usize;
                if n > state.ctx.params().slots() {
                    return fail(ErrorCode::Malformed, "plaintext vector exceeds slot count");
                }
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    let re = r.f64().ok_or_else(malformed)?;
                    let im = r.f64().ok_or_else(malformed)?;
                    v.push(Complex::new(re, im));
                }
                inputs.pts.insert(decl.name.clone(), v);
            }
            for decl in &prog.matrices {
                let mut diagonals = BTreeMap::new();
                for &offset in &decl.offsets {
                    let mut diag = Vec::with_capacity(decl.slots);
                    for _ in 0..decl.slots {
                        let re = r.f64().ok_or_else(malformed)?;
                        let im = r.f64().ok_or_else(malformed)?;
                        diag.push(Complex::new(re, im));
                    }
                    diagonals.insert(offset, diag);
                }
                inputs.mats.insert(
                    decl.name.clone(),
                    LinearTransform::from_diagonals(diagonals, decl.slots),
                );
            }
            if !r.is_empty() {
                return fail(ErrorCode::Malformed, "trailing bytes after program inputs");
            }
            // The manifest names exactly the keys the program touches;
            // resolve them through the batch's pinned set first, the
            // shared cache second — same path as the scalar opcodes.
            let rlk = if sp.info.manifest.relin {
                Some(expand_key(state, sid, &session, KeyKind::Relin, keys)?)
            } else {
                None
            };
            let gk = assemble_galois(state, sid, &session, &sp.info.manifest.galois_steps, keys)?;
            let exec_keys = ExecKeys {
                relin: rlk.as_deref(),
                galois: Some(&gk),
            };
            let outs = execute_validated(
                &state.evaluator,
                &state.encoder,
                prog,
                &sp.info,
                &inputs,
                exec_keys,
            )
            .map_err(exec_error)?;
            let mut out = crate::protocol::BodyWriter::new();
            for (_name, ct) in &outs {
                out.blob(&ser_ct(ct));
            }
            Ok(out.0)
        }
        Opcode::Metrics => Ok(state
            .metrics
            .dump(&state.cache.stats(), state.ctx.kernel_backend().name())
            .into_bytes()),
        Opcode::TraceDump => match body.first().copied().unwrap_or(0) {
            0 => Ok(state.obs.chrome_trace_json().into_bytes()),
            1 => Ok(state.obs.slow_log().into_bytes()),
            m => fail(ErrorCode::Malformed, format!("unknown trace-dump mode {m}")),
        },
    }
}

fn malformed() -> (ErrorCode, String) {
    (ErrorCode::Malformed, "truncated request body".into())
}

/// Maps an executor failure onto the protocol's error codes: absent keys
/// surface as [`ErrorCode::MissingKey`] (upload and retry), everything
/// else is a client-side [`ErrorCode::Malformed`].
fn exec_error(e: ExecError) -> (ErrorCode, String) {
    let code = match e {
        ExecError::MissingRelinKey | ExecError::MissingGaloisKey(_) => ErrorCode::MissingKey,
        _ => ErrorCode::Malformed,
    };
    (code, e.to_string())
}

fn need_session(
    state: &ServerState,
    r: &mut BodyReader<'_>,
) -> Result<(u64, Arc<Session>), (ErrorCode, String)> {
    let sid = r.u64().ok_or_else(malformed)?;
    let session = state
        .sessions
        .get(sid)
        .map_err(|c| (c, format!("session {sid}")))?;
    Ok((sid, session))
}

fn read_ct(state: &ServerState, bytes: &[u8]) -> Result<Ciphertext, (ErrorCode, String)> {
    obs::time_stage(Stage::Decode, || {
        deserialize_ciphertext(&state.ctx, bytes).map_err(|e| (ErrorCode::Malformed, e.to_string()))
    })
}

/// Serializes a result ciphertext, attributing the time to the
/// executing request's serialize stage.
fn ser_ct(ct: &Ciphertext) -> Vec<u8> {
    obs::time_stage(Stage::Serialize, || serialize_ciphertext(ct))
}

/// Fetches one expanded key, consulting the batch's pinned set first and
/// falling back to the shared cache, resolving the compressed bytes from
/// the session store.
fn expand_key(
    state: &ServerState,
    sid: u64,
    session: &Session,
    kind: KeyKind,
    keys: Option<&BatchKeys>,
) -> Result<Arc<SwitchingKey>, (ErrorCode, String)> {
    if let Some(key) = keys.and_then(|k| k.get(kind)) {
        state
            .metrics
            .batch_expansions_avoided
            .fetch_add(1, Ordering::Relaxed);
        return Ok(key.clone());
    }
    let bytes = session
        .key_bytes(kind)
        .map_err(|c| (c, format!("{kind:?} for session {sid}")))?;
    obs::time_stage(Stage::Key, || {
        state.cache.get_or_expand(&state.ctx, sid, kind, &bytes)
    })
    .map_err(|c| (c, format!("{kind:?} failed to expand")))
}

/// Builds a per-request Galois key set for `steps` from the batch's
/// pinned expansions or cached shared expansions, failing with
/// `MissingKey` *before* any evaluator call can panic on an absent key.
fn assemble_galois(
    state: &ServerState,
    sid: u64,
    session: &Session,
    steps: &[i64],
    keys: Option<&BatchKeys>,
) -> Result<GaloisKeys, (ErrorCode, String)> {
    let mut gk = GaloisKeys::new();
    for &s in steps {
        if s == 0 {
            continue;
        }
        let element = state.ctx.rotation_element(s);
        if gk.get_shared(element).is_some() {
            continue;
        }
        let key = expand_key(state, sid, session, KeyKind::Galois(element), keys)
            .map_err(|(c, _)| (c, format!("rotation step {s} (element {element})")))?;
        gk.insert_shared(element, key);
    }
    Ok(gk)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the queue-depth leak: a batch dispatched into a
    /// dead worker channel (shutdown race) must retire every member job
    /// from the `serve_queue_depth` gauge, or depth/peak drift upward
    /// forever.
    #[test]
    fn dispatch_batch_retires_depth_when_workers_are_gone() {
        let metrics = Metrics::new();
        let backlog = AtomicU64::new(0);
        let (work, rx) = sync_channel::<WorkItem>(4);

        let mk_job = || {
            let (tx, _rx) = std::sync::mpsc::channel();
            Job {
                op: Opcode::Rotate,
                body: Vec::new(),
                deadline_start: Instant::now(),
                reply: tx,
                trace: None,
                #[cfg(feature = "chaos")]
                chaos: None,
            }
        };

        // Readers counted these at admission.
        let jobs: Vec<Job> = (0..3).map(|_| mk_job()).collect();
        for _ in &jobs {
            metrics.enqueued();
        }
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 3);

        // Live channel: depth stays until a worker pops and dequeues.
        dispatch_batch(&metrics, &work, &backlog, 7, KeyClass::Relin, jobs);
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 3);
        assert_eq!(backlog.load(Ordering::Relaxed), 1);
        match rx.recv().unwrap() {
            WorkItem::Batch { jobs, .. } => {
                for _ in &jobs {
                    metrics.dequeued();
                }
                backlog.fetch_sub(1, Ordering::Relaxed);
            }
            WorkItem::Single(_) => panic!("expected a batch"),
        }
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 0);

        // Dead channel: the dispatch itself must retire the jobs.
        drop(rx);
        let jobs: Vec<Job> = (0..3).map(|_| mk_job()).collect();
        for _ in &jobs {
            metrics.enqueued();
        }
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 3);
        dispatch_batch(&metrics, &work, &backlog, 7, KeyClass::Relin, jobs);
        assert_eq!(
            metrics.queue_depth.load(Ordering::Relaxed),
            0,
            "shutdown race leaked depth"
        );
        assert_eq!(backlog.load(Ordering::Relaxed), 0);
    }
}
