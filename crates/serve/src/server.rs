//! The server: a nonblocking acceptor feeding N independent shard
//! loops, each with its own session table, key-cache slice, key-reuse
//! batching scheduler, and bounded worker pool.
//!
//! Threading model (all `std::thread`, no async runtime):
//!
//! - The **acceptor** owns a nonblocking listener and deals fresh
//!   connections round-robin across the shard loops.
//! - Each **shard loop** drives all of its connections from one thread
//!   with readiness-based nonblocking I/O: buffer bytes as they arrive,
//!   parse at most one frame per connection per tick, enqueue the job on
//!   the shard's bounded [`sync_channel`] (a full queue is answered
//!   immediately with [`ErrorCode::Overloaded`] — backpressure, never
//!   buffering), then flush the reply when the worker delivers it. Each
//!   connection still sees strict request/response ordering. A parked
//!   loop sleeps on a condvar the workers ping after every completed
//!   item, so replies flush without polling latency.
//! - **Shard placement** is consistent hashing of the session id
//!   ([`crate::shard::shard_of`]): `Hello` mints an id that hashes to
//!   the shard that accepted the connection, and every keyed frame whose
//!   session lives elsewhere migrates its connection to the owning shard
//!   at a frame boundary. A tenant's compressed keys, expanded-key cache
//!   entries, batching groups, and programs therefore live on exactly
//!   one shard; each shard's [`KeyCache`] owns `1/N` of the global byte
//!   budget.
//! - The per-shard **scheduler** groups keyed jobs by
//!   `(session, KeyClass)` and dispatches a group as one
//!   `WorkItem::Batch` when it fills (`max_batch`), when its window
//!   expires (`max_delay`), or eagerly when the shard's pool is idle. A
//!   held job's deadline clock restarts at dispatch — the batching
//!   window is the scheduler's choice, not queue congestion.
//! - **Workers** pop work items, drop any job whose deadline passed
//!   while queued, and run ops under `catch_unwind` so a panic becomes a
//!   structured [`ErrorCode::Internal`] instead of a dead worker. A
//!   batch pins its whole expanded key-set in the shard's [`KeyCache`]
//!   first, executes its jobs back-to-back against the pinned `Arc`s,
//!   and shares one hoisted ModUp decomposition across rotations of the
//!   same ciphertext.
//!
//! Metrics and tracing stay global: one [`Metrics`] registry aggregates
//! across shards (the dump appends per-shard labeled families), and the
//! [`Observer`] stamps the owning shard into every request timeline.
//!
//! Shutdown is a graceful drain: the acceptor exits (closing the
//! listening port), each shard loop drains pending replies and flushes
//! them, the schedulers flush held groups, in-queue jobs still execute,
//! then every thread is joined.

use crate::batch::{
    peek_bsgs_steps, peek_program_id, peek_rotate_ct, peek_rotate_steps, peek_session, BatchConfig,
    KeyClass,
};
use crate::cache::{CacheStats, EvictionPolicy, KeyCache, KeyKind};
#[cfg(feature = "chaos")]
use crate::fault::{FaultDecision, FaultPlan};
use crate::metrics::{Metrics, ShardSnapshot};
use crate::obs::{self, FinishedTrace, ObsConfig, Observer, RequestTrace, Stage};
use crate::protocol::{
    frame_bytes, peek_frame, take_frame, BatchHint, BodyReader, ErrorCode, Frame, FrameStatus,
    Opcode, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::session::{Session, SessionManager, StoredProgram};
use ckks::hoisting::{apply_bsgs, bsgs_required_steps, rotate_hoisted, LinearTransform};
use ckks::serialize::{
    deserialize_ciphertext, deserialize_plaintext, deserialize_switching_key,
    galois_key_set_entries, serialize_ciphertext,
};
use ckks::{Ciphertext, CkksContext, Encoder, Evaluator, GaloisKeys, SwitchingKey};
use fhe_apps::{encrypted_lr_step, lr_fold_steps};
use fhe_math::cfft::Complex;
use fhe_program::program::{Instr, Program, ProgramEnv};
use fhe_program::{execute_validated, ExecError, ExecInputs, ExecKeys};
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Independent shard loops; sessions are placed by consistent
    /// hashing of the session id, and each shard owns its own session
    /// table, key-cache slice (`key_cache_budget / shards`), scheduler,
    /// and worker pool. The default reads `MAD_SERVE_SHARDS` (clamped to
    /// `1..=`[`crate::shard::MAX_SHARDS`], default 1).
    pub shards: usize,
    /// Worker threads executing FHE ops, **per shard**.
    pub workers: usize,
    /// Bounded queue length per shard; a full queue rejects with
    /// `Overloaded`.
    pub queue_capacity: usize,
    /// Global byte budget for expanded switching keys, split evenly
    /// across the per-shard [`KeyCache`]s.
    pub key_cache_budget: u64,
    /// Cache eviction policy.
    pub eviction: EvictionPolicy,
    /// Maximum time a request may wait in the queue before a worker
    /// starts it; exceeded requests answer `DeadlineExceeded`.
    pub request_deadline: Duration,
    /// Ceiling on a single frame.
    pub max_frame_bytes: u32,
    /// Key-reuse batching scheduler knobs (each shard runs its own
    /// scheduler). The default reads the `MAD_SERVE_BATCHING` /
    /// `MAD_SERVE_BATCH_SIZE` / `MAD_SERVE_BATCH_DELAY_MS` environment
    /// variables.
    pub batch: BatchConfig,
    /// Request-tracing knobs ([`crate::obs`]). The default reads the
    /// `MAD_SERVE_OBS` / `MAD_SERVE_TRACE_RING` / `MAD_SERVE_DEEP_EVERY`
    /// / `MAD_SERVE_SLOW_MS` environment variables.
    pub obs: ObsConfig,
    /// Deterministic fault schedule threaded through the shard loops
    /// and worker pools; `None` (the default) serves faithfully.
    /// Only present when built with the `chaos` feature, so the default
    /// build carries no injection branches.
    #[cfg(feature = "chaos")]
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: crate::shard::shards_from_env(),
            workers: 2,
            queue_capacity: 32,
            key_cache_budget: 64 << 20,
            eviction: EvictionPolicy::Lru,
            request_deadline: Duration::from_secs(30),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            batch: BatchConfig::from_env(),
            obs: ObsConfig::from_env(),
            #[cfg(feature = "chaos")]
            fault_plan: None,
        }
    }
}

/// State every shard sees: the crypto context, the global metrics and
/// tracing registries, and a window onto every shard's tenant-owning
/// structures (for aggregation — shards never execute against another
/// shard's slice).
pub(crate) struct SharedState {
    pub(crate) ctx: Arc<CkksContext>,
    pub(crate) evaluator: Evaluator,
    pub(crate) encoder: Encoder,
    pub(crate) metrics: Metrics,
    pub(crate) obs: Observer,
    /// Whether the batching scheduler is wired in (reported in Hello).
    pub(crate) batching: bool,
    /// Every shard's tenant-owning state, indexed by shard id.
    pub(crate) shards: Vec<ShardPublic>,
    #[cfg(feature = "chaos")]
    pub(crate) fault: Option<Arc<FaultPlan>>,
}

/// One shard's tenant-owning structures, visible to every thread for
/// metrics aggregation.
pub(crate) struct ShardPublic {
    pub(crate) sessions: Arc<SessionManager>,
    pub(crate) cache: Arc<KeyCache>,
    /// Requests this shard dispatched to its worker pool.
    pub(crate) requests: AtomicU64,
}

impl SharedState {
    /// Aggregated cache stats plus one snapshot per shard.
    fn shard_snapshots(&self) -> (CacheStats, Vec<ShardSnapshot>) {
        let mut agg = CacheStats::default();
        let mut snaps = Vec::with_capacity(self.shards.len());
        for (i, s) in self.shards.iter().enumerate() {
            let stats = s.cache.stats();
            agg.accumulate(&stats);
            snaps.push(ShardSnapshot {
                shard: i,
                requests: s.requests.load(Ordering::Relaxed),
                sessions: s.sessions.len() as u64,
                cache: stats,
                budget_bytes: s.cache.budget_bytes(),
            });
        }
        (agg, snaps)
    }

    /// The full metrics dump: global families over aggregated cache
    /// stats, then the per-shard labeled families.
    fn metrics_text(&self) -> String {
        let (agg, snaps) = self.shard_snapshots();
        self.metrics
            .dump_sharded(&agg, self.ctx.kernel_backend().name(), &snaps)
    }
}

/// One shard's view of the world: the shared state plus its own session
/// table and cache slice. `Deref` makes the shared fields read naturally
/// (`state.metrics`, `state.ctx`) while `state.sessions` / `state.cache`
/// resolve shard-locally — the handler code cannot accidentally touch
/// another shard's slice.
pub(crate) struct ServerState {
    pub(crate) shared: Arc<SharedState>,
    pub(crate) shard: usize,
    pub(crate) sessions: Arc<SessionManager>,
    pub(crate) cache: Arc<KeyCache>,
}

impl std::ops::Deref for ServerState {
    type Target = SharedState;
    fn deref(&self) -> &SharedState {
        &self.shared
    }
}

struct Job {
    op: Opcode,
    body: Vec<u8>,
    /// When this request's deadline clock started. The shard loop stamps
    /// it at enqueue; the scheduler re-stamps it at batch dispatch,
    /// because a hold inside the batching window is the server's own
    /// choice and must not be double-counted against the per-op
    /// deadline.
    deadline_start: Instant,
    reply: std::sync::mpsc::Sender<(u8, Vec<u8>)>,
    /// The request's always-on timeline; `None` when tracing is
    /// disabled. The shard loop keeps a second handle and finishes the
    /// trace after flushing the reply.
    trace: Option<Arc<RequestTrace>>,
    /// A worker-side fault drawn for this request by the chaos plan.
    #[cfg(feature = "chaos")]
    chaos: Option<FaultDecision>,
}

/// One unit of worker-pool work: a lone request, or a scheduler-formed
/// group sharing a session and key class.
enum WorkItem {
    Single(Job),
    Batch {
        sid: u64,
        class: KeyClass,
        jobs: Vec<Job>,
    },
}

/// Where the shard loop drops parsed jobs: keyed ops into the
/// scheduler's admission channel (when batching is on), everything else
/// straight to the worker queue. `backlog` counts work items sent to the
/// workers but not yet finished — the scheduler's "is the pool idle"
/// signal.
struct JobSinks {
    direct: SyncSender<WorkItem>,
    batched: Option<SyncSender<Job>>,
    backlog: Arc<AtomicU64>,
}

impl JobSinks {
    /// Routes one job; `Err` mirrors the sync-channel try_send contract
    /// (`Full` → Overloaded reply, `Disconnected` → drop connection).
    fn dispatch(&self, job: Job) -> Result<(), TrySendError<()>> {
        fn strip<T>(e: TrySendError<T>) -> TrySendError<()> {
            match e {
                TrySendError::Full(_) => TrySendError::Full(()),
                TrySendError::Disconnected(_) => TrySendError::Disconnected(()),
            }
        }
        let batchable = KeyClass::of(job.op).is_some() && peek_session(&job.body).is_some();
        match &self.batched {
            Some(tx) if batchable => tx.try_send(job).map_err(strip),
            _ => {
                self.backlog.fetch_add(1, Ordering::Relaxed);
                let r = self.direct.try_send(WorkItem::Single(job));
                if r.is_err() {
                    self.backlog.fetch_sub(1, Ordering::Relaxed);
                }
                r.map_err(strip)
            }
        }
    }
}

/// A connection in flight between threads: the acceptor hands fresh
/// sockets to a shard, and a shard migrates a connection (with any bytes
/// it already buffered) to the shard that owns its session.
struct RoutedConn {
    stream: TcpStream,
    read_buf: Vec<u8>,
}

/// The wake-up channel between a shard's workers and its loop: workers
/// bump the sequence number after every completed work item, and the
/// loop sleeps on the condvar only while the sequence is unchanged —
/// a reply can never slip between "checked the channel" and "went to
/// sleep".
#[derive(Default)]
struct ReplySignal {
    seq: Mutex<u64>,
    cv: Condvar,
}

impl ReplySignal {
    fn notify(&self) {
        *self.seq.lock().expect("signal poisoned") += 1;
        self.cv.notify_all();
    }

    /// Sleeps until the sequence moves past `last_seen` or `timeout`
    /// elapses, then records the current sequence in `last_seen`.
    fn wait_if_unchanged(&self, last_seen: &mut u64, timeout: Duration) {
        let mut seq = self.seq.lock().expect("signal poisoned");
        if *seq == *last_seen {
            seq = self
                .cv
                .wait_timeout(seq, timeout)
                .expect("signal poisoned")
                .0;
        }
        *last_seen = *seq;
    }
}

/// A reply the shard loop is waiting on from the worker pool.
struct PendingReply {
    rx: std::sync::mpsc::Receiver<(u8, Vec<u8>)>,
    trace: Option<Arc<RequestTrace>>,
    /// A write-abort fault drawn for this request, applied when the
    /// reply comes back.
    #[cfg(feature = "chaos")]
    write_fault: Option<FaultDecision>,
}

/// Per-connection state machine driven by the owning shard loop.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// When the reply entered the write buffer — the write stage runs
    /// from reply pickup to flush completion.
    write_started: Option<Instant>,
    pending: Option<PendingReply>,
    /// A trace to finish (with its status) once the reply flushes.
    finishing: Option<(Arc<RequestTrace>, u8)>,
    /// Close once the write buffer drains (oversize frames, torn-write
    /// faults).
    close_after_flush: bool,
    /// The peer half-closed its sending side; drain what's owed, then
    /// drop.
    peer_closed: bool,
}

impl Conn {
    fn new(routed: RoutedConn) -> Self {
        Conn {
            stream: routed.stream,
            read_buf: routed.read_buf,
            write_buf: Vec::new(),
            write_pos: 0,
            write_started: None,
            pending: None,
            finishing: None,
            close_after_flush: false,
            peer_closed: false,
        }
    }
}

/// What one tick of [`step_conn`] decided about a connection.
enum ConnVerdict {
    /// Still alive; `progressed` is whether anything moved this tick.
    Keep { progressed: bool },
    /// Close the socket.
    Drop,
    /// Migrate the connection to the shard owning its session.
    Route(usize),
}

/// One shard's runtime threads and queues, torn down in
/// [`Server::shutdown`].
struct ShardRuntime {
    loop_handle: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    queue: Option<SyncSender<WorkItem>>,
    batch_queue: Option<SyncSender<Job>>,
}

/// A running server; dropping without [`Server::shutdown`] aborts
/// non-gracefully (threads are detached), so call `shutdown`.
pub struct Server {
    addr: SocketAddr,
    state: Arc<SharedState>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    shards: Vec<ShardRuntime>,
}

impl Server {
    /// Binds a loopback listener on an OS-assigned port and starts the
    /// acceptor and the per-shard loops, schedulers, and worker pools.
    ///
    /// # Errors
    ///
    /// Propagates listener-creation I/O errors.
    pub fn start(ctx: Arc<CkksContext>, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shard_count = config.shards.clamp(1, crate::shard::MAX_SHARDS);
        let per_shard_budget = config.key_cache_budget / shard_count as u64;
        let shard_public: Vec<ShardPublic> = (0..shard_count)
            .map(|i| ShardPublic {
                sessions: Arc::new(SessionManager::new_for_shard(i, shard_count)),
                cache: Arc::new(KeyCache::new(per_shard_budget, config.eviction)),
                requests: AtomicU64::new(0),
            })
            .collect();
        let shared = Arc::new(SharedState {
            evaluator: Evaluator::new(ctx.clone()),
            encoder: Encoder::new(ctx.clone()),
            ctx,
            metrics: Metrics::new(),
            obs: Observer::new(config.obs.clone()),
            batching: config.batch.enabled,
            shards: shard_public,
            #[cfg(feature = "chaos")]
            fault: config.fault_plan.clone(),
        });
        shared
            .metrics
            .batching_enabled
            .store(u64::from(config.batch.enabled), Ordering::Relaxed);
        let shutdown = Arc::new(AtomicBool::new(false));

        // The connection-migration fabric: every shard (and the
        // acceptor) can hand a connection to any shard.
        let mut conn_txs: Vec<Sender<RoutedConn>> = Vec::with_capacity(shard_count);
        let mut conn_rxs: Vec<Receiver<RoutedConn>> = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (tx, rx) = std::sync::mpsc::channel();
            conn_txs.push(tx);
            conn_rxs.push(rx);
        }

        let mut shards = Vec::with_capacity(shard_count);
        for (i, conn_rx) in conn_rxs.into_iter().enumerate() {
            let public = &shared.shards[i];
            let state = Arc::new(ServerState {
                shared: shared.clone(),
                shard: i,
                sessions: public.sessions.clone(),
                cache: public.cache.clone(),
            });
            let backlog = Arc::new(AtomicU64::new(0));
            let signal = Arc::new(ReplySignal::default());
            let (work_tx, work_rx) = sync_channel::<WorkItem>(config.queue_capacity);
            let work_rx = Arc::new(Mutex::new(work_rx));

            let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
                .map(|w| {
                    let state = state.clone();
                    let rx = work_rx.clone();
                    let backlog = backlog.clone();
                    let signal = signal.clone();
                    let deadline = config.request_deadline;
                    std::thread::Builder::new()
                        .name(format!("serve-w{i}-{w}"))
                        .spawn(move || worker_loop(&state, &rx, &backlog, deadline, &signal))
                        .expect("spawn worker")
                })
                .collect();

            let (batch_tx, scheduler) = if config.batch.enabled {
                let (batch_tx, batch_rx) = sync_channel::<Job>(config.queue_capacity);
                let state = state.clone();
                let work_tx = work_tx.clone();
                let backlog = backlog.clone();
                let batch_cfg = config.batch.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("serve-sched-{i}"))
                    .spawn(move || {
                        scheduler_loop(&state, &batch_rx, &work_tx, &backlog, &batch_cfg)
                    })
                    .expect("spawn scheduler");
                (Some(batch_tx), Some(handle))
            } else {
                (None, None)
            };

            let loop_handle = {
                let state = state.clone();
                let shutdown = shutdown.clone();
                let sinks = JobSinks {
                    direct: work_tx.clone(),
                    batched: batch_tx.clone(),
                    backlog,
                };
                let conn_txs = conn_txs.clone();
                let signal = signal.clone();
                let max_frame = config.max_frame_bytes;
                std::thread::Builder::new()
                    .name(format!("serve-shard-{i}"))
                    .spawn(move || {
                        shard_loop(
                            &state, &shutdown, &sinks, &conn_rx, &conn_txs, &signal, max_frame,
                        );
                    })
                    .expect("spawn shard loop")
            };

            shards.push(ShardRuntime {
                loop_handle: Some(loop_handle),
                scheduler,
                workers,
                queue: Some(work_tx),
                batch_queue: batch_tx,
            });
        }

        let acceptor = {
            let shared = shared.clone();
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || {
                    let mut next = 0usize;
                    while !shutdown.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                shared
                                    .metrics
                                    .connections_total
                                    .fetch_add(1, Ordering::Relaxed);
                                let routed = RoutedConn {
                                    stream,
                                    read_buf: Vec::new(),
                                };
                                let _ = conn_txs[next % conn_txs.len()].send(routed);
                                next = next.wrapping_add(1);
                            }
                            // Nothing to accept (or a transient accept
                            // error): nap and poll the shutdown flag.
                            Err(_) => std::thread::sleep(Duration::from_millis(2)),
                        }
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr,
            state: shared,
            shutdown,
            acceptor: Some(acceptor),
            shards,
        })
    }

    /// The bound address to hand to [`crate::client::Client::connect`].
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The number of shard loops this server runs.
    pub fn shard_count(&self) -> usize {
        self.state.shards.len()
    }

    /// Key-cache counters summed across every shard's slice (also part
    /// of the metrics dump).
    pub fn cache_stats(&self) -> CacheStats {
        self.state.shard_snapshots().0
    }

    /// Asserts every shard's key-cache invariants (byte ledger, stats
    /// mirror, per-shard budget, hit/miss partition of the lookup
    /// count), then cross-checks the aggregated ledger, and returns the
    /// summed snapshot. Panics on violation — used by the chaos and
    /// stress suites, safe to call on a live server.
    pub fn assert_cache_consistent(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for shard in &self.state.shards {
            agg.accumulate(&shard.cache.check_invariants());
        }
        assert_eq!(
            agg.hits + agg.misses,
            agg.accesses,
            "cross-shard lookup ledger out of balance"
        );
        agg
    }

    /// The current metrics dump, server-side (the `Metrics` opcode
    /// returns the same text over the wire): global families over
    /// aggregated cache stats, then per-shard labeled families.
    pub fn metrics_dump(&self) -> String {
        self.state.metrics_text()
    }

    /// The name of the kernel backend the serving context dispatches its
    /// hot kernels to (also reported in the `Hello` reply and the metrics
    /// dump).
    pub fn kernel_backend_name(&self) -> &'static str {
        self.state.ctx.kernel_backend().name()
    }

    /// Recent finished request timelines, oldest first (the `TraceDump`
    /// opcode renders the same data as Chrome trace-event JSON).
    pub fn recent_traces(&self) -> Vec<FinishedTrace> {
        self.state.obs.recent()
    }

    /// The slowest request observed since the server started, retained
    /// even after it ages out of the trace ring.
    pub fn slowest_trace(&self) -> Option<FinishedTrace> {
        self.state.obs.slowest()
    }

    /// Chrome trace-event JSON of the retained request timelines —
    /// server-side twin of the `TraceDump` opcode, loadable in Perfetto.
    pub fn trace_json(&self) -> String {
        self.state.obs.chrome_trace_json()
    }

    /// The structured slow-request log (requests over the configured
    /// threshold, annotated with their dominant stage), oldest first.
    pub fn slow_log(&self) -> String {
        self.state.obs.slow_log()
    }

    /// Graceful drain: stop accepting (the listening port closes with
    /// the acceptor), let every shard drain pending replies and flush
    /// them, let queued requests finish, then join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The acceptor wakes on its poll tick and exits, dropping the
        // listener — new connects are refused from here on.
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Shard loops drain: each exits once its connections are gone
        // (idle ones close immediately; ones owed a reply first collect
        // and flush it). Workers are still up, so those replies arrive.
        for shard in &mut self.shards {
            if let Some(h) = shard.loop_handle.take() {
                let _ = h.join();
            }
        }
        for shard in &mut self.shards {
            // The loop's sink clones are gone. Dropping ours disconnects
            // the scheduler's admission channel; it flushes held groups
            // to the workers and exits.
            drop(shard.batch_queue.take());
            if let Some(h) = shard.scheduler.take() {
                let _ = h.join();
            }
            // Now the last worker-queue sender goes away; workers drain
            // the remaining items and exit.
            drop(shard.queue.take());
            for h in std::mem::take(&mut shard.workers) {
                let _ = h.join();
            }
        }
    }
}

/// One shard's event loop: adopt incoming connections, drive each one a
/// step, migrate mis-placed connections, and park on the reply condvar
/// when nothing moved.
fn shard_loop(
    state: &Arc<ServerState>,
    shutdown: &AtomicBool,
    sinks: &JobSinks,
    conn_rx: &Receiver<RoutedConn>,
    conn_txs: &[Sender<RoutedConn>],
    signal: &ReplySignal,
    max_frame: u32,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut last_seq = 0u64;
    let mut last_active = Instant::now();
    loop {
        let shutting_down = shutdown.load(Ordering::SeqCst);
        while let Ok(routed) = conn_rx.try_recv() {
            let _ = routed.stream.set_nonblocking(true);
            let _ = routed.stream.set_nodelay(true);
            conns.push(Conn::new(routed));
        }
        if shutting_down && conns.is_empty() {
            break;
        }
        let mut progressed = false;
        let mut any_pending = false;
        let mut i = 0;
        while i < conns.len() {
            match step_conn(state, sinks, &mut conns[i], shutting_down, max_frame) {
                ConnVerdict::Keep { progressed: p } => {
                    progressed |= p;
                    any_pending |= conns[i].pending.is_some() || !conns[i].write_buf.is_empty();
                    i += 1;
                }
                ConnVerdict::Drop => {
                    conns.swap_remove(i);
                    progressed = true;
                }
                ConnVerdict::Route(target) => {
                    let conn = conns.swap_remove(i);
                    // A failed send means the target loop is gone
                    // (shutdown race); the connection drops with it.
                    let _ = conn_txs[target].send(RoutedConn {
                        stream: conn.stream,
                        read_buf: conn.read_buf,
                    });
                    progressed = true;
                }
            }
        }
        if progressed {
            last_active = Instant::now();
            continue;
        }
        // Nothing moved. With a reply in flight the condvar ping is the
        // real wake signal and the timeout only a fallback; right after
        // activity, stay hot for the closed-loop turnaround; otherwise
        // settle into a lazy poll for new connections.
        let timeout = if any_pending {
            Duration::from_micros(500)
        } else if last_active.elapsed() < Duration::from_millis(5) {
            Duration::from_micros(50)
        } else {
            Duration::from_millis(2)
        };
        signal.wait_if_unchanged(&mut last_seq, timeout);
    }
}

/// Advances one connection as far as it will go without blocking:
/// collect a finished reply, flush the write buffer, then (only when the
/// reply pipeline is empty) read and act on the next frame.
fn step_conn(
    state: &ServerState,
    sinks: &JobSinks,
    conn: &mut Conn,
    shutting_down: bool,
    max_frame: u32,
) -> ConnVerdict {
    let mut progressed = false;

    // 1. Reply pickup: the worker finished, adopt its reply into the
    //    write buffer.
    if let Some(pending) = &conn.pending {
        use std::sync::mpsc::TryRecvError;
        match pending.rx.try_recv() {
            Ok((status, body)) => {
                let pending = conn.pending.take().expect("just checked");
                adopt_reply(state, conn, pending, status, body);
                progressed = true;
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => {
                let pending = conn.pending.take().expect("just checked");
                adopt_reply(
                    state,
                    conn,
                    pending,
                    ErrorCode::Internal as u8,
                    b"worker dropped the request".to_vec(),
                );
                progressed = true;
            }
        }
    }

    // 2. Flush whatever the socket will take.
    while conn.write_pos < conn.write_buf.len() {
        match (&conn.stream).write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return write_failed(state, conn),
            Ok(n) => {
                conn.write_pos += n;
                progressed = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return ConnVerdict::Keep { progressed };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return write_failed(state, conn),
        }
    }
    if !conn.write_buf.is_empty() {
        // Fully flushed: the write stage ends here, and only now is the
        // request's timeline complete.
        conn.write_buf.clear();
        conn.write_pos = 0;
        if let Some((trace, status)) = conn.finishing.take() {
            if let Some(start) = conn.write_started.take() {
                obs::add_stage(&trace, Stage::Write, start.elapsed());
            }
            state.obs.finish(&state.metrics, &trace, status);
        }
        conn.write_started = None;
        if conn.close_after_flush {
            return ConnVerdict::Drop;
        }
        progressed = true;
    }

    // 3. Strict request/response order: no new frame while a reply is
    //    owed.
    if conn.pending.is_some() {
        return ConnVerdict::Keep { progressed };
    }
    if shutting_down {
        return ConnVerdict::Drop;
    }

    // 4. Pull in ready bytes, but only while we still need a frame —
    //    never buffer ahead of the one-frame-per-tick parse.
    if !conn.peer_closed
        && matches!(
            peek_frame(&conn.read_buf, max_frame),
            FrameStatus::Incomplete
        )
    {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match (&conn.stream).read(&mut buf) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&buf[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return ConnVerdict::Drop,
            }
        }
    }

    // 5. Act on the frame boundary.
    match peek_frame(&conn.read_buf, max_frame) {
        FrameStatus::Incomplete => {
            if conn.peer_closed {
                // Clean EOF or a torn partial frame: either way the
                // conversation is over.
                return ConnVerdict::Drop;
            }
            ConnVerdict::Keep { progressed }
        }
        FrameStatus::Corrupt => ConnVerdict::Drop,
        FrameStatus::TooLarge(len) => {
            // The unread body leaves the stream out of sync: answer,
            // then drop the connection once the reply flushes.
            let msg = format!("frame of {len} bytes exceeds limit {max_frame}");
            queue_reply(
                state,
                conn,
                ErrorCode::FrameTooLarge as u8,
                msg.into_bytes(),
            );
            conn.close_after_flush = true;
            ConnVerdict::Keep { progressed: true }
        }
        FrameStatus::Ready { .. } => {
            // Frame boundaries are the only safe migration points: no
            // reply owed, nothing half-written, nothing half-read beyond
            // buffered bytes that travel with the connection.
            if let Some(target) = route_target(state, &conn.read_buf) {
                return ConnVerdict::Route(target);
            }
            let frame = take_frame(&mut conn.read_buf);
            process_frame(state, sinks, conn, frame)
        }
    }
}

/// A reply write failed mid-flush: close the books on the trace exactly
/// like a successful write would (the reply *was* produced), then drop.
fn write_failed(state: &ServerState, conn: &mut Conn) -> ConnVerdict {
    if let Some((trace, status)) = conn.finishing.take() {
        if let Some(start) = conn.write_started.take() {
            obs::add_stage(&trace, Stage::Write, start.elapsed());
        }
        state.obs.finish(&state.metrics, &trace, status);
    }
    ConnVerdict::Drop
}

/// Queues a locally-generated reply frame (protocol errors, overload
/// pushback) for flushing. Error and byte accounting happen here — at
/// queue time, mirroring the blocking server which counted before the
/// write.
fn queue_reply(state: &ServerState, conn: &mut Conn, status: u8, body: Vec<u8>) {
    if status != 0 {
        state.metrics.errors_total.fetch_add(1, Ordering::Relaxed);
    }
    state
        .metrics
        .bytes_written
        .fetch_add(6 + body.len() as u64, Ordering::Relaxed);
    conn.write_buf = frame_bytes(status, &body);
    conn.write_pos = 0;
}

/// Adopts a worker reply into the connection's write buffer, arming the
/// write-stage clock and the trace hand-off (or the torn-write fault,
/// which abandons the trace — a reply that never made it is not timeline
/// data).
fn adopt_reply(
    state: &ServerState,
    conn: &mut Conn,
    pending: PendingReply,
    status: u8,
    body: Vec<u8>,
) {
    #[cfg(feature = "chaos")]
    if let Some(FaultDecision::WriteAbort { keep }) = pending.write_fault {
        // Torn frame: a strict prefix of the real response, then the
        // connection drops. No error/byte accounting — the blocking
        // server's abort path skipped its `respond` helper entirely.
        let bytes = frame_bytes(status, &body);
        let keep = keep.min(bytes.len().saturating_sub(1));
        conn.write_buf = bytes[..keep].to_vec();
        conn.write_pos = 0;
        conn.close_after_flush = true;
        return;
    }
    queue_reply(state, conn, status, body);
    conn.write_started = Some(Instant::now());
    if let Some(trace) = pending.trace {
        conn.finishing = Some((trace, status));
    }
}

/// Decides whether the buffered (complete) frame belongs to another
/// shard: keyed ops carry their session id in the first 8 body bytes,
/// and the id's consistent hash names the owner. Session-less ops
/// (Hello, Metrics, TraceDump) and malformed-looking frames stay local —
/// the local handler produces the correct structured error.
fn route_target(state: &ServerState, buf: &[u8]) -> Option<usize> {
    if state.shards.len() <= 1 {
        return None;
    }
    if buf[4] != PROTOCOL_VERSION {
        return None;
    }
    let op = Opcode::from_u8(buf[5])?;
    if matches!(op, Opcode::Hello | Opcode::Metrics | Opcode::TraceDump) {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("peeked Ready")) as usize;
    if len < 10 {
        // Body shorter than a session id: rejected locally as malformed.
        return None;
    }
    let sid = u64::from_le_bytes(buf[6..14].try_into().expect("length checked"));
    let target = crate::shard::shard_of(sid, state.shards.len());
    (target != state.shard).then_some(target)
}

/// Parses and dispatches one frame on the owning shard: protocol errors
/// answer locally, chaos draws exactly one decision, everything else
/// becomes a job for this shard's scheduler or worker queue.
fn process_frame(
    state: &ServerState,
    sinks: &JobSinks,
    conn: &mut Conn,
    frame: Frame,
) -> ConnVerdict {
    state
        .metrics
        .bytes_read
        .fetch_add(6 + frame.body.len() as u64, Ordering::Relaxed);
    if frame.version != PROTOCOL_VERSION {
        let msg = format!("version {} unsupported", frame.version);
        queue_reply(
            state,
            conn,
            ErrorCode::UnsupportedVersion as u8,
            msg.into_bytes(),
        );
        return ConnVerdict::Keep { progressed: true };
    }
    let Some(op) = Opcode::from_u8(frame.tag) else {
        let msg = format!("opcode {:#04x}", frame.tag);
        queue_reply(
            state,
            conn,
            ErrorCode::UnknownOpcode as u8,
            msg.into_bytes(),
        );
        return ConnVerdict::Keep { progressed: true };
    };
    // Chaos: exactly one plan decision per parsed frame, drawn on the
    // owning shard (routing happens before the frame is "read").
    // Loop-side faults act right here; worker-side faults ride on the
    // job; write aborts fire when the reply comes back.
    #[cfg(feature = "chaos")]
    let mut worker_fault = None;
    #[cfg(feature = "chaos")]
    let mut write_fault = None;
    #[cfg(feature = "chaos")]
    if let Some(plan) = &state.fault {
        if let Some(fault) = plan.decide(op) {
            state
                .metrics
                .faults_injected
                .fetch_add(1, Ordering::Relaxed);
            match fault {
                // A failed socket read: the connection dies with no
                // reply at all.
                FaultDecision::ReadError => return ConnVerdict::Drop,
                // Synthetic admission-control pushback.
                FaultDecision::Overloaded => {
                    state
                        .metrics
                        .rejected_overload
                        .fetch_add(1, Ordering::Relaxed);
                    queue_reply(
                        state,
                        conn,
                        ErrorCode::Overloaded as u8,
                        b"injected overload, retry later".to_vec(),
                    );
                    return ConnVerdict::Keep { progressed: true };
                }
                FaultDecision::WriteAbort { .. } => write_fault = Some(fault),
                other => worker_fault = Some(other),
            }
        }
    }
    let (reply_tx, reply_rx) = std::sync::mpsc::channel();
    let trace = state.obs.begin(op, state.shard as u32);
    let job = Job {
        op,
        body: frame.body,
        deadline_start: Instant::now(),
        reply: reply_tx,
        trace: trace.clone(),
        #[cfg(feature = "chaos")]
        chaos: worker_fault,
    };
    // Count before sending: a worker may pop (and decrement) the
    // instant `try_send` returns.
    state.metrics.enqueued();
    if let Some(t) = &trace {
        t.mark_enqueued();
    }
    match sinks.dispatch(job) {
        Ok(()) => {
            state.shards[state.shard]
                .requests
                .fetch_add(1, Ordering::Relaxed);
            conn.pending = Some(PendingReply {
                rx: reply_rx,
                trace,
                #[cfg(feature = "chaos")]
                write_fault,
            });
            ConnVerdict::Keep { progressed: true }
        }
        Err(TrySendError::Full(())) => {
            state.metrics.retracted();
            state
                .metrics
                .rejected_overload
                .fetch_add(1, Ordering::Relaxed);
            queue_reply(
                state,
                conn,
                ErrorCode::Overloaded as u8,
                b"queue full, retry later".to_vec(),
            );
            ConnVerdict::Keep { progressed: true }
        }
        Err(TrySendError::Disconnected(())) => {
            state.metrics.retracted();
            ConnVerdict::Drop
        }
    }
}

fn worker_loop(
    state: &ServerState,
    rx: &Arc<Mutex<Receiver<WorkItem>>>,
    backlog: &AtomicU64,
    deadline: Duration,
    signal: &ReplySignal,
) {
    loop {
        let item = {
            let rx = rx.lock().expect("queue poisoned");
            rx.recv()
        };
        let Ok(item) = item else { break };
        match item {
            WorkItem::Single(job) => {
                state.metrics.dequeued();
                if let Some(t) = &job.trace {
                    t.mark_picked();
                }
                if admit_job(state, &job, deadline) {
                    execute_job(state, job, None);
                }
            }
            WorkItem::Batch { sid, class, jobs } => run_batch(state, sid, class, jobs, deadline),
        }
        // Decremented after execution, not at pop: backlog == 0 means the
        // pool is truly idle, which is the scheduler's eager-dispatch
        // signal.
        backlog.fetch_sub(1, Ordering::Relaxed);
        // Wake the shard loop: a reply (or several, for a batch) is
        // ready for pickup.
        signal.notify();
    }
}

/// Per-job admission: apply worker-side chaos faults, then check the
/// deadline. Returns `false` (after replying `DeadlineExceeded`) if the
/// job must not run.
fn admit_job(state: &ServerState, job: &Job, deadline: Duration) -> bool {
    #[cfg(feature = "chaos")]
    if let Some(fault) = job.chaos {
        match fault {
            // Slept *before* the deadline check so injected latency
            // counts against the request deadline exactly like real
            // queueing delay.
            FaultDecision::Delay(d) => std::thread::sleep(d),
            FaultDecision::EvictionStorm => {
                state.cache.evict_all();
            }
            FaultDecision::SessionReset => {
                state.sessions.close_all();
                state.cache.evict_all();
            }
            // WorkerPanic fires inside catch_unwind during execution;
            // loop-side faults never reach the queue.
            _ => {}
        }
    }
    if job.deadline_start.elapsed() > deadline {
        state
            .metrics
            .rejected_deadline
            .fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send((
            ErrorCode::DeadlineExceeded as u8,
            format!("queued longer than {deadline:?}").into_bytes(),
        ));
        return false;
    }
    true
}

/// Runs one job to completion (chaos/deadline already applied) and
/// delivers its reply.
fn execute_job(state: &ServerState, job: Job, keys: Option<&BatchKeys>) {
    let start = Instant::now();
    let result = {
        // Guard scope: exec accounting and the deep-trace bridge close
        // before the reply is sent, so the shard loop can never finish
        // the trace while the worker is still writing to it.
        let _exec = job.trace.as_ref().map(|t| state.obs.enter_exec(t));
        catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "chaos")]
            if matches!(job.chaos, Some(FaultDecision::WorkerPanic)) {
                panic!("injected chaos panic");
            }
            handle(state, job.op, &job.body, keys)
        }))
    };
    state.metrics.latency(job.op).observe(start.elapsed());
    let (status, body) = match result {
        Ok(Ok(body)) => (0u8, body),
        Ok(Err((code, msg))) => (code as u8, msg.into_bytes()),
        Err(_) => (ErrorCode::Internal as u8, b"operation panicked".to_vec()),
    };
    let _ = job.reply.send((status, body));
}

/// The expanded keys a batch pinned up front, consulted by the handler
/// before it ever touches the shard's cache. Every hit here is a cache
/// round-trip (and, under budget pressure, a potential re-expansion)
/// avoided.
#[derive(Default)]
struct BatchKeys {
    map: HashMap<KeyKind, Arc<SwitchingKey>>,
}

impl BatchKeys {
    fn get(&self, kind: KeyKind) -> Option<&Arc<SwitchingKey>> {
        self.map.get(&kind)
    }
}

/// Executes a scheduler-formed batch: pin the union key-set, run the
/// jobs back-to-back against the pinned expansions (rotations of the
/// same ciphertext jointly, sharing one hoisted ModUp decomposition),
/// then unpin.
fn run_batch(state: &ServerState, sid: u64, class: KeyClass, jobs: Vec<Job>, deadline: Duration) {
    state.metrics.batches_total.fetch_add(1, Ordering::Relaxed);
    state
        .metrics
        .batch_jobs_total
        .fetch_add(jobs.len() as u64, Ordering::Relaxed);
    state.metrics.batch_size.observe(jobs.len() as u64);

    let mut runnable = Vec::with_capacity(jobs.len());
    for job in jobs {
        state.metrics.dequeued();
        if let Some(t) = &job.trace {
            t.mark_picked();
        }
        if admit_job(state, &job, deadline) {
            runnable.push(job);
        }
    }
    if runnable.is_empty() {
        return;
    }
    // A dead session (closed, or chaos-reset while queued) fails every
    // job through the ordinary per-job path, structured errors included.
    let Ok(session) = state.sessions.get(sid) else {
        for job in runnable {
            execute_job(state, job, None);
        }
        return;
    };

    // Pin the union of the batch's key requirements. Peeks that fail on
    // malformed bodies contribute nothing; those jobs error per-job.
    let slots = state.ctx.params().slots();
    let mut kinds: Vec<KeyKind> = Vec::new();
    let want = |kinds: &mut Vec<KeyKind>, k: KeyKind| {
        if !kinds.contains(&k) {
            kinds.push(k);
        }
    };
    for job in &runnable {
        match job.op {
            Opcode::Mult => want(&mut kinds, KeyKind::Relin),
            Opcode::Rotate => {
                if let Some(s) = peek_rotate_steps(&job.body) {
                    if s != 0 {
                        want(&mut kinds, KeyKind::Galois(state.ctx.rotation_element(s)));
                    }
                }
            }
            Opcode::Bsgs => {
                for s in peek_bsgs_steps(&job.body, slots).unwrap_or_default() {
                    want(&mut kinds, KeyKind::Galois(state.ctx.rotation_element(s)));
                }
            }
            Opcode::HelrStep => {
                want(&mut kinds, KeyKind::Relin);
                for s in lr_fold_steps(slots) {
                    if s != 0 {
                        want(&mut kinds, KeyKind::Galois(state.ctx.rotation_element(s)));
                    }
                }
            }
            // The program's own key manifest names the exact pins — the
            // opcode's static RelinGalois class is only the grouping key.
            Opcode::RunProgram => {
                if let Some(sp) =
                    peek_program_id(&job.body).and_then(|pid| session.program(pid).ok())
                {
                    if sp.info.manifest.relin {
                        want(&mut kinds, KeyKind::Relin);
                    }
                    for &s in &sp.info.manifest.galois_steps {
                        if s != 0 {
                            want(&mut kinds, KeyKind::Galois(state.ctx.rotation_element(s)));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    let mut keys = BatchKeys::default();
    let mut pinned: Vec<KeyKind> = Vec::new();
    let pin_start = Instant::now();
    for kind in kinds {
        // A missing or corrupt key is a per-job error, surfaced with the
        // right code when the job executes; the pin phase just skips it.
        let Ok(bytes) = session.key_bytes(kind) else {
            continue;
        };
        if let Ok(key) = state
            .cache
            .get_or_expand_pinned(&state.ctx, sid, kind, &bytes)
        {
            keys.map.insert(kind, key);
            pinned.push(kind);
            state
                .metrics
                .batch_keys_pinned
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    // Every batch member waited out the shared pin phase in wall time,
    // so each job's key stage carries the full phase duration.
    let pin_elapsed = pin_start.elapsed();
    if !pin_elapsed.is_zero() {
        for job in &runnable {
            if let Some(t) = &job.trace {
                obs::add_stage(t, Stage::Key, pin_elapsed);
            }
        }
    }

    if class == KeyClass::Galois {
        run_galois_batch(state, runnable, &keys);
    } else {
        for job in runnable {
            execute_job(state, job, Some(&keys));
        }
    }

    for kind in pinned {
        state.cache.unpin(sid, kind);
    }
}

/// Executes a Galois-class batch, folding rotations of bit-identical
/// ciphertexts into one `rotate_hoisted` call so the ModUp decomposition
/// of `c1` is computed once per distinct ciphertext instead of once per
/// request. Jobs that cannot join a group (Bsgs, rotate-by-zero,
/// malformed bodies, missing keys, chaos-panic carriers) run through the
/// ordinary per-job path — still against the batch's pinned keys.
fn run_galois_batch(state: &ServerState, runnable: Vec<Job>, keys: &BatchKeys) {
    // Group joint-eligible rotations by ciphertext bytes.
    let eligible = |job: &Job| -> bool {
        #[cfg(feature = "chaos")]
        if matches!(job.chaos, Some(FaultDecision::WorkerPanic)) {
            return false;
        }
        job.op == Opcode::Rotate
            && peek_rotate_ct(&job.body).is_some()
            && peek_rotate_steps(&job.body).is_some_and(|s| {
                s != 0
                    && keys
                        .get(KeyKind::Galois(state.ctx.rotation_element(s)))
                        .is_some()
            })
    };
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, job) in runnable.iter().enumerate() {
        if !eligible(job) {
            continue;
        }
        let ct = peek_rotate_ct(&job.body).expect("eligible");
        match groups
            .iter_mut()
            .find(|g| peek_rotate_ct(&runnable[g[0]].body) == Some(ct))
        {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    let joint: Vec<Vec<usize>> = groups.into_iter().filter(|g| g.len() >= 2).collect();
    let in_joint: Vec<bool> = {
        let mut v = vec![false; runnable.len()];
        for g in &joint {
            for &i in g {
                v[i] = true;
            }
        }
        v
    };

    let mut slots: Vec<Option<Job>> = runnable.into_iter().map(Some).collect();
    for g in &joint {
        let jobs: Vec<Job> = g
            .iter()
            .map(|&i| slots[i].take().expect("unused"))
            .collect();
        let steps: Vec<i64> = jobs
            .iter()
            .map(|j| peek_rotate_steps(&j.body).expect("eligible"))
            .collect();
        let ct_bytes = peek_rotate_ct(&jobs[0].body).expect("eligible").to_vec();
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(
            || -> Result<Vec<Vec<u8>>, (ErrorCode, String)> {
                let ct = read_ct(state, &ct_bytes)?;
                // Keys were verified present; resolve through the pinned
                // set exactly like the per-job path would.
                let gk = assemble_galois_set(state, &steps, keys)?;
                let outs = rotate_hoisted(&state.evaluator, &ct, &steps, &gk);
                Ok(outs.iter().map(serialize_ciphertext).collect())
            },
        ));
        let elapsed = start.elapsed();
        for job in &jobs {
            if let Some(t) = &job.trace {
                t.set_exec_ending_now(elapsed);
            }
        }
        state
            .metrics
            .batch_hoist_shared
            .fetch_add(jobs.len() as u64 - 1, Ordering::Relaxed);
        match result {
            Ok(Ok(bodies)) => {
                for (job, body) in jobs.into_iter().zip(bodies) {
                    state.metrics.latency(job.op).observe(elapsed);
                    let _ = job.reply.send((0u8, body));
                }
            }
            Ok(Err((code, msg))) => {
                for job in jobs {
                    state.metrics.latency(job.op).observe(elapsed);
                    let _ = job.reply.send((code as u8, msg.clone().into_bytes()));
                }
            }
            Err(_) => {
                for job in jobs {
                    state.metrics.latency(job.op).observe(elapsed);
                    let _ = job
                        .reply
                        .send((ErrorCode::Internal as u8, b"operation panicked".to_vec()));
                }
            }
        }
    }
    for (i, slot) in slots.into_iter().enumerate() {
        if let Some(job) = slot {
            debug_assert!(!in_joint[i]);
            execute_job(state, job, Some(keys));
        }
    }
}

/// Builds a Galois key set for `steps` purely from a batch's pinned
/// expansions (joint rotations pre-verified every key is pinned).
fn assemble_galois_set(
    state: &ServerState,
    steps: &[i64],
    keys: &BatchKeys,
) -> Result<GaloisKeys, (ErrorCode, String)> {
    let mut gk = GaloisKeys::new();
    for &s in steps {
        let element = state.ctx.rotation_element(s);
        if gk.get_shared(element).is_some() {
            continue;
        }
        let key = keys.get(KeyKind::Galois(element)).ok_or_else(|| {
            (
                ErrorCode::MissingKey,
                format!("rotation step {s} (element {element})"),
            )
        })?;
        state
            .metrics
            .batch_expansions_avoided
            .fetch_add(1, Ordering::Relaxed);
        gk.insert_shared(element, key.clone());
    }
    Ok(gk)
}

/// Pending batch groups, keyed by `(session, KeyClass)`.
struct PendingGroup {
    jobs: Vec<Job>,
    oldest: Instant,
    /// `Throughput` sessions always wait out the window; `Auto` groups
    /// flush eagerly the moment the worker pool goes idle.
    hold: bool,
}

/// Hands one scheduler-formed group to the worker queue: restarts each
/// job's deadline clock (time held for batching is the scheduler's
/// choice, not congestion), stamps the hold on its trace, and — when
/// the workers are already gone in a shutdown race — retires the
/// dropped jobs from the queue-depth gauge. Their shard loop counted
/// them `enqueued()` at admission and no worker will ever `dequeued()`
/// them, so skipping that here would leak `serve_queue_depth`
/// permanently.
fn dispatch_batch(
    metrics: &Metrics,
    work: &SyncSender<WorkItem>,
    backlog: &AtomicU64,
    sid: u64,
    class: KeyClass,
    mut jobs: Vec<Job>,
) {
    let now = Instant::now();
    for j in &mut jobs {
        j.deadline_start = now;
        if let Some(t) = &j.trace {
            t.mark_batch_dispatch();
        }
    }
    backlog.fetch_add(1, Ordering::Relaxed);
    if let Err(std::sync::mpsc::SendError(item)) = work.send(WorkItem::Batch { sid, class, jobs }) {
        // Workers already gone (shutdown race); replies drop with the
        // channel and the shard loop answers Internal.
        backlog.fetch_sub(1, Ordering::Relaxed);
        if let WorkItem::Batch { jobs, .. } = item {
            for _ in &jobs {
                metrics.dequeued();
            }
        }
    }
}

/// The scheduler thread: collects keyed jobs into per-`(session, class)`
/// groups and dispatches each as one `WorkItem::Batch` when it fills,
/// expires, or the pool idles. On channel disconnect (shutdown) every
/// held group flushes before the thread exits, so no reply is lost.
fn scheduler_loop(
    state: &ServerState,
    rx: &Receiver<Job>,
    work: &SyncSender<WorkItem>,
    backlog: &AtomicU64,
    cfg: &BatchConfig,
) {
    let mut groups: HashMap<(u64, KeyClass), PendingGroup> = HashMap::new();
    let dispatch = |sid: u64, class: KeyClass, jobs: Vec<Job>| {
        dispatch_batch(&state.metrics, work, backlog, sid, class, jobs);
    };
    let flush = |groups: &mut HashMap<(u64, KeyClass), PendingGroup>,
                 pred: &dyn Fn(&PendingGroup) -> bool| {
        let due: Vec<(u64, KeyClass)> = groups
            .iter()
            .filter(|(_, p)| pred(p))
            .map(|(k, _)| *k)
            .collect();
        for key in due {
            let p = groups.remove(&key).expect("listed");
            dispatch(key.0, key.1, p.jobs);
        }
    };
    loop {
        let next_due = groups.values().map(|p| p.oldest + cfg.max_delay).min();
        let job = match next_due {
            None => match rx.recv() {
                Ok(j) => Some(j),
                Err(_) => break,
            },
            Some(due) => {
                let now = Instant::now();
                if due <= now {
                    None
                } else {
                    match rx.recv_timeout(due - now) {
                        Ok(j) => Some(j),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        };
        if let Some(job) = job {
            admit_to_group(state, &mut groups, job, cfg, &dispatch);
            // Coalesce the rest of an already-waiting burst before any
            // dispatch decision.
            while let Ok(j) = rx.try_recv() {
                admit_to_group(state, &mut groups, j, cfg, &dispatch);
            }
            // An idle pool means holding buys nothing: flush every group
            // that didn't ask to wait.
            if backlog.load(Ordering::Relaxed) == 0 {
                flush(&mut groups, &|p| !p.hold);
            }
        }
        let now = Instant::now();
        flush(&mut groups, &|p| p.oldest + cfg.max_delay <= now);
    }
    // Shutdown drain: every held job still executes and replies.
    flush(&mut groups, &|_| true);
}

/// Files one job into its `(session, class)` group, dispatching the
/// group if it reaches `max_batch`. `Interactive` sessions and jobs with
/// no resolvable group dispatch immediately as singletons.
fn admit_to_group(
    state: &ServerState,
    groups: &mut HashMap<(u64, KeyClass), PendingGroup>,
    job: Job,
    cfg: &BatchConfig,
    dispatch: &dyn Fn(u64, KeyClass, Vec<Job>),
) {
    let (Some(class), Some(sid)) = (KeyClass::of(job.op), peek_session(&job.body)) else {
        // The loop only routes keyed ops here, but stay safe: run it
        // alone.
        dispatch(0, KeyClass::Relin, vec![job]);
        return;
    };
    let hint = state
        .sessions
        .get(sid)
        .map(|s| s.batch_hint())
        .unwrap_or(BatchHint::Auto);
    if hint == BatchHint::Interactive {
        dispatch(sid, class, vec![job]);
        return;
    }
    let p = groups.entry((sid, class)).or_insert_with(|| PendingGroup {
        jobs: Vec::new(),
        oldest: Instant::now(),
        hold: hint == BatchHint::Throughput,
    });
    p.jobs.push(job);
    if p.jobs.len() >= cfg.max_batch {
        let p = groups.remove(&(sid, class)).expect("just inserted");
        dispatch(sid, class, p.jobs);
    }
}

type OpResult = Result<Vec<u8>, (ErrorCode, String)>;

fn fail<T>(code: ErrorCode, msg: impl Into<String>) -> Result<T, (ErrorCode, String)> {
    Err((code, msg.into()))
}

fn handle(state: &ServerState, op: Opcode, body: &[u8], keys: Option<&BatchKeys>) -> OpResult {
    match op {
        Opcode::Hello => {
            // Optional leading batching-hint byte; anything else in the
            // body (old clients, fuzzed frames) reads as Auto.
            let hint = BatchHint::from_u8(body.first().copied().unwrap_or(0));
            // The shard-local manager mints an id that hashes back to
            // this shard, so the session's keyed traffic never migrates.
            let sid = state.sessions.create_with_hint(hint);
            // 8 LE bytes of session id, a flags byte (bit 0: batching
            // scheduler enabled), then the active kernel-backend name in
            // UTF-8. Pre-backend clients read only the first 8 bytes.
            let mut reply = sid.to_le_bytes().to_vec();
            reply.push(u8::from(state.batching));
            reply.extend_from_slice(state.ctx.kernel_backend().name().as_bytes());
            Ok(reply)
        }
        Opcode::UploadRelin => {
            let mut r = BodyReader::new(body);
            let (_sid, session) = need_session(state, &mut r)?;
            let key_bytes = r.rest();
            // Validate against the context before filing it away, so MULT
            // never trips over garbage later.
            if deserialize_switching_key(&state.ctx, key_bytes).is_err() {
                return fail(ErrorCode::Malformed, "relin key bytes rejected");
            }
            session.set_relin(key_bytes.to_vec());
            Ok(Vec::new())
        }
        Opcode::UploadGalois => {
            let mut r = BodyReader::new(body);
            let (_sid, session) = need_session(state, &mut r)?;
            let bundle = r.rest();
            let entries = match galois_key_set_entries(bundle) {
                Ok(e) if !e.is_empty() => e,
                _ => return fail(ErrorCode::Malformed, "galois bundle rejected"),
            };
            // Keys are stored compressed, split but unexpanded — the
            // cache pays for expansion on first use.
            for (element, key_bytes) in entries {
                session.set_galois(element, key_bytes.to_vec());
            }
            Ok(Vec::new())
        }
        Opcode::CloseSession => {
            let mut r = BodyReader::new(body);
            let sid = r.u64().ok_or_else(malformed)?;
            state
                .sessions
                .close(sid)
                .map_err(|c| (c, format!("session {sid}")))?;
            state.cache.purge_session(sid);
            Ok(Vec::new())
        }
        Opcode::UploadProgram => {
            let mut r = BodyReader::new(body);
            let (_sid, session) = need_session(state, &mut r)?;
            let wire = r.rest();
            let program = Program::from_bytes(wire)
                .map_err(|e| (ErrorCode::Malformed, format!("program rejected: {e}")))?;
            // Validate against *this server's* parameters once at upload,
            // so every RunProgram skips straight to execution and a
            // mis-parameterized program fails loudly up front.
            let env = ProgramEnv {
                levels: state.ctx.params().levels(),
                slots: state.ctx.params().slots(),
            };
            let info = program
                .validate(&env)
                .map_err(|e| (ErrorCode::Malformed, format!("program rejected: {e}")))?;
            if program
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::Bootstrap { .. }))
            {
                return fail(
                    ErrorCode::Malformed,
                    "program uses Bootstrap, which the serving runtime cannot execute",
                );
            }
            let pid = session.store_program(StoredProgram {
                wire_len: wire.len(),
                info,
                program,
            });
            Ok(pid.to_le_bytes().to_vec())
        }
        Opcode::Add => {
            let mut r = BodyReader::new(body);
            let (_sid, _session) = need_session(state, &mut r)?;
            let a = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let b = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let (a, b) = state.evaluator.align_levels(&a, &b);
            Ok(ser_ct(&state.evaluator.add(&a, &b)))
        }
        Opcode::PtMult => {
            let mut r = BodyReader::new(body);
            let (_sid, _session) = need_session(state, &mut r)?;
            let ct = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let pt = deserialize_plaintext(&state.ctx, r.blob().ok_or_else(malformed)?)
                .map_err(|e| (ErrorCode::Malformed, e.to_string()))?;
            if ct.limb_count() != pt.limb_count() || ct.limb_count() < 2 {
                return fail(ErrorCode::Malformed, "plaintext level mismatch");
            }
            Ok(ser_ct(&state.evaluator.mul_plain(&ct, &pt)))
        }
        Opcode::Mult => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let a = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let b = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            if a.limb_count().min(b.limb_count()) < 2 {
                return fail(ErrorCode::Malformed, "no level left to multiply at");
            }
            let rlk = expand_key(state, sid, &session, KeyKind::Relin, keys)?;
            let (a, b) = state.evaluator.align_levels(&a, &b);
            Ok(ser_ct(&state.evaluator.mul_with_key(&a, &b, &rlk)))
        }
        Opcode::Rotate => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let steps = r.i64().ok_or_else(malformed)?;
            let ct = read_ct(state, r.rest())?;
            if steps == 0 {
                return Ok(ser_ct(&ct));
            }
            let gk = assemble_galois(state, sid, &session, &[steps], keys)?;
            // The hoisted formulation in *both* modes: hoisted digit
            // automorphism is only semantically — not bitwise — equal to
            // the automorph-then-decompose order, so batch-of-k and
            // batch-of-1 stay byte-identical only if the singleton path
            // hoists too.
            let out = rotate_hoisted(&state.evaluator, &ct, &[steps], &gk)
                .pop()
                .expect("one step in, one ciphertext out");
            Ok(ser_ct(&out))
        }
        Opcode::Rescale => {
            let mut r = BodyReader::new(body);
            let (_sid, _session) = need_session(state, &mut r)?;
            let ct = read_ct(state, r.rest())?;
            if ct.limb_count() < 2 {
                return fail(ErrorCode::Malformed, "no limb left to rescale away");
            }
            Ok(ser_ct(&state.evaluator.rescale(&ct)))
        }
        Opcode::Bsgs => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let slots = state.ctx.params().slots();
            let n1 = r.u32().ok_or_else(malformed)? as usize;
            let diag_count = r.u32().ok_or_else(malformed)? as usize;
            if n1 == 0 || n1 > slots || diag_count == 0 || diag_count > slots {
                return fail(ErrorCode::Malformed, "bad BSGS dimensions");
            }
            let mut diagonals = BTreeMap::new();
            for _ in 0..diag_count {
                let offset = r.u32().ok_or_else(malformed)? as usize;
                if offset >= slots {
                    return fail(ErrorCode::Malformed, "diagonal offset out of range");
                }
                let mut diag = Vec::with_capacity(slots);
                for _ in 0..slots {
                    let re = r.f64().ok_or_else(malformed)?;
                    let im = r.f64().ok_or_else(malformed)?;
                    diag.push(Complex::new(re, im));
                }
                diagonals.insert(offset, diag);
            }
            let ct = read_ct(state, r.rest())?;
            let lt = LinearTransform::from_diagonals(diagonals, slots);
            let steps = bsgs_required_steps(&lt, n1);
            let gk = assemble_galois(state, sid, &session, &steps, keys)?;
            Ok(ser_ct(&apply_bsgs(
                &state.evaluator,
                &state.encoder,
                &ct,
                &lt,
                &gk,
                n1,
            )))
        }
        Opcode::HelrStep => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let learning_rate = r.f64().ok_or_else(malformed)?;
            let dim = r.u32().ok_or_else(malformed)? as usize;
            if dim == 0 || dim > 64 {
                return fail(ErrorCode::Malformed, "feature dimension out of range");
            }
            let read_cts = |n: usize,
                            r: &mut BodyReader<'_>|
             -> Result<Vec<Ciphertext>, (ErrorCode, String)> {
                (0..n)
                    .map(|_| read_ct(state, r.blob().ok_or_else(malformed)?))
                    .collect()
            };
            let mut weights = read_cts(dim, &mut r)?;
            let xs = read_cts(dim, &mut r)?;
            let y01 = read_ct(state, r.blob().ok_or_else(malformed)?)?;
            let slots = state.ctx.params().slots();
            if weights[0].limb_count() <= fhe_apps::helr_enc::LR_STEP_DEPTH {
                return fail(ErrorCode::Malformed, "not enough levels for a step");
            }
            let rlk = expand_key(state, sid, &session, KeyKind::Relin, keys)?;
            let gk = assemble_galois(state, sid, &session, &lr_fold_steps(slots), keys)?;
            encrypted_lr_step(
                &state.evaluator,
                &rlk,
                &gk,
                &mut weights,
                &xs,
                &y01,
                slots,
                learning_rate,
            );
            let mut out = crate::protocol::BodyWriter::new();
            for w in &weights {
                out.blob(&ser_ct(w));
            }
            Ok(out.0)
        }
        Opcode::RunProgram => {
            let mut r = BodyReader::new(body);
            let (sid, session) = need_session(state, &mut r)?;
            let pid = r.u64().ok_or_else(malformed)?;
            let sp = session
                .program(pid)
                .map_err(|c| (c, format!("program {pid} not uploaded to session {sid}")))?;
            let prog = &sp.program;
            // Inputs arrive in declaration order: ciphertext blobs, then
            // plaintext vectors, then matrix diagonals (declared offsets,
            // `slots` complex values each).
            let mut inputs = ExecInputs::default();
            for decl in &prog.ct_inputs {
                let ct = read_ct(state, r.blob().ok_or_else(malformed)?)?;
                inputs.cts.insert(decl.name.clone(), ct);
            }
            for decl in &prog.pt_inputs {
                let n = r.u32().ok_or_else(malformed)? as usize;
                if n > state.ctx.params().slots() {
                    return fail(ErrorCode::Malformed, "plaintext vector exceeds slot count");
                }
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    let re = r.f64().ok_or_else(malformed)?;
                    let im = r.f64().ok_or_else(malformed)?;
                    v.push(Complex::new(re, im));
                }
                inputs.pts.insert(decl.name.clone(), v);
            }
            for decl in &prog.matrices {
                let mut diagonals = BTreeMap::new();
                for &offset in &decl.offsets {
                    let mut diag = Vec::with_capacity(decl.slots);
                    for _ in 0..decl.slots {
                        let re = r.f64().ok_or_else(malformed)?;
                        let im = r.f64().ok_or_else(malformed)?;
                        diag.push(Complex::new(re, im));
                    }
                    diagonals.insert(offset, diag);
                }
                inputs.mats.insert(
                    decl.name.clone(),
                    LinearTransform::from_diagonals(diagonals, decl.slots),
                );
            }
            if !r.is_empty() {
                return fail(ErrorCode::Malformed, "trailing bytes after program inputs");
            }
            // The manifest names exactly the keys the program touches;
            // resolve them through the batch's pinned set first, the
            // shard's cache second — same path as the scalar opcodes.
            let rlk = if sp.info.manifest.relin {
                Some(expand_key(state, sid, &session, KeyKind::Relin, keys)?)
            } else {
                None
            };
            let gk = assemble_galois(state, sid, &session, &sp.info.manifest.galois_steps, keys)?;
            let exec_keys = ExecKeys {
                relin: rlk.as_deref(),
                galois: Some(&gk),
            };
            let outs = execute_validated(
                &state.evaluator,
                &state.encoder,
                prog,
                &sp.info,
                &inputs,
                exec_keys,
            )
            .map_err(exec_error)?;
            let mut out = crate::protocol::BodyWriter::new();
            for (_name, ct) in &outs {
                out.blob(&ser_ct(ct));
            }
            Ok(out.0)
        }
        Opcode::Metrics => Ok(state.metrics_text().into_bytes()),
        Opcode::TraceDump => match body.first().copied().unwrap_or(0) {
            0 => Ok(state.obs.chrome_trace_json().into_bytes()),
            1 => Ok(state.obs.slow_log().into_bytes()),
            m => fail(ErrorCode::Malformed, format!("unknown trace-dump mode {m}")),
        },
    }
}

fn malformed() -> (ErrorCode, String) {
    (ErrorCode::Malformed, "truncated request body".into())
}

/// Maps an executor failure onto the protocol's error codes: absent keys
/// surface as [`ErrorCode::MissingKey`] (upload and retry), everything
/// else is a client-side [`ErrorCode::Malformed`].
fn exec_error(e: ExecError) -> (ErrorCode, String) {
    let code = match e {
        ExecError::MissingRelinKey | ExecError::MissingGaloisKey(_) => ErrorCode::MissingKey,
        _ => ErrorCode::Malformed,
    };
    (code, e.to_string())
}

fn need_session(
    state: &ServerState,
    r: &mut BodyReader<'_>,
) -> Result<(u64, Arc<Session>), (ErrorCode, String)> {
    let sid = r.u64().ok_or_else(malformed)?;
    let session = state
        .sessions
        .get(sid)
        .map_err(|c| (c, format!("session {sid}")))?;
    Ok((sid, session))
}

fn read_ct(state: &ServerState, bytes: &[u8]) -> Result<Ciphertext, (ErrorCode, String)> {
    obs::time_stage(Stage::Decode, || {
        deserialize_ciphertext(&state.ctx, bytes).map_err(|e| (ErrorCode::Malformed, e.to_string()))
    })
}

/// Serializes a result ciphertext, attributing the time to the
/// executing request's serialize stage.
fn ser_ct(ct: &Ciphertext) -> Vec<u8> {
    obs::time_stage(Stage::Serialize, || serialize_ciphertext(ct))
}

/// Fetches one expanded key, consulting the batch's pinned set first and
/// falling back to the shard's cache, resolving the compressed bytes
/// from the session store.
fn expand_key(
    state: &ServerState,
    sid: u64,
    session: &Session,
    kind: KeyKind,
    keys: Option<&BatchKeys>,
) -> Result<Arc<SwitchingKey>, (ErrorCode, String)> {
    if let Some(key) = keys.and_then(|k| k.get(kind)) {
        state
            .metrics
            .batch_expansions_avoided
            .fetch_add(1, Ordering::Relaxed);
        return Ok(key.clone());
    }
    let bytes = session
        .key_bytes(kind)
        .map_err(|c| (c, format!("{kind:?} for session {sid}")))?;
    obs::time_stage(Stage::Key, || {
        state.cache.get_or_expand(&state.ctx, sid, kind, &bytes)
    })
    .map_err(|c| (c, format!("{kind:?} failed to expand")))
}

/// Builds a per-request Galois key set for `steps` from the batch's
/// pinned expansions or cached shared expansions, failing with
/// `MissingKey` *before* any evaluator call can panic on an absent key.
fn assemble_galois(
    state: &ServerState,
    sid: u64,
    session: &Session,
    steps: &[i64],
    keys: Option<&BatchKeys>,
) -> Result<GaloisKeys, (ErrorCode, String)> {
    let mut gk = GaloisKeys::new();
    for &s in steps {
        if s == 0 {
            continue;
        }
        let element = state.ctx.rotation_element(s);
        if gk.get_shared(element).is_some() {
            continue;
        }
        let key = expand_key(state, sid, session, KeyKind::Galois(element), keys)
            .map_err(|(c, _)| (c, format!("rotation step {s} (element {element})")))?;
        gk.insert_shared(element, key);
    }
    Ok(gk)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the queue-depth leak: a batch dispatched into a
    /// dead worker channel (shutdown race) must retire every member job
    /// from the `serve_queue_depth` gauge, or depth/peak drift upward
    /// forever.
    #[test]
    fn dispatch_batch_retires_depth_when_workers_are_gone() {
        let metrics = Metrics::new();
        let backlog = AtomicU64::new(0);
        let (work, rx) = sync_channel::<WorkItem>(4);

        let mk_job = || {
            let (tx, _rx) = std::sync::mpsc::channel();
            Job {
                op: Opcode::Rotate,
                body: Vec::new(),
                deadline_start: Instant::now(),
                reply: tx,
                trace: None,
                #[cfg(feature = "chaos")]
                chaos: None,
            }
        };

        // The shard loop counted these at admission.
        let jobs: Vec<Job> = (0..3).map(|_| mk_job()).collect();
        for _ in &jobs {
            metrics.enqueued();
        }
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 3);

        // Live channel: depth stays until a worker pops and dequeues.
        dispatch_batch(&metrics, &work, &backlog, 7, KeyClass::Relin, jobs);
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 3);
        assert_eq!(backlog.load(Ordering::Relaxed), 1);
        match rx.recv().unwrap() {
            WorkItem::Batch { jobs, .. } => {
                for _ in &jobs {
                    metrics.dequeued();
                }
                backlog.fetch_sub(1, Ordering::Relaxed);
            }
            WorkItem::Single(_) => panic!("expected a batch"),
        }
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 0);

        // Dead channel: the dispatch itself must retire the jobs.
        drop(rx);
        let jobs: Vec<Job> = (0..3).map(|_| mk_job()).collect();
        for _ in &jobs {
            metrics.enqueued();
        }
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 3);
        dispatch_batch(&metrics, &work, &backlog, 7, KeyClass::Relin, jobs);
        assert_eq!(
            metrics.queue_depth.load(Ordering::Relaxed),
            0,
            "shutdown race leaked depth"
        );
        assert_eq!(backlog.load(Ordering::Relaxed), 0);
    }
}
