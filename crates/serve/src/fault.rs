//! Deterministic fault injection for the serving runtime.
//!
//! A [`FaultPlan`] is a seeded decision stream: each parsed request frame
//! asks the plan whether (and how) to misbehave, and the answer depends
//! only on the seed, the [`FaultMix`] weights, and the *sequence* of
//! `decide` calls — never on the wall clock or OS randomness. Replaying
//! the same client workload against the same seed therefore replays the
//! same faults, which is what lets the `chaos_matrix` suite commit a seed
//! grid and assert invariants for every cell.
//!
//! The types here are always compiled (they are pure logic and the
//! [`crate::client::RetryPolicy`] borrows the RNG for backoff jitter),
//! but the server only *injects* faults when built with the `chaos`
//! feature — the default build carries no injection branches.
//!
//! The taxonomy mirrors how a memory-constrained FHE server actually
//! fails in the field:
//!
//! | fault | where it strikes | what the client sees |
//! |---|---|---|
//! | [`FaultDecision::ReadError`] | connection reader | connection drops with no reply |
//! | [`FaultDecision::WriteAbort`] | response writer | a torn (partial) response frame, then EOF |
//! | [`FaultDecision::Delay`] | worker dequeue | extra latency, possibly `DeadlineExceeded` |
//! | [`FaultDecision::EvictionStorm`] | key cache | silent re-expansion cost (bit-exact results) |
//! | [`FaultDecision::SessionReset`] | session table | `NoSession`, forcing re-setup + key re-upload |
//! | [`FaultDecision::Overloaded`] | admission | synthetic `Overloaded`, back off and retry |
//! | [`FaultDecision::WorkerPanic`] | op execution | structured `Internal` (panic is caught) |

use crate::protocol::Opcode;
use std::sync::Mutex;
use std::time::Duration;

/// A tiny deterministic RNG (xorshift64*): no wall clock, no OS entropy,
/// identical streams for identical seeds on every platform.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator; a zero seed is remapped to a fixed odd
    /// constant because the all-zero state is a fixed point of xorshift.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform-ish draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }
}

/// Per-fault injection weights, each out of 1000 per decision. The sum
/// is the overall per-frame fault probability (in ‰); the remainder is
/// "serve faithfully".
#[derive(Debug, Clone)]
pub struct FaultMix {
    /// Weight of dropping the connection as if the read failed.
    pub read_error: u16,
    /// Weight of writing a truncated response frame then dropping.
    pub write_abort: u16,
    /// Weight of artificial latency before the worker starts the op.
    pub delay: u16,
    /// Weight of forcibly evicting every cached key expansion.
    pub eviction_storm: u16,
    /// Weight of dropping every server-side session (forces re-setup).
    pub session_reset: u16,
    /// Weight of answering with a synthetic `Overloaded` instead of
    /// executing.
    pub overloaded: u16,
    /// Weight of panicking mid-request inside the worker.
    pub worker_panic: u16,
    /// Upper bound on an injected [`FaultDecision::Delay`].
    pub max_delay: Duration,
    /// When true, session-setup and introspection opcodes (`Hello`,
    /// uploads, `CloseSession`, `Metrics`) are never faulted — useful
    /// for mixes that target the evaluation hot path only.
    pub spare_setup: bool,
}

impl FaultMix {
    /// Transport-focused mix: dropped connections, torn response frames,
    /// session loss, and admission-control rejections.
    pub fn io() -> Self {
        Self {
            read_error: 110,
            write_abort: 110,
            delay: 0,
            eviction_storm: 0,
            session_reset: 40,
            overloaded: 60,
            worker_panic: 0,
            max_delay: Duration::ZERO,
            spare_setup: false,
        }
    }

    /// Scheduling-focused mix: dequeue latency and overload pushback on
    /// evaluation opcodes only.
    pub fn latency() -> Self {
        Self {
            read_error: 0,
            write_abort: 0,
            delay: 220,
            eviction_storm: 0,
            session_reset: 0,
            overloaded: 150,
            worker_panic: 0,
            max_delay: Duration::from_millis(25),
            spare_setup: true,
        }
    }

    /// Everything at once: the full taxonomy at moderate weights,
    /// including mid-request worker panics and cache eviction storms.
    pub fn havoc() -> Self {
        Self {
            read_error: 60,
            write_abort: 60,
            delay: 70,
            eviction_storm: 90,
            session_reset: 40,
            overloaded: 60,
            worker_panic: 70,
            max_delay: Duration::from_millis(15),
            spare_setup: false,
        }
    }

    fn total_weight(&self) -> u64 {
        u64::from(self.read_error)
            + u64::from(self.write_abort)
            + u64::from(self.delay)
            + u64::from(self.eviction_storm)
            + u64::from(self.session_reset)
            + u64::from(self.overloaded)
            + u64::from(self.worker_panic)
    }
}

/// One concrete fault to inject, with its parameters already drawn from
/// the plan's RNG so the injection site stays trivial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Drop the connection before processing, as if the socket read
    /// failed. No reply is ever written.
    ReadError,
    /// Compute the response normally, write only the first `keep` bytes
    /// of its frame, then drop the connection — a torn frame.
    WriteAbort {
        /// How many bytes of the response frame to let through (the
        /// injection site clamps this below the full frame length).
        keep: usize,
    },
    /// Sleep this long after dequeue, before the deadline check — the
    /// injected latency counts against the request deadline exactly like
    /// real queue delay.
    Delay(Duration),
    /// Evict every expanded key from the [`crate::cache::KeyCache`].
    EvictionStorm,
    /// Close every server-side session and purge the cache, as if the
    /// server lost its session table.
    SessionReset,
    /// Answer `Overloaded` without enqueuing, as if the queue were full.
    Overloaded,
    /// Panic inside the worker mid-request; `catch_unwind` must convert
    /// it to a structured `Internal` error.
    WorkerPanic,
}

/// One log entry: which frame drew which fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// 1-based index of the `decide` call (≈ frame order on the server).
    pub frame: u64,
    /// The opcode the faulted frame carried.
    pub op: Opcode,
    /// The fault injected.
    pub fault: FaultDecision,
}

struct PlanState {
    rng: XorShift64,
    frames: u64,
    remaining: u32,
    log: Vec<InjectedFault>,
}

/// A seeded, budgeted fault schedule shared by every server thread.
///
/// The budget caps the total number of injected faults; once spent the
/// plan answers `None` forever, so every chaos run eventually quiesces
/// and a bounded-retry client is guaranteed to converge. Decisions are a
/// pure function of `(seed, mix, call sequence)`.
pub struct FaultPlan {
    seed: u64,
    mix: FaultMix,
    inner: Mutex<PlanState>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("mix", &self.mix)
            .finish_non_exhaustive()
    }
}

impl FaultPlan {
    /// A plan injecting at most `budget` faults, drawn with `seed`.
    pub fn new(seed: u64, mix: FaultMix, budget: u32) -> Self {
        Self {
            seed,
            inner: Mutex::new(PlanState {
                rng: XorShift64::new(seed ^ 0xc4a0_5f41),
                frames: 0,
                remaining: budget,
                log: Vec::new(),
            }),
            mix,
        }
    }

    /// The seed the plan was built from (for failure artifacts).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides the fate of one frame carrying `op`. Returns `None` to
    /// serve faithfully. Must be called exactly once per parsed frame so
    /// the decision stream is reproducible.
    pub fn decide(&self, op: Opcode) -> Option<FaultDecision> {
        let mut st = self.inner.lock().expect("fault plan poisoned");
        st.frames += 1;
        if st.remaining == 0 {
            return None;
        }
        if self.mix.spare_setup && is_setup(op) {
            return None;
        }
        let r = st.rng.below(1000);
        let mut threshold = 0u64;
        let mut pick = None;
        for (weight, kind) in [
            (self.mix.read_error, Kind::ReadError),
            (self.mix.write_abort, Kind::WriteAbort),
            (self.mix.delay, Kind::Delay),
            (self.mix.eviction_storm, Kind::EvictionStorm),
            (self.mix.session_reset, Kind::SessionReset),
            (self.mix.overloaded, Kind::Overloaded),
            (self.mix.worker_panic, Kind::WorkerPanic),
        ] {
            threshold += u64::from(weight);
            if r < threshold {
                pick = Some(kind);
                break;
            }
        }
        debug_assert!(self.mix.total_weight() <= 1000, "weights exceed 1000‰");
        let kind = pick?;
        let fault = match kind {
            Kind::ReadError => FaultDecision::ReadError,
            // The injection site clamps to the actual frame length; the
            // draw just makes the torn prefix length seed-dependent.
            Kind::WriteAbort => FaultDecision::WriteAbort {
                keep: 1 + st.rng.below(64) as usize,
            },
            Kind::Delay => {
                let max_us = self.mix.max_delay.as_micros().max(1) as u64;
                FaultDecision::Delay(Duration::from_micros(1 + st.rng.below(max_us)))
            }
            Kind::EvictionStorm => FaultDecision::EvictionStorm,
            Kind::SessionReset => FaultDecision::SessionReset,
            Kind::Overloaded => FaultDecision::Overloaded,
            Kind::WorkerPanic => FaultDecision::WorkerPanic,
        };
        st.remaining -= 1;
        let frame = st.frames;
        st.log.push(InjectedFault { frame, op, fault });
        Some(fault)
    }

    /// Everything injected so far, in decision order.
    pub fn injected(&self) -> Vec<InjectedFault> {
        self.inner.lock().expect("fault plan poisoned").log.clone()
    }

    /// Number of faults injected so far.
    pub fn injected_count(&self) -> u64 {
        self.inner.lock().expect("fault plan poisoned").log.len() as u64
    }

    /// Injection budget still unspent.
    pub fn remaining_budget(&self) -> u32 {
        self.inner.lock().expect("fault plan poisoned").remaining
    }
}

#[derive(Clone, Copy)]
enum Kind {
    ReadError,
    WriteAbort,
    Delay,
    EvictionStorm,
    SessionReset,
    Overloaded,
    WorkerPanic,
}

fn is_setup(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Hello
            | Opcode::UploadRelin
            | Opcode::UploadGalois
            | Opcode::CloseSession
            | Opcode::UploadProgram
            | Opcode::Metrics
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_never_sticks_at_zero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0, "zero seed must be remapped");
        let mut c = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(c.below(10) < 10);
        }
    }

    #[test]
    fn same_seed_same_decision_stream() {
        let ops = [
            Opcode::Hello,
            Opcode::Add,
            Opcode::Mult,
            Opcode::Rotate,
            Opcode::Rescale,
            Opcode::Metrics,
        ];
        let a = FaultPlan::new(77, FaultMix::havoc(), 1000);
        let b = FaultPlan::new(77, FaultMix::havoc(), 1000);
        for i in 0..2000 {
            let op = ops[i % ops.len()];
            assert_eq!(a.decide(op), b.decide(op), "diverged at call {i}");
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn budget_caps_total_injections_then_quiesces() {
        let plan = FaultPlan::new(3, FaultMix::havoc(), 5);
        for _ in 0..10_000 {
            let _ = plan.decide(Opcode::Mult);
        }
        assert_eq!(plan.injected_count(), 5);
        assert_eq!(plan.remaining_budget(), 0);
        assert_eq!(plan.decide(Opcode::Mult), None, "spent plan must be inert");
    }

    #[test]
    fn spare_setup_never_faults_session_management() {
        let plan = FaultPlan::new(9, FaultMix::latency(), u32::MAX);
        for _ in 0..5000 {
            assert_eq!(plan.decide(Opcode::Hello), None);
            assert_eq!(plan.decide(Opcode::UploadGalois), None);
            assert_eq!(plan.decide(Opcode::Metrics), None);
        }
        // The evaluation path still gets faulted.
        let mut hit = false;
        for _ in 0..5000 {
            if plan.decide(Opcode::Mult).is_some() {
                hit = true;
                break;
            }
        }
        assert!(hit, "latency mix must fault evaluation opcodes");
    }

    #[test]
    fn havoc_mix_reaches_every_fault_kind() {
        let plan = FaultPlan::new(1234, FaultMix::havoc(), u32::MAX);
        for _ in 0..20_000 {
            let _ = plan.decide(Opcode::Mult);
        }
        let log = plan.injected();
        let saw = |f: fn(&FaultDecision) -> bool| log.iter().any(|e| f(&e.fault));
        assert!(saw(|f| matches!(f, FaultDecision::ReadError)));
        assert!(saw(|f| matches!(f, FaultDecision::WriteAbort { .. })));
        assert!(saw(|f| matches!(f, FaultDecision::Delay(_))));
        assert!(saw(|f| matches!(f, FaultDecision::EvictionStorm)));
        assert!(saw(|f| matches!(f, FaultDecision::SessionReset)));
        assert!(saw(|f| matches!(f, FaultDecision::Overloaded)));
        assert!(saw(|f| matches!(f, FaultDecision::WorkerPanic)));
        // Injected delays respect the mix's ceiling.
        for e in &log {
            if let FaultDecision::Delay(d) = e.fault {
                assert!(d <= FaultMix::havoc().max_delay);
                assert!(d > Duration::ZERO);
            }
        }
    }
}
