//! Request-scoped tracing: per-stage latency attribution, a ring buffer
//! of recent request timelines, a slow-request log, and a Perfetto
//! (Chrome trace-event) exporter behind the `TraceDump` opcode.
//!
//! Every request gets an id at frame parse and an always-on, lock-free
//! `RequestTrace` that rides on the job through the whole lifecycle.
//! Threads stamp stage transitions as they happen:
//!
//! ```text
//! reader          scheduler        worker                      reader
//! ──────          ─────────        ──────                      ──────
//! parse ─ enqueue ─ [batch hold] ─ pickup ─ decode/key/kernel ─ write
//!          └──────── queue ────────┘        └── serialize ──┘
//! ```
//!
//! The taxonomy ([`Stage`]) partitions end-to-end latency: `queue` is
//! time waiting for a worker, `batch_hold` the scheduler's deliberate
//! key-reuse window, `decode`/`key`/`serialize` are measured inside the
//! handler through a thread-local set for the executing job, `kernel`
//! is the handler remainder (the FHE math itself), and `write` is the
//! reply flush. Finished timelines land in a fixed-size ring (plus a
//! dedicated slot that always retains the slowest request seen, so a
//! tail outlier can never be overwritten by later traffic) and, past a
//! configurable threshold, in a bounded structured slow-request log
//! annotated with the dominant stage.
//!
//! On top of the cheap always-on recording, every Nth request (the
//! `deep_sample_every` knob) is *deep-sampled*: when the crate is built
//! with the `telemetry` feature, the worker bridges into
//! `fhe_math::telemetry` span tracing for that one request, so its
//! timeline additionally carries the kernel sub-spans (`Rotate`,
//! `KeySwitch`, `ModUp`, `NTT`…) recorded by the math layer. Deep
//! capture uses the math layer's single global trace, so at most one
//! request is deep-sampled at a time and a user-initiated trace is
//! never clobbered (`trace_try_start`).

use crate::metrics::Metrics;
use crate::protocol::Opcode;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The request lifecycle stages latency is attributed to. Together the
/// stages partition end-to-end latency (up to scheduling gaps of a few
/// microseconds between threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Waiting in the admission/worker queue for a worker to pick the
    /// job up (excluding any deliberate batching hold).
    Queue,
    /// Held by the batching scheduler to form a key-sharing group — the
    /// server's own choice, reported separately from congestion.
    BatchHold,
    /// Deserializing request payloads (ciphertexts, plaintexts).
    Decode,
    /// Switching-key access: cache lookup, seeded expansion on miss,
    /// and this job's share of its batch's pin phase.
    Key,
    /// The FHE math itself — handler time not spent in decode, key
    /// access, or serialization.
    Kernel,
    /// Serializing result ciphertexts.
    Serialize,
    /// Writing the reply frame back to the socket.
    Write,
}

impl Stage {
    /// Every stage, in timeline order (metrics registration order).
    pub const ALL: [Stage; 7] = [
        Stage::Queue,
        Stage::BatchHold,
        Stage::Decode,
        Stage::Key,
        Stage::Kernel,
        Stage::Serialize,
        Stage::Write,
    ];

    /// Stable lowercase name used as the metrics label and span name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::BatchHold => "batch_hold",
            Stage::Decode => "decode",
            Stage::Key => "key",
            Stage::Kernel => "kernel",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
        }
    }

    fn index(self) -> usize {
        Stage::ALL.iter().position(|&s| s == self).expect("listed")
    }
}

/// Tracing knobs for the serving runtime, a field of
/// [`crate::ServeConfig`]. [`ObsConfig::from_env`] (the default) reads
/// the `MAD_SERVE_OBS`, `MAD_SERVE_TRACE_RING`, `MAD_SERVE_DEEP_EVERY`
/// and `MAD_SERVE_SLOW_MS` environment variables.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Master switch for per-request recording. Off, requests carry no
    /// trace at all and `TraceDump` returns an empty timeline.
    pub enabled: bool,
    /// How many finished request timelines the ring retains.
    pub ring_capacity: usize,
    /// Deep-sample (bridge into `fhe_math::telemetry` span tracing)
    /// every Nth request; `0` disables deep sampling. Sub-spans only
    /// appear when the crate is built with the `telemetry` feature.
    pub deep_sample_every: u64,
    /// Requests slower than this end-to-end land in the slow-request
    /// log, annotated with their dominant stage.
    pub slow_threshold: Duration,
}

impl ObsConfig {
    /// The hardcoded defaults: recording on, a 128-entry ring, deep
    /// sampling every 64th request, 500 ms slow threshold.
    pub fn baseline() -> Self {
        Self {
            enabled: true,
            ring_capacity: 128,
            deep_sample_every: 64,
            slow_threshold: Duration::from_millis(500),
        }
    }

    /// [`ObsConfig::baseline`] overridden by environment variables:
    /// `MAD_SERVE_OBS` (`0`/`off`/`false` disables), `MAD_SERVE_TRACE_RING`
    /// (entries), `MAD_SERVE_DEEP_EVERY` (N, `0` = never) and
    /// `MAD_SERVE_SLOW_MS` (milliseconds). Unparseable values are
    /// ignored.
    pub fn from_env() -> Self {
        let mut cfg = Self::baseline();
        if let Ok(v) = std::env::var("MAD_SERVE_OBS") {
            match v.to_ascii_lowercase().as_str() {
                "1" | "on" | "true" => cfg.enabled = true,
                "0" | "off" | "false" => cfg.enabled = false,
                _ => {}
            }
        }
        if let Ok(v) = std::env::var("MAD_SERVE_TRACE_RING") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.ring_capacity = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("MAD_SERVE_DEEP_EVERY") {
            if let Ok(n) = v.parse::<u64>() {
                cfg.deep_sample_every = n;
            }
        }
        if let Ok(v) = std::env::var("MAD_SERVE_SLOW_MS") {
            if let Ok(ms) = v.parse::<u64>() {
                cfg.slow_threshold = Duration::from_millis(ms);
            }
        }
        cfg
    }
}

/// The live, lock-free timeline of one in-flight request. Stamps and
/// accumulators are relaxed atomics: each field is written by exactly
/// one thread at a time (reader → scheduler → worker → reader) and read
/// only at finish, so no ordering stronger than `Relaxed` is needed.
pub(crate) struct RequestTrace {
    id: u64,
    op: Opcode,
    /// The shard loop that parsed (and owns) this request.
    shard: u32,
    /// When the frame was parsed; every offset below is relative to it.
    start: Instant,
    /// Chosen for deep sampling (kernel sub-span capture) at accept.
    deep: bool,
    /// Offset when the reader enqueued the job (timeline anchor for the
    /// queue/hold spans).
    enqueued_us: AtomicU64,
    /// Where the current wait began: enqueue, restamped at batch
    /// dispatch so hold and queue time separate cleanly.
    wait_from_us: AtomicU64,
    /// Offset when handler execution began.
    exec_begin_us: AtomicU64,
    /// Total handler execution time.
    exec_us: AtomicU64,
    stage_us: [AtomicU64; Stage::ALL.len()],
    /// Kernel sub-spans captured by a deep sample, absolute offsets.
    subspans: Mutex<Vec<SubSpan>>,
}

impl RequestTrace {
    fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn add_stage(&self, stage: Stage, d: Duration) {
        self.stage_us[stage.index()].fetch_add(d.as_micros() as u64, Relaxed);
    }

    /// Reader-side: the job is about to enter a queue.
    pub(crate) fn mark_enqueued(&self) {
        let now = self.elapsed_us();
        self.enqueued_us.store(now, Relaxed);
        self.wait_from_us.store(now, Relaxed);
    }

    /// Scheduler-side: the job's group was dispatched to the workers.
    /// Time since the wait began was a deliberate batching hold; the
    /// queue clock restarts here.
    pub(crate) fn mark_batch_dispatch(&self) {
        let now = self.elapsed_us();
        let from = self.wait_from_us.swap(now, Relaxed);
        self.stage_us[Stage::BatchHold.index()].fetch_add(now.saturating_sub(from), Relaxed);
    }

    /// Worker-side: the job was popped from the worker queue.
    pub(crate) fn mark_picked(&self) {
        let now = self.elapsed_us();
        let from = self.wait_from_us.swap(now, Relaxed);
        self.stage_us[Stage::Queue.index()].fetch_add(now.saturating_sub(from), Relaxed);
    }

    /// Worker-side: handler execution took `dur` and just finished. Set
    /// directly for jointly-executed batch jobs that never run through
    /// the per-job execution guard (their decode/key/serialize work is
    /// shared, so the whole window attributes to the kernel stage).
    pub(crate) fn set_exec_ending_now(&self, dur: Duration) {
        let now = self.elapsed_us();
        let dur_us = dur.as_micros() as u64;
        self.exec_begin_us
            .store(now.saturating_sub(dur_us), Relaxed);
        self.exec_us.store(dur_us, Relaxed);
    }
}

/// One kernel sub-span captured by a deep sample, offsets relative to
/// the request's accept time.
#[derive(Debug, Clone)]
pub struct SubSpan {
    /// Span name as recorded by `fhe_math::telemetry` (`Rotate`,
    /// `KeySwitch`, `ModUp`, `NTT`…).
    pub name: &'static str,
    /// Span open, µs after the request was accepted.
    pub begin_us: u64,
    /// Span close, µs after the request was accepted.
    pub end_us: u64,
}

/// A completed request timeline, as retained by the ring buffer and
/// rendered by the Perfetto exporter.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// Request id.
    pub id: u64,
    /// Opcode name.
    pub op: &'static str,
    /// Response status byte (0 = success).
    pub status: u8,
    /// The shard that served the request (always 0 pre-sharding).
    pub shard: u32,
    /// Accept time, µs after the server started.
    pub start_us: u64,
    /// End-to-end latency in µs (accept → reply written).
    pub total_us: u64,
    /// Per-stage attributed µs, indexed like [`Stage::ALL`].
    pub stages: [u64; Stage::ALL.len()],
    /// Offset of the enqueue stamp (start of the hold/queue spans).
    pub enqueued_us: u64,
    /// Offset where handler execution began.
    pub exec_begin_us: u64,
    /// Handler execution time in µs.
    pub exec_us: u64,
    /// Whether this request was deep-sampled.
    pub deep: bool,
    /// Kernel sub-spans (non-empty only for deep samples under the
    /// `telemetry` feature).
    pub subspans: Vec<SubSpan>,
}

impl FinishedTrace {
    /// Attributed µs for one stage.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.stages[stage.index()]
    }

    /// The stage that accounts for the largest share of this request's
    /// latency.
    pub fn dominant_stage(&self) -> Stage {
        let mut best = Stage::ALL[0];
        let mut best_us = 0u64;
        for s in Stage::ALL {
            if self.stage_us(s) > best_us {
                best_us = self.stage_us(s);
                best = s;
            }
        }
        best
    }

    /// One structured log line: `slow_request id=… op=… …` with every
    /// stage and the dominant-stage annotation.
    pub fn log_line(&self) -> String {
        use std::fmt::Write as _;
        let mut line = format!(
            "slow_request id={} op={} status={} total_us={} shard={} dominant={}",
            self.id,
            self.op,
            self.status,
            self.total_us,
            self.shard,
            self.dominant_stage().name()
        );
        for s in Stage::ALL {
            let _ = write!(line, " {}_us={}", s.name(), self.stage_us(s));
        }
        line
    }
}

/// Fixed-capacity ring of finished timelines plus one dedicated slot
/// that always retains the slowest request seen — a burst of fast
/// requests can age ordinary entries out, but never the tail outlier.
struct TraceRing {
    slots: Vec<Mutex<Option<FinishedTrace>>>,
    head: AtomicUsize,
    slowest: Mutex<Option<FinishedTrace>>,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            slowest: Mutex::new(None),
        }
    }

    fn push(&self, t: FinishedTrace) {
        {
            let mut slowest = self.slowest.lock().expect("poisoned");
            if slowest.as_ref().is_none_or(|s| t.total_us > s.total_us) {
                *slowest = Some(t.clone());
            }
        }
        let idx = self.head.fetch_add(1, Relaxed) % self.slots.len();
        *self.slots[idx].lock().expect("poisoned") = Some(t);
    }

    /// Recent traces (oldest first), with the retained slowest appended
    /// if it already aged out of the ring proper.
    fn snapshot(&self) -> Vec<FinishedTrace> {
        let head = self.head.load(Relaxed);
        let n = self.slots.len();
        let mut out: Vec<FinishedTrace> = (0..n)
            .filter_map(|i| self.slots[(head + i) % n].lock().expect("poisoned").clone())
            .collect();
        if let Some(s) = self.slowest.lock().expect("poisoned").clone() {
            if !out.iter().any(|t| t.id == s.id) {
                out.push(s);
            }
        }
        out
    }

    fn slowest(&self) -> Option<FinishedTrace> {
        self.slowest.lock().expect("poisoned").clone()
    }
}

thread_local! {
    /// The trace of the request the current worker thread is executing,
    /// letting `decode`/`key`/`serialize` helpers attribute their time
    /// without threading a handle through every handler signature.
    static CURRENT: RefCell<Option<Arc<RequestTrace>>> = const { RefCell::new(None) };
}

/// Times `f` against `stage` of the request the current thread is
/// executing; a plain passthrough when no trace is active.
pub(crate) fn time_stage<T>(stage: Stage, f: impl FnOnce() -> T) -> T {
    let trace = CURRENT.with(|c| c.borrow().clone());
    match trace {
        None => f(),
        Some(t) => {
            let t0 = Instant::now();
            let r = f();
            t.add_stage(stage, t0.elapsed());
            r
        }
    }
}

/// Adds an externally-measured duration to `stage` of `trace` (used for
/// a batch's shared pin phase, which every member waited out).
pub(crate) fn add_stage(trace: &RequestTrace, stage: Stage, d: Duration) {
    trace.add_stage(stage, d);
}

/// The server's tracing state: id source, deep-sampling gate, the ring
/// of finished timelines, and the slow-request log.
pub(crate) struct Observer {
    cfg: ObsConfig,
    /// When the server started; `FinishedTrace::start_us` offsets are
    /// relative to it so one dump shares a single timebase.
    epoch: Instant,
    next_id: AtomicU64,
    deep_tick: AtomicU64,
    /// At most one deep sample at a time — the math layer's trace
    /// buffer is global.
    deep_inflight: AtomicBool,
    ring: TraceRing,
    slow: Mutex<VecDeque<String>>,
}

/// Retained slow-request log lines.
const SLOW_LOG_CAPACITY: usize = 128;

impl Observer {
    pub(crate) fn new(cfg: ObsConfig) -> Self {
        Self {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            deep_tick: AtomicU64::new(0),
            deep_inflight: AtomicBool::new(false),
            ring: TraceRing::new(cfg.ring_capacity),
            slow: Mutex::new(VecDeque::new()),
            cfg,
        }
    }

    /// Opens a trace for a freshly-parsed request on `shard`; `None`
    /// when recording is disabled.
    pub(crate) fn begin(&self, op: Opcode, shard: u32) -> Option<Arc<RequestTrace>> {
        if !self.cfg.enabled {
            return None;
        }
        let deep = self.cfg.deep_sample_every != 0
            && self
                .deep_tick
                .fetch_add(1, Relaxed)
                .is_multiple_of(self.cfg.deep_sample_every);
        Some(Arc::new(RequestTrace {
            id: self.next_id.fetch_add(1, Relaxed),
            op,
            shard,
            start: Instant::now(),
            deep,
            enqueued_us: AtomicU64::new(0),
            wait_from_us: AtomicU64::new(0),
            exec_begin_us: AtomicU64::new(0),
            exec_us: AtomicU64::new(0),
            stage_us: Default::default(),
            subspans: Mutex::new(Vec::new()),
        }))
    }

    /// Marks handler execution for `trace` on the current thread:
    /// stamps the execution window, installs the thread-local for stage
    /// attribution, and — for a deep sample — bridges into the math
    /// layer's span tracing. Drop the guard *before* sending the reply,
    /// so the reader can never finish a trace mid-update.
    pub(crate) fn enter_exec(&self, trace: &Arc<RequestTrace>) -> ExecGuard<'_> {
        trace.exec_begin_us.store(trace.elapsed_us(), Relaxed);
        CURRENT.with(|c| *c.borrow_mut() = Some(trace.clone()));
        let deep = trace.deep
            && self
                .deep_inflight
                .compare_exchange(false, true, Relaxed, Relaxed)
                .is_ok();
        let deep = if deep {
            if fhe_math::telemetry::trace_try_start() {
                true
            } else {
                self.deep_inflight.store(false, Relaxed);
                false
            }
        } else {
            false
        };
        ExecGuard {
            obs: self,
            trace: trace.clone(),
            start: Instant::now(),
            deep,
        }
    }

    /// Commits a finished request: derives the kernel remainder,
    /// observes the per-stage and end-to-end histograms, pushes the
    /// timeline into the ring and (over threshold) the slow log.
    pub(crate) fn finish(&self, metrics: &Metrics, trace: &RequestTrace, status: u8) {
        let total_us = trace.elapsed_us();
        let exec_us = trace.exec_us.load(Relaxed);
        let mut stages = [0u64; Stage::ALL.len()];
        for s in Stage::ALL {
            stages[s.index()] = trace.stage_us[s.index()].load(Relaxed);
        }
        // The kernel stage is the handler remainder: execution time not
        // attributed to decode, key access, or serialization.
        stages[Stage::Kernel.index()] = exec_us.saturating_sub(
            stages[Stage::Decode.index()]
                + stages[Stage::Key.index()]
                + stages[Stage::Serialize.index()],
        );
        for s in Stage::ALL {
            metrics
                .stage_latency(s)
                .observe(Duration::from_micros(stages[s.index()]));
        }
        metrics
            .e2e_latency()
            .observe(Duration::from_micros(total_us));

        let finished = FinishedTrace {
            id: trace.id,
            op: trace.op.name(),
            status,
            shard: trace.shard,
            start_us: (trace.start - self.epoch).as_micros() as u64,
            total_us,
            stages,
            enqueued_us: trace.enqueued_us.load(Relaxed),
            exec_begin_us: trace.exec_begin_us.load(Relaxed),
            exec_us,
            deep: trace.deep,
            subspans: trace.subspans.lock().expect("poisoned").clone(),
        };
        if total_us >= self.cfg.slow_threshold.as_micros() as u64 {
            let mut slow = self.slow.lock().expect("poisoned");
            if slow.len() == SLOW_LOG_CAPACITY {
                slow.pop_front();
            }
            slow.push_back(finished.log_line());
        }
        self.ring.push(finished);
    }

    /// Recent finished timelines, oldest first (the retained slowest
    /// appended if it aged out of the ring).
    pub(crate) fn recent(&self) -> Vec<FinishedTrace> {
        self.ring.snapshot()
    }

    /// The slowest request observed since the server started.
    pub(crate) fn slowest(&self) -> Option<FinishedTrace> {
        self.ring.slowest()
    }

    /// The slow-request log, one structured line per request, oldest
    /// first.
    pub(crate) fn slow_log(&self) -> String {
        let slow = self.slow.lock().expect("poisoned");
        let mut out = String::new();
        for line in slow.iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Chrome trace-event JSON of every retained timeline (same format
    /// as the simulator's exporter — loadable in Perfetto / `chrome://tracing`).
    pub(crate) fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.recent())
    }
}

/// RAII execution marker returned by [`Observer::enter_exec`].
pub(crate) struct ExecGuard<'a> {
    obs: &'a Observer,
    trace: Arc<RequestTrace>,
    start: Instant,
    deep: bool,
}

impl Drop for ExecGuard<'_> {
    fn drop(&mut self) {
        self.trace
            .exec_us
            .store(self.start.elapsed().as_micros() as u64, Relaxed);
        CURRENT.with(|c| *c.borrow_mut() = None);
        if self.deep {
            let records = fhe_math::telemetry::trace_stop();
            self.obs.deep_inflight.store(false, Relaxed);
            let base = self.trace.exec_begin_us.load(Relaxed);
            *self.trace.subspans.lock().expect("poisoned") = subspans_from_records(&records, base);
        }
    }
}

/// Pairs `SpanBegin`/`SpanEnd` records into [`SubSpan`]s, shifting the
/// trace-relative timestamps onto the request timeline (`base` = the
/// request offset where the math trace started). Unclosed spans (a
/// panic mid-kernel) are dropped.
fn subspans_from_records(records: &[fhe_math::telemetry::TraceRecord], base: u64) -> Vec<SubSpan> {
    use fhe_math::telemetry::TraceRecord;
    let mut out = Vec::new();
    let mut stack: Vec<(usize, u64, &'static str)> = Vec::new();
    for r in records {
        match *r {
            TraceRecord::SpanBegin { name, ts_us } => {
                stack.push((out.len(), ts_us, name));
                out.push(SubSpan {
                    name,
                    begin_us: base + ts_us,
                    end_us: base + ts_us,
                });
            }
            TraceRecord::SpanEnd { name, ts_us } => {
                // Spans are RAII so ends match opens LIFO; tolerate
                // interleavings from other threads by matching by name.
                if let Some(pos) = stack.iter().rposition(|&(_, _, n)| n == name) {
                    let (idx, _, _) = stack.remove(pos);
                    out[idx].end_us = base + ts_us;
                }
            }
            _ => {}
        }
    }
    // Drop never-closed spans (their end would lie).
    let open: Vec<usize> = stack.iter().map(|&(idx, _, _)| idx).collect();
    let mut i = 0;
    out.retain(|_| {
        let keep = !open.contains(&i);
        i += 1;
        keep
    });
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders timelines as Chrome trace-event JSON, one event per line:
/// a complete (`"ph": "X"`) slice per request, per attributed stage,
/// and per deep kernel sub-span. Stage slices inside the execution
/// window are an
/// *attribution* view — decode/key/serialize/kernel time drawn as
/// consecutive slices, since the real intervals interleave. Deep
/// sub-spans keep their true timestamps and render on a companion
/// `kernels` track so the two views never violate slice nesting.
pub fn chrome_trace_json(traces: &[FinishedTrace]) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    let mut event = |out: &mut String, body: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&body);
    };
    event(
        &mut out,
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
         \"args\": {\"name\": \"fhe-serve\"}}"
            .into(),
    );
    let slice = |name: &str, ts: u64, dur: u64, tid: u64| {
        format!(
            "{{\"name\": \"{}\", \"cat\": \"request\", \"ph\": \"X\", \
             \"ts\": {ts}, \"dur\": {dur}, \"pid\": 1, \"tid\": {tid}}}",
            json_escape(name)
        )
    };
    for t in traces {
        let tid = t.id;
        event(
            &mut out,
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"req {} {}\"}}}}",
                t.id, t.op
            ),
        );
        event(
            &mut out,
            slice(
                &format!("request:{} (status {})", t.op, t.status),
                t.start_us,
                t.total_us.max(1),
                tid,
            ),
        );
        // Wait spans at their true offsets: hold begins at enqueue,
        // queue follows it (dispatch order on the real timeline).
        let mut cursor = t.start_us + t.enqueued_us;
        for s in [Stage::BatchHold, Stage::Queue] {
            let dur = t.stage_us(s);
            if dur > 0 {
                event(&mut out, slice(s.name(), cursor, dur, tid));
                cursor += dur;
            }
        }
        // Execution window with its attribution slices.
        if t.exec_us > 0 {
            let exec_start = t.start_us + t.exec_begin_us;
            event(&mut out, slice("exec", exec_start, t.exec_us, tid));
            let mut cursor = exec_start;
            for s in [Stage::Decode, Stage::Key, Stage::Kernel, Stage::Serialize] {
                let dur = t
                    .stage_us(s)
                    .min(t.exec_us.saturating_sub(cursor - exec_start));
                if dur > 0 {
                    event(&mut out, slice(s.name(), cursor, dur, tid));
                    cursor += dur;
                }
            }
        }
        // The write stage ends when the request does.
        let write_us = t.stage_us(Stage::Write);
        if write_us > 0 {
            let ts = (t.start_us + t.total_us).saturating_sub(write_us);
            event(&mut out, slice("write", ts, write_us, tid));
        }
        // Deep kernel sub-spans on a companion track, true timestamps.
        if !t.subspans.is_empty() {
            let ktid = t.id + KERNEL_TRACK_OFFSET;
            event(
                &mut out,
                format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {ktid}, \
                     \"args\": {{\"name\": \"req {} kernels\"}}}}",
                    t.id
                ),
            );
            for s in &t.subspans {
                event(
                    &mut out,
                    slice(
                        s.name,
                        t.start_us + s.begin_us,
                        (s.end_us - s.begin_us).max(1),
                        ktid,
                    ),
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Offset separating a request's attribution track from its deep
/// kernel-span track in the exported trace.
pub const KERNEL_TRACK_OFFSET: u64 = 1 << 32;

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(id: u64, total_us: u64) -> FinishedTrace {
        let mut stages = [0u64; Stage::ALL.len()];
        stages[Stage::Kernel.index()] = total_us / 2;
        stages[Stage::Queue.index()] = total_us / 4;
        FinishedTrace {
            id,
            op: "rotate",
            status: 0,
            shard: 0,
            start_us: id * 1000,
            total_us,
            stages,
            enqueued_us: 1,
            exec_begin_us: total_us / 4,
            exec_us: total_us / 2,
            deep: false,
            subspans: Vec::new(),
        }
    }

    #[test]
    fn ring_never_loses_the_slowest_request() {
        let ring = TraceRing::new(4);
        // The slowest request lands early, then a long burst of fast
        // requests wraps the ring many times over.
        ring.push(finished(1, 900_000));
        for id in 2..100 {
            ring.push(finished(id, 1_000 + id));
        }
        let slowest = ring.slowest().expect("retained");
        assert_eq!(slowest.id, 1);
        assert_eq!(slowest.total_us, 900_000);
        // The snapshot still surfaces it even though the ring proper
        // wrapped dozens of times.
        let snap = ring.snapshot();
        assert!(snap.iter().any(|t| t.id == 1));
        // And a new, slower request replaces it.
        ring.push(finished(200, 2_000_000));
        assert_eq!(ring.slowest().unwrap().id, 200);
    }

    #[test]
    fn dominant_stage_and_log_line() {
        let t = finished(7, 1_000);
        assert_eq!(t.dominant_stage(), Stage::Kernel);
        let line = t.log_line();
        assert!(line.starts_with("slow_request id=7 op=rotate status=0 total_us=1000"));
        assert!(line.contains("dominant=kernel"));
        for s in Stage::ALL {
            assert!(line.contains(&format!(" {}_us=", s.name())), "{line}");
        }
    }

    #[test]
    fn observer_records_and_thresholds() {
        let metrics = Metrics::new();
        let obs = Observer::new(ObsConfig {
            enabled: true,
            ring_capacity: 8,
            deep_sample_every: 0,
            slow_threshold: Duration::ZERO,
        });
        let trace = obs.begin(Opcode::Add, 0).expect("enabled");
        trace.mark_enqueued();
        trace.mark_picked();
        {
            let _g = obs.enter_exec(&trace);
            add_stage(&trace, Stage::Decode, Duration::from_micros(5));
        }
        obs.finish(&metrics, &trace, 0);
        assert_eq!(obs.recent().len(), 1);
        assert_eq!(metrics.e2e_latency().count(), 1);
        assert_eq!(metrics.stage_latency(Stage::Decode).count(), 1);
        // Zero threshold: everything is a slow request.
        assert!(obs.slow_log().starts_with("slow_request id=1 op=add"));

        let off = Observer::new(ObsConfig {
            enabled: false,
            ..ObsConfig::baseline()
        });
        assert!(off.begin(Opcode::Add, 0).is_none());
    }

    #[test]
    fn stage_taxonomy_is_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "queue",
                "batch_hold",
                "decode",
                "key",
                "kernel",
                "serialize",
                "write"
            ]
        );
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn chrome_trace_json_is_balanced_and_ordered() {
        let traces = vec![finished(1, 1_000), finished(2, 2_000)];
        let json = chrome_trace_json(&traces);
        assert!(json.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"name\": \"request:rotate (status 0)\""));
        assert!(json.contains("\"name\": \"kernel\""));
        assert!(json.contains("\"name\": \"queue\""));
    }

    #[test]
    fn subspan_pairing_tolerates_unclosed_spans() {
        use fhe_math::telemetry::TraceRecord;
        let records = [
            TraceRecord::SpanBegin {
                name: "Rotate",
                ts_us: 0,
            },
            TraceRecord::SpanBegin {
                name: "KeySwitch",
                ts_us: 2,
            },
            TraceRecord::SpanEnd {
                name: "KeySwitch",
                ts_us: 9,
            },
            TraceRecord::SpanBegin {
                name: "Orphan",
                ts_us: 10,
            },
            TraceRecord::SpanEnd {
                name: "Rotate",
                ts_us: 12,
            },
        ];
        let spans = subspans_from_records(&records, 100);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "Rotate");
        assert_eq!((spans[0].begin_us, spans[0].end_us), (100, 112));
        assert_eq!(spans[1].name, "KeySwitch");
        assert_eq!((spans[1].begin_us, spans[1].end_us), (102, 109));
    }

    #[test]
    fn env_config_parses_and_ignores_garbage() {
        // Only exercise the pure parsing; the env-reading path is
        // covered by construction (set_var in tests races other tests).
        let cfg = ObsConfig::baseline();
        assert!(cfg.enabled);
        assert_eq!(cfg.ring_capacity, 128);
        assert_eq!(cfg.deep_sample_every, 64);
        assert_eq!(cfg.slow_threshold, Duration::from_millis(500));
    }
}
