//! The wire protocol: length-prefixed frames over the `MADf`
//! serialization.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! [u32 length][u8 protocol version][u8 opcode | status][body…]
//! ```
//!
//! with the length counting everything after itself (so `2 + body`),
//! little-endian throughout like the `MADf` payloads it carries. Requests
//! put an [`Opcode`] in the tag byte; responses put a status there — zero
//! for success, otherwise an [`ErrorCode`] with a UTF-8 diagnostic as the
//! body. Ciphertexts, plaintexts and keys travel as their
//! [`ckks::serialize`] byte forms, nested inside the frame body with
//! `u32` length prefixes wherever more than one payload shares a body.

use std::io::{Read, Write};

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default ceiling on a single frame's length field (64 MiB) — large
/// enough for a full rotation-key bundle at demo scale, small enough to
/// reject garbage lengths before allocating.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 64 << 20;

/// Request opcodes. Session management sits below 0x10, evaluation ops at
/// 0x10–0x1f, introspection at 0x20.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Open a session. The request body may be empty, or carry an
    /// optional leading [`BatchHint`] byte (unknown values and any extra
    /// trailing bytes are tolerated and read as [`BatchHint::Auto`], so
    /// older clients and fuzzed frames stay valid). The response body is
    /// the `u64` session id, a flags byte (bit 0: batching scheduler
    /// enabled), then the server's kernel-backend name in UTF-8.
    Hello = 0x01,
    /// Upload the relinearization key (compressed seeded form welcome).
    UploadRelin = 0x02,
    /// Upload a Galois (rotation) key bundle.
    UploadGalois = 0x03,
    /// Close a session and drop its keys from store and cache.
    CloseSession = 0x04,
    /// Upload a serialized encrypted-program (`MADP` wire form). The body
    /// is the `u64` session id followed by the raw program bytes; the
    /// server validates the program against its own parameters and
    /// replies with the `u64` program id to pass to [`Opcode::RunProgram`].
    UploadProgram = 0x05,
    /// Homomorphic addition of two ciphertexts.
    Add = 0x10,
    /// Ciphertext × plaintext multiplication (with rescale).
    PtMult = 0x12,
    /// Ciphertext × ciphertext multiplication (needs the relin key).
    Mult = 0x13,
    /// Slot rotation (needs the matching Galois key).
    Rotate = 0x14,
    /// Drop one scale limb.
    Rescale = 0x15,
    /// BSGS plaintext matrix–vector product.
    Bsgs = 0x16,
    /// One encrypted HELR logistic-regression training step.
    HelrStep = 0x17,
    /// Execute a previously uploaded program: `u64` session id, `u64`
    /// program id, then the program's declared inputs in declaration
    /// order (ciphertexts as blobs, plaintext vectors and matrix
    /// diagonals as `f64` pairs). The response carries one ciphertext
    /// blob per program output, in output order.
    RunProgram = 0x18,
    /// Fetch the server's plain-text metrics dump.
    Metrics = 0x20,
    /// Fetch recent request timelines. An empty body (or a leading `0`
    /// byte) returns Chrome trace-event JSON for Perfetto; a leading `1`
    /// byte returns the structured slow-request log instead.
    TraceDump = 0x21,
}

impl Opcode {
    /// Decodes a tag byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0x01 => Opcode::Hello,
            0x02 => Opcode::UploadRelin,
            0x03 => Opcode::UploadGalois,
            0x04 => Opcode::CloseSession,
            0x05 => Opcode::UploadProgram,
            0x10 => Opcode::Add,
            0x12 => Opcode::PtMult,
            0x13 => Opcode::Mult,
            0x14 => Opcode::Rotate,
            0x15 => Opcode::Rescale,
            0x16 => Opcode::Bsgs,
            0x17 => Opcode::HelrStep,
            0x18 => Opcode::RunProgram,
            0x20 => Opcode::Metrics,
            0x21 => Opcode::TraceDump,
            _ => return None,
        })
    }

    /// Short lower-case name used as the metrics label.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Hello => "hello",
            Opcode::UploadRelin => "upload_relin",
            Opcode::UploadGalois => "upload_galois",
            Opcode::CloseSession => "close_session",
            Opcode::UploadProgram => "upload_program",
            Opcode::Add => "add",
            Opcode::PtMult => "pt_mult",
            Opcode::Mult => "mult",
            Opcode::Rotate => "rotate",
            Opcode::Rescale => "rescale",
            Opcode::Bsgs => "bsgs",
            Opcode::HelrStep => "helr_step",
            Opcode::RunProgram => "run_program",
            Opcode::Metrics => "metrics",
            Opcode::TraceDump => "trace_dump",
        }
    }

    /// Every opcode, for metrics registration.
    pub const ALL: [Opcode; 15] = [
        Opcode::Hello,
        Opcode::UploadRelin,
        Opcode::UploadGalois,
        Opcode::CloseSession,
        Opcode::UploadProgram,
        Opcode::Add,
        Opcode::PtMult,
        Opcode::Mult,
        Opcode::Rotate,
        Opcode::Rescale,
        Opcode::Bsgs,
        Opcode::HelrStep,
        Opcode::RunProgram,
        Opcode::Metrics,
        Opcode::TraceDump,
    ];
}

/// Per-session batching hint carried in the optional first byte of a
/// [`Opcode::Hello`] body.
///
/// The hint tells the scheduler how to trade latency for key reuse on
/// this session's keyed operations (Mult/Rotate/Bsgs/HelrStep):
///
/// - `Auto`: batch opportunistically — requests coalesce only while the
///   worker pool is busy, so an idle server adds no hold latency.
/// - `Interactive`: never hold a request to form a batch.
/// - `Throughput`: always hold up to the configured max-batch-delay (or
///   until the batch fills), maximizing key reuse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum BatchHint {
    /// Batch only under load (the default).
    #[default]
    Auto = 0,
    /// Latency first: dispatch immediately, never hold.
    Interactive = 1,
    /// Throughput first: always wait out the batching window.
    Throughput = 2,
}

impl BatchHint {
    /// Decodes a hint byte; unknown values read as [`BatchHint::Auto`]
    /// so the Hello body stays forward-compatible.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => BatchHint::Interactive,
            2 => BatchHint::Throughput,
            _ => BatchHint::Auto,
        }
    }
}

/// Structured error codes carried in the response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Frame shorter than its header, or the length field lied.
    BadFrame = 1,
    /// The frame's protocol version byte is not [`PROTOCOL_VERSION`].
    UnsupportedVersion = 2,
    /// The opcode byte names no operation.
    UnknownOpcode = 3,
    /// The session id is unknown (never opened, or closed).
    NoSession = 4,
    /// The operation needs a key the session has not uploaded.
    MissingKey = 5,
    /// The body failed structural validation (bad `MADf` payload,
    /// mismatched lengths, out-of-range field).
    Malformed = 6,
    /// The request queue is full — back off and retry.
    Overloaded = 7,
    /// The request sat in the queue past its deadline.
    DeadlineExceeded = 8,
    /// The operation panicked or otherwise failed server-side.
    Internal = 9,
    /// The frame length exceeds the server's configured maximum.
    FrameTooLarge = 10,
}

impl ErrorCode {
    /// Decodes a status byte (zero is success, not an error code).
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownOpcode,
            4 => ErrorCode::NoSession,
            5 => ErrorCode::MissingKey,
            6 => ErrorCode::Malformed,
            7 => ErrorCode::Overloaded,
            8 => ErrorCode::DeadlineExceeded,
            9 => ErrorCode::Internal,
            10 => ErrorCode::FrameTooLarge,
            _ => return None,
        })
    }
}

impl ErrorCode {
    /// Whether a client may transparently retry after this error.
    ///
    /// Transient conditions — pushback ([`ErrorCode::Overloaded`]), queue
    /// congestion ([`ErrorCode::DeadlineExceeded`]), an isolated worker
    /// panic ([`ErrorCode::Internal`]), or a lost server-side session
    /// ([`ErrorCode::NoSession`], which additionally needs session
    /// re-setup) — are retryable: every evaluation opcode is a pure
    /// function of its request body, so re-sending the same bytes cannot
    /// double-apply anything. Client-side mistakes (malformed payloads,
    /// missing keys, protocol misuse) are not: resending identical bytes
    /// would fail identically.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded
                | ErrorCode::DeadlineExceeded
                | ErrorCode::Internal
                | ErrorCode::NoSession
        )
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::BadFrame => "bad frame",
            ErrorCode::UnsupportedVersion => "unsupported protocol version",
            ErrorCode::UnknownOpcode => "unknown opcode",
            ErrorCode::NoSession => "no such session",
            ErrorCode::MissingKey => "required key not uploaded",
            ErrorCode::Malformed => "malformed request body",
            ErrorCode::Overloaded => "server overloaded",
            ErrorCode::DeadlineExceeded => "request deadline exceeded",
            ErrorCode::Internal => "internal server error",
            ErrorCode::FrameTooLarge => "frame exceeds size limit",
        };
        f.write_str(s)
    }
}

/// Writes one frame: `[len][version][tag][body]`.
pub fn write_frame<W: Write>(w: &mut W, tag: u8, body: &[u8]) -> std::io::Result<()> {
    let len = (2 + body.len()) as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[PROTOCOL_VERSION, tag])?;
    w.write_all(body)?;
    w.flush()
}

/// The exact byte sequence [`write_frame`] would emit, as one buffer.
/// Used where a frame must be manipulated before hitting the wire — the
/// chaos layer's torn-frame injection, fuzzers mutating valid frames.
pub fn frame_bytes(tag: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + body.len());
    out.extend_from_slice(&((2 + body.len()) as u32).to_le_bytes());
    out.push(PROTOCOL_VERSION);
    out.push(tag);
    out.extend_from_slice(body);
    out
}

/// A decoded frame.
#[derive(Debug)]
pub struct Frame {
    /// The version byte as sent (the reader does not reject mismatches —
    /// that is the server's job, so it can answer with a structured error).
    pub version: u8,
    /// Opcode (requests) or status (responses).
    pub tag: u8,
    /// Frame body.
    pub body: Vec<u8>,
}

/// Outcome of [`read_frame`].
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame arrived.
    Frame(Frame),
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// The frame's length field exceeds `max_len`; the connection is no
    /// longer in sync and must be dropped after an error response.
    TooLarge(u32),
}

/// Reads one frame. `max_len` bounds the length field; I/O errors
/// (including read timeouts) surface as `Err`.
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> std::io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no bytes at all) from a torn frame.
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(FrameRead::Eof),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len < 2 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame length below header size",
        ));
    }
    if len > max_len {
        return Ok(FrameRead::TooLarge(len));
    }
    let mut rest = vec![0u8; len as usize];
    r.read_exact(&mut rest)?;
    let body = rest.split_off(2);
    Ok(FrameRead::Frame(Frame {
        version: rest[0],
        tag: rest[1],
        body,
    }))
}

/// What a read buffer holds at a frame boundary — the nonblocking
/// analogue of [`FrameRead`], computed without consuming anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStatus {
    /// Not enough buffered bytes for a verdict or a full frame yet.
    Incomplete,
    /// One complete frame is buffered; its total wire size (4-byte
    /// length prefix included) is `wire_len`. [`take_frame`] detaches it.
    Ready {
        /// Bytes the frame occupies at the front of the buffer.
        wire_len: usize,
    },
    /// The length field exceeds the ceiling; the stream is out of sync
    /// and must be closed after an error response, mirroring
    /// [`FrameRead::TooLarge`].
    TooLarge(u32),
    /// The length field is below the 2-byte header minimum — the same
    /// condition [`read_frame`] reports as an `InvalidData` error.
    Corrupt,
}

/// Classifies the front of `buf` without consuming it. `max_len` bounds
/// the length field exactly as in [`read_frame`], so a byte stream fed
/// through a buffer yields the same verdicts as the blocking reader.
pub fn peek_frame(buf: &[u8], max_len: u32) -> FrameStatus {
    let Some(len_bytes) = buf.get(..4) else {
        return FrameStatus::Incomplete;
    };
    let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes"));
    if len < 2 {
        return FrameStatus::Corrupt;
    }
    if len > max_len {
        return FrameStatus::TooLarge(len);
    }
    let wire_len = 4 + len as usize;
    if buf.len() < wire_len {
        return FrameStatus::Incomplete;
    }
    FrameStatus::Ready { wire_len }
}

/// Detaches the complete frame at the front of `buf`, which
/// [`peek_frame`] must have reported [`FrameStatus::Ready`] for.
///
/// # Panics
///
/// Panics if the buffer does not start with a complete frame.
pub fn take_frame(buf: &mut Vec<u8>) -> Frame {
    let FrameStatus::Ready { wire_len } = peek_frame(buf, u32::MAX) else {
        panic!("take_frame without a Ready peek");
    };
    let mut wire: Vec<u8> = buf.drain(..wire_len).collect();
    let body = wire.split_off(6);
    Frame {
        version: wire[4],
        tag: wire[5],
        body,
    }
}

/// Incremental little-endian body writer for multi-payload requests.
#[derive(Default)]
pub struct BodyWriter(pub Vec<u8>);

impl BodyWriter {
    /// An empty body.
    pub fn new() -> Self {
        Self::default()
    }
    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    /// Appends an `i64`.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    /// Appends an `f64` as IEEE-754 bits.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }
    /// Appends raw bytes with no length prefix (trailing payload).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.0.extend_from_slice(bytes);
        self
    }
    /// Appends a `u32` length prefix followed by the bytes.
    pub fn blob(&mut self, bytes: &[u8]) -> &mut Self {
        self.u32(bytes.len() as u32);
        self.0.extend_from_slice(bytes);
        self
    }
}

/// Incremental body reader; every method fails `Malformed`-style with
/// `None` on underrun rather than panicking.
pub struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    /// Wraps a body slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    /// Bytes not yet consumed (a trailing payload).
    pub fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }
    /// True when everything was consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    /// Reads a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    /// Reads a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
    /// Reads an `i64`.
    pub fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|b| i64::from_le_bytes(b.try_into().unwrap()))
    }
    /// Reads an `f64` from IEEE-754 bits.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
    /// Reads a `u32`-length-prefixed byte blob.
    pub fn blob(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, Opcode::Add as u8, b"payload").unwrap();
        let mut cursor = &buf[..];
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).unwrap() {
            FrameRead::Frame(f) => {
                assert_eq!(f.version, PROTOCOL_VERSION);
                assert_eq!(f.tag, Opcode::Add as u8);
                assert_eq!(f.body, b"payload");
            }
            other => panic!("unexpected {other:?}"),
        }
        // A second read on the drained cursor is a clean EOF.
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn oversize_frames_are_flagged_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[PROTOCOL_VERSION, 0x10]);
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor, 1024).unwrap(),
            FrameRead::TooLarge(len) if len == u32::MAX
        ));
    }

    #[test]
    fn torn_length_prefix_is_an_error_not_eof() {
        let mut cursor: &[u8] = &[3u8, 0];
        assert!(read_frame(&mut cursor, 1024).is_err());
    }

    #[test]
    fn opcode_and_error_tables_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
            assert!(!op.name().is_empty());
        }
        assert_eq!(Opcode::from_u8(0xee), None);
        for v in 1..=10u8 {
            let code = ErrorCode::from_u8(v).unwrap();
            assert_eq!(code as u8, v);
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(99), None);
    }

    #[test]
    fn frame_bytes_matches_write_frame() {
        let mut streamed = Vec::new();
        write_frame(&mut streamed, Opcode::Mult as u8, b"abc").unwrap();
        assert_eq!(streamed, frame_bytes(Opcode::Mult as u8, b"abc"));
    }

    #[test]
    fn retryable_errors_are_exactly_the_transient_ones() {
        for v in 1..=10u8 {
            let code = ErrorCode::from_u8(v).unwrap();
            let transient = matches!(
                code,
                ErrorCode::Overloaded
                    | ErrorCode::DeadlineExceeded
                    | ErrorCode::Internal
                    | ErrorCode::NoSession
            );
            assert_eq!(code.is_retryable(), transient, "{code:?}");
        }
    }

    #[test]
    fn peek_take_mirror_the_blocking_reader() {
        let mut buf = frame_bytes(Opcode::Rotate as u8, b"body bytes");
        buf.extend_from_slice(&frame_bytes(Opcode::Add as u8, b"x"));

        // Every prefix short of the first frame is Incomplete.
        let first_len = 6 + b"body bytes".len();
        for cut in 0..first_len {
            assert_eq!(
                peek_frame(&buf[..cut], 1024),
                FrameStatus::Incomplete,
                "cut {cut}"
            );
        }
        assert_eq!(
            peek_frame(&buf, 1024),
            FrameStatus::Ready {
                wire_len: first_len
            }
        );
        let f = take_frame(&mut buf);
        assert_eq!(f.version, PROTOCOL_VERSION);
        assert_eq!(f.tag, Opcode::Rotate as u8);
        assert_eq!(f.body, b"body bytes");
        // The second frame is now at the front, intact.
        let f = take_frame(&mut buf);
        assert_eq!(f.tag, Opcode::Add as u8);
        assert_eq!(f.body, b"x");
        assert!(buf.is_empty());
        assert_eq!(peek_frame(&buf, 1024), FrameStatus::Incomplete);
    }

    #[test]
    fn peek_flags_oversize_and_corrupt_lengths() {
        let mut oversize = Vec::new();
        oversize.extend_from_slice(&u32::MAX.to_le_bytes());
        oversize.extend_from_slice(&[PROTOCOL_VERSION, 0x10]);
        assert_eq!(peek_frame(&oversize, 1024), FrameStatus::TooLarge(u32::MAX));
        // A length below the 2-byte header can never frame anything.
        let corrupt = 1u32.to_le_bytes();
        assert_eq!(peek_frame(&corrupt, 1024), FrameStatus::Corrupt);
    }

    #[test]
    fn body_reader_fails_closed_on_underrun() {
        let mut w = BodyWriter::new();
        w.u64(7).blob(b"abc").i64(-2).f64(0.5);
        let bytes = w.0.clone();
        let mut r = BodyReader::new(&bytes);
        assert_eq!(r.u64(), Some(7));
        assert_eq!(r.blob(), Some(&b"abc"[..]));
        assert_eq!(r.i64(), Some(-2));
        assert_eq!(r.f64(), Some(0.5));
        assert!(r.is_empty());
        // Truncate anywhere: reads return None, never panic.
        for cut in 0..bytes.len() {
            let mut r = BodyReader::new(&bytes[..cut]);
            let _ = r.u64();
            let _ = r.blob();
            let _ = r.i64();
            let _ = r.f64();
        }
    }
}
