//! Session-to-shard placement.
//!
//! The serving runtime runs N independent shard loops; a session — and
//! with it the tenant's compressed keys, expanded-key cache entries,
//! batching groups, and program table — lives entirely on the shard
//! chosen by [`shard_of`]. Placement uses the jump consistent hash of
//! Lamping & Veach ("A Fast, Minimal Memory, Consistent Hash
//! Algorithm"): stateless, O(ln n), and *monotone* — growing the shard
//! count only ever moves a session id onto one of the new shards, never
//! between surviving ones, so a resize invalidates the minimum number
//! of cache slices.

/// The shard owning `session_id` in a server running `shards` shard
/// loops. Deterministic and stable: the same `(session_id, shards)`
/// pair always maps to the same shard, in `0..shards`.
///
/// # Panics
///
/// Panics if `shards` is zero — a server always runs at least one shard.
#[must_use]
pub fn shard_of(session_id: u64, shards: usize) -> usize {
    assert!(shards > 0, "a server runs at least one shard");
    let mut key = session_id;
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < shards as i64 {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        {
            j = (((b + 1) as f64) * (f64::from(1u32 << 31) / (((key >> 33) + 1) as f64))) as i64;
        }
    }
    b as usize
}

/// Upper bound on `MAD_SERVE_SHARDS`: enough for any test matrix while
/// keeping a misconfigured env from spawning thousands of threads.
pub const MAX_SHARDS: usize = 64;

/// The shard count selected by the `MAD_SERVE_SHARDS` environment
/// variable, clamped to `1..=`[`MAX_SHARDS`]. Unset, empty, or
/// unparsable values mean one shard — the pre-sharding topology.
#[must_use]
pub fn shards_from_env() -> usize {
    std::env::var("MAD_SERVE_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |n| n.clamp(1, MAX_SHARDS))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_owns_everything() {
        for sid in [0u64, 1, 7, 1 << 20, u64::MAX] {
            assert_eq!(shard_of(sid, 1), 0);
        }
    }

    #[test]
    fn placement_is_in_range_and_deterministic() {
        for shards in [1usize, 2, 3, 4, 8, 64] {
            for sid in 0..2000u64 {
                let s = shard_of(sid, shards);
                assert!(s < shards, "sid {sid} -> shard {s} of {shards}");
                assert_eq!(s, shard_of(sid, shards), "re-hash must be stable");
            }
        }
    }

    #[test]
    fn growing_the_ring_is_monotone() {
        // Jump hash's defining property: adding shards only moves keys
        // onto the *new* shards. A key that stays below the old count
        // stayed exactly where it was.
        for sid in 0..4000u64 {
            for shards in 1usize..16 {
                let before = shard_of(sid, shards);
                let after = shard_of(sid, shards + 1);
                assert!(
                    after == before || after == shards,
                    "sid {sid}: {shards}->{} moved {before}->{after}",
                    shards + 1
                );
            }
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        for shards in [2usize, 4, 8] {
            let mut counts = vec![0usize; shards];
            let n = 10_000u64;
            for sid in 0..n {
                counts[shard_of(sid, shards)] += 1;
            }
            let ideal = n as usize / shards;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    c * 2 >= ideal && c <= ideal * 2,
                    "shard {s}/{shards} holds {c} of {n} (ideal {ideal})"
                );
            }
        }
    }
}
