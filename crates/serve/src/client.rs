//! A blocking client for the serving protocol.
//!
//! The client shares the server's `CkksContext` by construction (both
//! sides build it from the same published parameters), serializes
//! payloads with [`ckks::serialize`], and exposes one method per opcode.
//! Every call is strict request/response on one connection; open several
//! clients for concurrency.

use crate::protocol::{
    read_frame, write_frame, BodyReader, BodyWriter, ErrorCode, FrameRead, Opcode,
    DEFAULT_MAX_FRAME_BYTES,
};
use ckks::hoisting::LinearTransform;
use ckks::serialize::{
    deserialize_ciphertext, serialize_ciphertext, serialize_galois_keys, serialize_plaintext,
    serialize_switching_key, SerializeError,
};
use ckks::{Ciphertext, CkksContext, GaloisKeys, Plaintext, SwitchingKey};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with a structured error.
    Server {
        /// Decoded error code.
        code: ErrorCode,
        /// The server's diagnostic message.
        message: String,
    },
    /// The response frame itself made no sense.
    Protocol(String),
    /// A returned payload failed to deserialize.
    Serialize(SerializeError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server { code, message } => write!(f, "server: {code}: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Serialize(e) => write!(f, "payload: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<SerializeError> for ClientError {
    fn from(e: SerializeError) -> Self {
        ClientError::Serialize(e)
    }
}

/// One connection to a serving runtime.
pub struct Client {
    stream: TcpStream,
    ctx: Arc<CkksContext>,
}

impl Client {
    /// Connects to a server that evaluates under `ctx`'s parameters.
    ///
    /// # Errors
    ///
    /// Propagates connection I/O errors.
    pub fn connect<A: ToSocketAddrs>(addr: A, ctx: Arc<CkksContext>) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, ctx })
    }

    /// Sends one raw frame and returns the response body on success.
    /// Public so protocol tests (and fuzzing drivers) can send frames no
    /// well-behaved method would.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for structured errors, [`ClientError::Io`]
    /// / [`ClientError::Protocol`] for transport trouble.
    pub fn call_raw(&mut self, tag: u8, body: &[u8]) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.stream, tag, body)?;
        match read_frame(&mut self.stream, DEFAULT_MAX_FRAME_BYTES)? {
            FrameRead::Frame(f) => {
                if f.tag == 0 {
                    Ok(f.body)
                } else {
                    let code = ErrorCode::from_u8(f.tag).ok_or_else(|| {
                        ClientError::Protocol(format!("unknown status {}", f.tag))
                    })?;
                    Err(ClientError::Server {
                        code,
                        message: String::from_utf8_lossy(&f.body).into_owned(),
                    })
                }
            }
            FrameRead::Eof => Err(ClientError::Protocol("server closed connection".into())),
            FrameRead::TooLarge(n) => Err(ClientError::Protocol(format!(
                "oversize response ({n} bytes)"
            ))),
        }
    }

    fn call(&mut self, op: Opcode, body: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.call_raw(op as u8, body)
    }

    fn call_ct(&mut self, op: Opcode, body: &[u8]) -> Result<Ciphertext, ClientError> {
        let resp = self.call(op, body)?;
        Ok(deserialize_ciphertext(&self.ctx, &resp)?)
    }

    /// Opens a session; the returned id scopes all uploaded keys.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn hello(&mut self) -> Result<u64, ClientError> {
        let resp = self.call(Opcode::Hello, &[])?;
        let bytes: [u8; 8] = resp
            .as_slice()
            .try_into()
            .map_err(|_| ClientError::Protocol("short session id".into()))?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Uploads the relinearization key (send the seeded/compressed form —
    /// it is half the bytes and the server stores it compressed).
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn upload_relin(&mut self, session: u64, key: &SwitchingKey) -> Result<(), ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session).raw(&serialize_switching_key(key));
        self.call(Opcode::UploadRelin, &w.0).map(|_| ())
    }

    /// Uploads a Galois key bundle in one frame.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn upload_galois(&mut self, session: u64, keys: &GaloisKeys) -> Result<(), ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session).raw(&serialize_galois_keys(keys));
        self.call(Opcode::UploadGalois, &w.0).map(|_| ())
    }

    /// Closes a session, dropping its keys server-side.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn close_session(&mut self, session: u64) -> Result<(), ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session);
        self.call(Opcode::CloseSession, &w.0).map(|_| ())
    }

    /// Homomorphic addition.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn add(
        &mut self,
        session: u64,
        a: &Ciphertext,
        b: &Ciphertext,
    ) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session)
            .blob(&serialize_ciphertext(a))
            .blob(&serialize_ciphertext(b));
        self.call_ct(Opcode::Add, &w.0)
    }

    /// Ciphertext × plaintext multiplication (rescaled).
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn pt_mult(
        &mut self,
        session: u64,
        ct: &Ciphertext,
        pt: &Plaintext,
    ) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session)
            .blob(&serialize_ciphertext(ct))
            .blob(&serialize_plaintext(pt));
        self.call_ct(Opcode::PtMult, &w.0)
    }

    /// Ciphertext multiplication using the session's relin key.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn mult(
        &mut self,
        session: u64,
        a: &Ciphertext,
        b: &Ciphertext,
    ) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session)
            .blob(&serialize_ciphertext(a))
            .blob(&serialize_ciphertext(b));
        self.call_ct(Opcode::Mult, &w.0)
    }

    /// Slot rotation by `steps` using the session's Galois keys.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn rotate(
        &mut self,
        session: u64,
        ct: &Ciphertext,
        steps: i64,
    ) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session).i64(steps).raw(&serialize_ciphertext(ct));
        self.call_ct(Opcode::Rotate, &w.0)
    }

    /// Drops one scale limb.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn rescale(&mut self, session: u64, ct: &Ciphertext) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session).raw(&serialize_ciphertext(ct));
        self.call_ct(Opcode::Rescale, &w.0)
    }

    /// BSGS plaintext matrix–vector product with baby dimension `n1`. The
    /// transform's diagonals travel in the request; the session must hold
    /// Galois keys for [`ckks::hoisting::bsgs_required_steps`].
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn bsgs(
        &mut self,
        session: u64,
        ct: &Ciphertext,
        lt: &LinearTransform,
        n1: usize,
    ) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        let offsets = lt.offsets();
        w.u64(session).u32(n1 as u32).u32(offsets.len() as u32);
        for d in offsets {
            let diag = lt.diagonal(d).expect("offset listed by the transform");
            w.u32(d as u32);
            for c in diag {
                w.f64(c.re).f64(c.im);
            }
        }
        w.raw(&serialize_ciphertext(ct));
        self.call_ct(Opcode::Bsgs, &w.0)
    }

    /// One encrypted HELR training step server-side; returns the updated
    /// weight ciphertexts.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn helr_step(
        &mut self,
        session: u64,
        weights: &[Ciphertext],
        xs: &[Ciphertext],
        y01: &Ciphertext,
        learning_rate: f64,
    ) -> Result<Vec<Ciphertext>, ClientError> {
        assert_eq!(weights.len(), xs.len(), "one feature column per weight");
        let mut w = BodyWriter::new();
        w.u64(session).f64(learning_rate).u32(weights.len() as u32);
        for ct in weights.iter().chain(xs) {
            w.blob(&serialize_ciphertext(ct));
        }
        w.blob(&serialize_ciphertext(y01));
        let resp = self.call(Opcode::HelrStep, &w.0)?;
        let mut r = BodyReader::new(&resp);
        let mut out = Vec::with_capacity(weights.len());
        for _ in 0..weights.len() {
            let bytes = r
                .blob()
                .ok_or_else(|| ClientError::Protocol("short HELR response".into()))?;
            out.push(deserialize_ciphertext(&self.ctx, bytes)?);
        }
        Ok(out)
    }

    /// Fetches the server's plain-text metrics dump.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let resp = self.call(Opcode::Metrics, &[])?;
        String::from_utf8(resp).map_err(|_| ClientError::Protocol("metrics not UTF-8".into()))
    }
}
