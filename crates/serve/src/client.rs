//! A blocking client for the serving protocol.
//!
//! The client shares the server's `CkksContext` by construction (both
//! sides build it from the same published parameters), serializes
//! payloads with [`ckks::serialize`], and exposes one method per opcode.
//! Every call is strict request/response on one connection; open several
//! clients for concurrency.

use crate::fault::XorShift64;
use crate::protocol::{
    read_frame, write_frame, BatchHint, BodyReader, BodyWriter, ErrorCode, FrameRead, Opcode,
    DEFAULT_MAX_FRAME_BYTES,
};
use ckks::hoisting::LinearTransform;
use ckks::serialize::{
    deserialize_ciphertext, serialize_ciphertext, serialize_galois_keys, serialize_plaintext,
    serialize_switching_key, SerializeError,
};
use ckks::{Ciphertext, CkksContext, GaloisKeys, Plaintext, SwitchingKey};
use fhe_program::program::Program;
use fhe_program::ExecInputs;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with a structured error.
    Server {
        /// Decoded error code.
        code: ErrorCode,
        /// The server's diagnostic message.
        message: String,
    },
    /// The response frame itself made no sense.
    Protocol(String),
    /// A returned payload failed to deserialize.
    Serialize(SerializeError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server { code, message } => write!(f, "server: {code}: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Serialize(e) => write!(f, "payload: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<SerializeError> for ClientError {
    fn from(e: SerializeError) -> Self {
        ClientError::Serialize(e)
    }
}

/// What a `Hello` handshake established: the session id plus what the
/// server disclosed about itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloInfo {
    /// The session id scoping all uploaded keys.
    pub session: u64,
    /// Whether the server runs the key-reuse batching scheduler (false
    /// when talking to a server that predates the flags byte).
    pub batching: bool,
    /// The server's active kernel-backend name (empty if the server
    /// predates the backend field).
    pub backend: String,
}

/// One connection to a serving runtime.
pub struct Client {
    stream: TcpStream,
    ctx: Arc<CkksContext>,
}

impl Client {
    /// Connects to a server that evaluates under `ctx`'s parameters.
    ///
    /// # Errors
    ///
    /// Propagates connection I/O errors.
    pub fn connect<A: ToSocketAddrs>(addr: A, ctx: Arc<CkksContext>) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, ctx })
    }

    /// Bounds how long any single response read may block (`None` blocks
    /// forever, the default). [`RetryingClient`] sets this to its
    /// per-operation timeout so a stalled server surfaces as a timed-out
    /// [`ClientError::Io`] instead of a hang.
    ///
    /// # Errors
    ///
    /// Propagates the socket option error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one raw frame and returns the response body on success.
    /// Public so protocol tests (and fuzzing drivers) can send frames no
    /// well-behaved method would.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for structured errors, [`ClientError::Io`]
    /// / [`ClientError::Protocol`] for transport trouble.
    pub fn call_raw(&mut self, tag: u8, body: &[u8]) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.stream, tag, body)?;
        match read_frame(&mut self.stream, DEFAULT_MAX_FRAME_BYTES)? {
            FrameRead::Frame(f) => {
                if f.tag == 0 {
                    Ok(f.body)
                } else {
                    let code = ErrorCode::from_u8(f.tag).ok_or_else(|| {
                        ClientError::Protocol(format!("unknown status {}", f.tag))
                    })?;
                    Err(ClientError::Server {
                        code,
                        message: String::from_utf8_lossy(&f.body).into_owned(),
                    })
                }
            }
            FrameRead::Eof => Err(ClientError::Protocol("server closed connection".into())),
            FrameRead::TooLarge(n) => Err(ClientError::Protocol(format!(
                "oversize response ({n} bytes)"
            ))),
        }
    }

    fn call(&mut self, op: Opcode, body: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.call_raw(op as u8, body)
    }

    fn call_ct(&mut self, op: Opcode, body: &[u8]) -> Result<Ciphertext, ClientError> {
        let resp = self.call(op, body)?;
        Ok(deserialize_ciphertext(&self.ctx, &resp)?)
    }

    /// Opens a session; the returned id scopes all uploaded keys.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn hello(&mut self) -> Result<u64, ClientError> {
        self.hello_info().map(|(sid, _)| sid)
    }

    /// Opens a session, also returning the server's active kernel-backend
    /// name (empty if the server predates the backend field).
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn hello_info(&mut self) -> Result<(u64, String), ClientError> {
        self.hello_ext(BatchHint::Auto)
            .map(|info| (info.session, info.backend))
    }

    /// Opens a session carrying a [`BatchHint`] for the scheduler, and
    /// returns everything the server disclosed in the handshake.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn hello_ext(&mut self, hint: BatchHint) -> Result<HelloInfo, ClientError> {
        let resp = self.call(Opcode::Hello, &[hint as u8])?;
        if resp.len() < 8 {
            return Err(ClientError::Protocol("short session id".into()));
        }
        let session = u64::from_le_bytes(resp[..8].try_into().expect("8 bytes"));
        // Reply layout: sid, then an optional flags byte (bit 0 =
        // batching scheduler active), then the backend name. Older
        // servers stop after the sid.
        let batching = resp.get(8).is_some_and(|flags| flags & 1 != 0);
        let backend = resp
            .get(9..)
            .map(|b| String::from_utf8_lossy(b).into_owned())
            .unwrap_or_default();
        Ok(HelloInfo {
            session,
            batching,
            backend,
        })
    }

    /// Uploads the relinearization key (send the seeded/compressed form —
    /// it is half the bytes and the server stores it compressed).
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn upload_relin(&mut self, session: u64, key: &SwitchingKey) -> Result<(), ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session).raw(&serialize_switching_key(key));
        self.call(Opcode::UploadRelin, &w.0).map(|_| ())
    }

    /// Uploads a Galois key bundle in one frame.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn upload_galois(&mut self, session: u64, keys: &GaloisKeys) -> Result<(), ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session).raw(&serialize_galois_keys(keys));
        self.call(Opcode::UploadGalois, &w.0).map(|_| ())
    }

    /// Closes a session, dropping its keys server-side.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn close_session(&mut self, session: u64) -> Result<(), ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session);
        self.call(Opcode::CloseSession, &w.0).map(|_| ())
    }

    /// Homomorphic addition.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn add(
        &mut self,
        session: u64,
        a: &Ciphertext,
        b: &Ciphertext,
    ) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session)
            .blob(&serialize_ciphertext(a))
            .blob(&serialize_ciphertext(b));
        self.call_ct(Opcode::Add, &w.0)
    }

    /// Ciphertext × plaintext multiplication (rescaled).
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn pt_mult(
        &mut self,
        session: u64,
        ct: &Ciphertext,
        pt: &Plaintext,
    ) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session)
            .blob(&serialize_ciphertext(ct))
            .blob(&serialize_plaintext(pt));
        self.call_ct(Opcode::PtMult, &w.0)
    }

    /// Ciphertext multiplication using the session's relin key.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn mult(
        &mut self,
        session: u64,
        a: &Ciphertext,
        b: &Ciphertext,
    ) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session)
            .blob(&serialize_ciphertext(a))
            .blob(&serialize_ciphertext(b));
        self.call_ct(Opcode::Mult, &w.0)
    }

    /// Slot rotation by `steps` using the session's Galois keys.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn rotate(
        &mut self,
        session: u64,
        ct: &Ciphertext,
        steps: i64,
    ) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session).i64(steps).raw(&serialize_ciphertext(ct));
        self.call_ct(Opcode::Rotate, &w.0)
    }

    /// Drops one scale limb.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn rescale(&mut self, session: u64, ct: &Ciphertext) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session).raw(&serialize_ciphertext(ct));
        self.call_ct(Opcode::Rescale, &w.0)
    }

    /// BSGS plaintext matrix–vector product with baby dimension `n1`. The
    /// transform's diagonals travel in the request; the session must hold
    /// Galois keys for [`ckks::hoisting::bsgs_required_steps`].
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn bsgs(
        &mut self,
        session: u64,
        ct: &Ciphertext,
        lt: &LinearTransform,
        n1: usize,
    ) -> Result<Ciphertext, ClientError> {
        let mut w = BodyWriter::new();
        let offsets = lt.offsets();
        w.u64(session).u32(n1 as u32).u32(offsets.len() as u32);
        for d in offsets {
            let diag = lt.diagonal(d).expect("offset listed by the transform");
            w.u32(d as u32);
            for c in diag {
                w.f64(c.re).f64(c.im);
            }
        }
        w.raw(&serialize_ciphertext(ct));
        self.call_ct(Opcode::Bsgs, &w.0)
    }

    /// One encrypted HELR training step server-side; returns the updated
    /// weight ciphertexts.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn helr_step(
        &mut self,
        session: u64,
        weights: &[Ciphertext],
        xs: &[Ciphertext],
        y01: &Ciphertext,
        learning_rate: f64,
    ) -> Result<Vec<Ciphertext>, ClientError> {
        assert_eq!(weights.len(), xs.len(), "one feature column per weight");
        let mut w = BodyWriter::new();
        w.u64(session).f64(learning_rate).u32(weights.len() as u32);
        for ct in weights.iter().chain(xs) {
            w.blob(&serialize_ciphertext(ct));
        }
        w.blob(&serialize_ciphertext(y01));
        let resp = self.call(Opcode::HelrStep, &w.0)?;
        let mut r = BodyReader::new(&resp);
        let mut out = Vec::with_capacity(weights.len());
        for _ in 0..weights.len() {
            let bytes = r
                .blob()
                .ok_or_else(|| ClientError::Protocol("short HELR response".into()))?;
            out.push(deserialize_ciphertext(&self.ctx, bytes)?);
        }
        Ok(out)
    }

    /// Uploads a serialized encrypted program; the server validates it
    /// against its own parameters and returns the program id to pass to
    /// [`Client::run_program`].
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`]; a program the server's parameters cannot
    /// host fails `Malformed` with the validator's diagnostic.
    pub fn upload_program(&mut self, session: u64, prog: &Program) -> Result<u64, ClientError> {
        let mut w = BodyWriter::new();
        w.u64(session).raw(&prog.to_bytes());
        let resp = self.call(Opcode::UploadProgram, &w.0)?;
        resp.get(..8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .ok_or_else(|| ClientError::Protocol("short program id".into()))
    }

    /// Runs an uploaded program, binding `inputs` by declaration name,
    /// and returns the output ciphertexts in the program's output order.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`]; unbound or mis-shaped inputs fail
    /// client-side as [`ClientError::Protocol`] before anything is sent.
    pub fn run_program(
        &mut self,
        session: u64,
        pid: u64,
        prog: &Program,
        inputs: &ExecInputs,
    ) -> Result<Vec<Ciphertext>, ClientError> {
        let payload = encode_program_inputs(prog, inputs)?;
        let mut w = BodyWriter::new();
        w.u64(session).u64(pid).raw(&payload);
        let resp = self.call(Opcode::RunProgram, &w.0)?;
        decode_program_outputs(&self.ctx, prog.outputs.len(), &resp)
    }

    /// Fetches the server's plain-text metrics dump.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let resp = self.call(Opcode::Metrics, &[])?;
        String::from_utf8(resp).map_err(|_| ClientError::Protocol("metrics not UTF-8".into()))
    }

    /// Fetches the server's recent request timelines as Chrome
    /// trace-event JSON (loadable in Perfetto / `chrome://tracing`).
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn trace_dump(&mut self) -> Result<String, ClientError> {
        let resp = self.call(Opcode::TraceDump, &[0])?;
        String::from_utf8(resp).map_err(|_| ClientError::Protocol("trace dump not UTF-8".into()))
    }

    /// Fetches the server's structured slow-request log (one line per
    /// request that crossed the slow threshold, dominant stage
    /// annotated).
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn slow_log(&mut self) -> Result<String, ClientError> {
        let resp = self.call(Opcode::TraceDump, &[1])?;
        String::from_utf8(resp).map_err(|_| ClientError::Protocol("slow log not UTF-8".into()))
    }
}

/// Serializes a program's inputs in wire order — declaration order:
/// ciphertext blobs, then plaintext vectors (`u32` count + `f64` pairs),
/// then matrix diagonals (declared offsets, `slots` `f64` pairs each).
/// Fails client-side if any declared input is unbound or mis-shaped.
fn encode_program_inputs(prog: &Program, inputs: &ExecInputs) -> Result<Vec<u8>, ClientError> {
    let missing =
        |kind: &str, name: &str| ClientError::Protocol(format!("{kind} `{name}` not bound"));
    let mut w = BodyWriter::new();
    for decl in &prog.ct_inputs {
        let ct = inputs
            .cts
            .get(&decl.name)
            .ok_or_else(|| missing("ciphertext input", &decl.name))?;
        w.blob(&serialize_ciphertext(ct));
    }
    for decl in &prog.pt_inputs {
        let v = inputs
            .pts
            .get(&decl.name)
            .ok_or_else(|| missing("plaintext input", &decl.name))?;
        w.u32(v.len() as u32);
        for c in v {
            w.f64(c.re).f64(c.im);
        }
    }
    for decl in &prog.matrices {
        let lt = inputs
            .mats
            .get(&decl.name)
            .ok_or_else(|| missing("matrix input", &decl.name))?;
        for &offset in &decl.offsets {
            let diag = lt.diagonal(offset).ok_or_else(|| {
                ClientError::Protocol(format!(
                    "matrix `{}` is missing declared diagonal {offset}",
                    decl.name
                ))
            })?;
            if diag.len() != decl.slots {
                return Err(ClientError::Protocol(format!(
                    "matrix `{}` diagonal {offset} has {} slots, declared {}",
                    decl.name,
                    diag.len(),
                    decl.slots
                )));
            }
            for c in diag {
                w.f64(c.re).f64(c.im);
            }
        }
    }
    Ok(w.0)
}

/// Decodes a `RunProgram` response: one ciphertext blob per program
/// output, in output order.
fn decode_program_outputs(
    ctx: &CkksContext,
    n_outputs: usize,
    resp: &[u8],
) -> Result<Vec<Ciphertext>, ClientError> {
    let mut r = BodyReader::new(resp);
    let mut out = Vec::with_capacity(n_outputs);
    for _ in 0..n_outputs {
        let bytes = r
            .blob()
            .ok_or_else(|| ClientError::Protocol("short program response".into()))?;
        out.push(deserialize_ciphertext(ctx, bytes)?);
    }
    Ok(out)
}

/// How [`RetryingClient`] paces its attempts: capped exponential backoff
/// with deterministic jitter (a seeded [`XorShift64`], no OS entropy, so
/// a chaos run replays bit-for-bit), a per-attempt read timeout, and a
/// ceiling on attempts per operation.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum attempts per operation before giving up with the last
    /// error; at least 1.
    pub max_attempts: u32,
    /// First backoff; each retry doubles it until [`RetryPolicy::max_backoff`].
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Read timeout applied to every connection, bounding how long one
    /// attempt can block on a response.
    pub op_timeout: Option<Duration>,
    /// Seed for the jitter RNG.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            op_timeout: Some(Duration::from_secs(30)),
            jitter_seed: 0x4d41_4466, // "MADf"
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based): exponential
    /// growth capped at [`RetryPolicy::max_backoff`], then jittered
    /// uniformly over the upper half of the interval so synchronized
    /// clients fan out instead of stampeding in lockstep.
    pub fn backoff(&self, retry: u32, rng: &mut XorShift64) -> Duration {
        let base = self.base_backoff.as_micros().max(1) as u64;
        let cap = self.max_backoff.as_micros().max(1) as u64;
        let exp = base.saturating_mul(1u64 << retry.min(32)).min(cap);
        let half = exp / 2;
        Duration::from_micros(half + rng.below(exp - half + 1))
    }
}

/// Counters describing what the retry machinery had to do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Individual attempts, including first tries.
    pub attempts: u64,
    /// Attempts that failed retryably and were re-issued.
    pub retries: u64,
    /// Reconnects (connection loss or server-side session loss), each
    /// followed by session re-setup and compressed-key re-upload.
    pub reconnects: u64,
    /// Operations that exhausted [`RetryPolicy::max_attempts`].
    pub gave_up: u64,
}

enum RetryClass {
    /// Do not retry: re-sending the same bytes would fail the same way.
    Fatal,
    /// Back off and re-send on the existing connection.
    Backoff,
    /// The connection or the server-side session is gone: reconnect,
    /// open a fresh session, re-upload the stored compressed keys, then
    /// re-send.
    Reconnect,
}

fn classify(e: &ClientError) -> RetryClass {
    match e {
        // Transport trouble (drops, torn frames, timeouts) and nonsense
        // responses: assume the connection is poisoned.
        ClientError::Io(_) | ClientError::Protocol(_) => RetryClass::Reconnect,
        ClientError::Server { code, .. } if !code.is_retryable() => RetryClass::Fatal,
        // A retryable NoSession means the server lost our session (e.g.
        // a restart or a chaos session reset): full re-setup.
        ClientError::Server { code, .. } if *code == ErrorCode::NoSession => RetryClass::Reconnect,
        ClientError::Server { .. } => RetryClass::Backoff,
        ClientError::Serialize(_) => RetryClass::Fatal,
    }
}

/// A [`Client`] hardened for unreliable networks and overloaded servers.
///
/// Owns one logical session and survives connection loss transparently:
/// on reconnect it opens a fresh server session and re-uploads the
/// *stored compressed wire bytes* of every key, so the server state after
/// recovery is byte-identical to the original upload (seeded keys expand
/// bit-exactly). Transient server errors (`Overloaded`,
/// `DeadlineExceeded`, `Internal`, `NoSession`) are retried under
/// [`RetryPolicy`]; client-side mistakes are surfaced immediately.
///
/// **Idempotency guard:** every operation serializes its operands exactly
/// once and each retry re-sends those same bytes (only the session-id
/// prefix is re-stamped after a re-setup). Because every evaluation
/// opcode is a pure function of its request body, a retried `Mult` or
/// `Rotate` is *re-sent*, never re-applied — a response that was computed
/// but lost in transit is simply recomputed bit-identically.
pub struct RetryingClient {
    addr: SocketAddr,
    ctx: Arc<CkksContext>,
    policy: RetryPolicy,
    rng: XorShift64,
    hint: BatchHint,
    conn: Option<(Client, u64)>,
    relin: Option<Vec<u8>>,
    galois: Option<Vec<u8>>,
    programs: Vec<ProgramSlot>,
    stats: RetryStats,
}

/// A program uploaded through [`RetryingClient::upload_program`],
/// retained for re-upload: the exact wire bytes (so a recovered session
/// holds a byte-identical program), the decoded form (to frame
/// `run_program` inputs), and the server-side id of the *current*
/// session incarnation.
struct ProgramSlot {
    wire: Vec<u8>,
    program: Program,
    pid: Option<u64>,
}

/// Handle to a program uploaded through
/// [`RetryingClient::upload_program`]. Stable across reconnects: the
/// server-side program id changes with every session incarnation, the
/// handle does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramHandle(usize);

impl RetryingClient {
    /// Connects (with retries) and opens the logical session.
    ///
    /// # Errors
    ///
    /// The last [`ClientError`] once [`RetryPolicy::max_attempts`] is
    /// exhausted, or immediately on address-resolution failure.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        ctx: Arc<CkksContext>,
        policy: RetryPolicy,
    ) -> Result<Self, ClientError> {
        Self::connect_with_hint(addr, ctx, policy, BatchHint::Auto)
    }

    /// Like [`RetryingClient::connect`], but the session (and every
    /// session opened by a later reconnect) carries `hint` for the
    /// server's batching scheduler.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`].
    pub fn connect_with_hint<A: ToSocketAddrs>(
        addr: A,
        ctx: Arc<CkksContext>,
        policy: RetryPolicy,
        hint: BatchHint,
    ) -> Result<Self, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".into()))?;
        let rng = XorShift64::new(policy.jitter_seed);
        let mut me = Self {
            addr,
            ctx,
            policy,
            rng,
            hint,
            conn: None,
            relin: None,
            galois: None,
            programs: Vec::new(),
            stats: RetryStats::default(),
        };
        me.with_retry(|_, _| Ok(()))?;
        Ok(me)
    }

    /// The server-side id of the current session incarnation (changes
    /// after a reconnect), or `None` while disconnected.
    pub fn session_id(&self) -> Option<u64> {
        self.conn.as_ref().map(|(_, sid)| *sid)
    }

    /// What the retry machinery has done so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// (Re)establishes the connection, session, uploaded keys, and
    /// uploaded programs, leaving the live connection in `self.conn`.
    fn ensure_ready(&mut self) -> Result<(), ClientError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let client = Client::connect(self.addr, self.ctx.clone())?;
        client.set_read_timeout(self.policy.op_timeout)?;
        let mut client = client;
        let sid = client.hello_ext(self.hint)?.session;
        // Re-upload the stored compressed key bytes verbatim: the
        // recovered session is byte-identical to the lost one.
        if let Some(bytes) = &self.relin {
            let mut w = BodyWriter::new();
            w.u64(sid).raw(bytes);
            client.call_raw(Opcode::UploadRelin as u8, &w.0)?;
        }
        if let Some(bytes) = &self.galois {
            let mut w = BodyWriter::new();
            w.u64(sid).raw(bytes);
            client.call_raw(Opcode::UploadGalois as u8, &w.0)?;
        }
        // Re-upload stored program wire bytes, re-learning each slot's
        // server-side id under the new session.
        for slot in &mut self.programs {
            let mut w = BodyWriter::new();
            w.u64(sid).raw(&slot.wire);
            let resp = client.call_raw(Opcode::UploadProgram as u8, &w.0)?;
            let pid = resp
                .get(..8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .ok_or_else(|| ClientError::Protocol("short program id".into()))?;
            slot.pid = Some(pid);
        }
        self.conn = Some((client, sid));
        Ok(())
    }

    /// (Re)establishes the connection, session, and uploaded state.
    fn ensure(&mut self) -> Result<(&mut Client, u64), ClientError> {
        self.ensure_ready()?;
        let (client, sid) = self.conn.as_mut().expect("just ensured");
        Ok((client, *sid))
    }

    /// Runs `f` until it succeeds, retrying per policy. `f` receives the
    /// live connection and the *current* session id and must re-stamp the
    /// id into the request on every call — nothing else in the request
    /// may change between attempts.
    fn with_retry<T>(
        &mut self,
        f: impl Fn(&mut Client, u64) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            self.stats.attempts += 1;
            let result = match self.ensure() {
                Ok((client, sid)) => f(client, sid),
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            let class = classify(&err);
            if matches!(class, RetryClass::Fatal) || attempt >= self.policy.max_attempts.max(1) {
                if !matches!(class, RetryClass::Fatal) {
                    self.stats.gave_up += 1;
                }
                return Err(err);
            }
            if matches!(class, RetryClass::Reconnect) {
                self.conn = None;
                self.stats.reconnects += 1;
            }
            self.stats.retries += 1;
            std::thread::sleep(self.policy.backoff(attempt - 1, &mut self.rng));
        }
    }

    /// [`RetryingClient::with_retry`], but `f` also receives the
    /// program's server-side id under the *current* session incarnation —
    /// which a reconnect inside the loop re-learns before the next
    /// attempt, so a retried `run_program` always names a live program.
    fn with_retry_program<T>(
        &mut self,
        handle: ProgramHandle,
        f: impl Fn(&mut Client, u64, u64) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            self.stats.attempts += 1;
            let result = match self.ensure_ready() {
                Ok(()) => {
                    let pid = self.programs[handle.0].pid;
                    let (client, sid) = self.conn.as_mut().expect("just ensured");
                    let sid = *sid;
                    match pid {
                        Some(pid) => f(client, sid, pid),
                        None => Err(ClientError::Protocol("program id never learned".into())),
                    }
                }
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            let class = classify(&err);
            if matches!(class, RetryClass::Fatal) || attempt >= self.policy.max_attempts.max(1) {
                if !matches!(class, RetryClass::Fatal) {
                    self.stats.gave_up += 1;
                }
                return Err(err);
            }
            if matches!(class, RetryClass::Reconnect) {
                self.conn = None;
                self.stats.reconnects += 1;
            }
            self.stats.retries += 1;
            std::thread::sleep(self.policy.backoff(attempt - 1, &mut self.rng));
        }
    }

    /// Uploads (and stores for re-upload) the relinearization key.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`].
    pub fn upload_relin(&mut self, key: &SwitchingKey) -> Result<(), ClientError> {
        let bytes = serialize_switching_key(key);
        self.relin = Some(bytes.clone());
        self.with_retry(move |client, sid| {
            let mut w = BodyWriter::new();
            w.u64(sid).raw(&bytes);
            client.call_raw(Opcode::UploadRelin as u8, &w.0).map(|_| ())
        })
    }

    /// Uploads (and stores for re-upload) a Galois key bundle.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`].
    pub fn upload_galois(&mut self, keys: &GaloisKeys) -> Result<(), ClientError> {
        let bytes = serialize_galois_keys(keys);
        self.galois = Some(bytes.clone());
        self.with_retry(move |client, sid| {
            let mut w = BodyWriter::new();
            w.u64(sid).raw(&bytes);
            client
                .call_raw(Opcode::UploadGalois as u8, &w.0)
                .map(|_| ())
        })
    }

    /// Uploads a program (and stores its wire bytes for re-upload on
    /// reconnect). The returned handle is stable across reconnects —
    /// every retry or recovery re-learns the server-side id under the
    /// current session, so callers never see a stale program id.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`].
    pub fn upload_program(&mut self, prog: &Program) -> Result<ProgramHandle, ClientError> {
        let wire = prog.to_bytes();
        let wire_up = wire.clone();
        let pid = self.with_retry(move |client, sid| {
            let mut w = BodyWriter::new();
            w.u64(sid).raw(&wire_up);
            let resp = client.call_raw(Opcode::UploadProgram as u8, &w.0)?;
            resp.get(..8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .ok_or_else(|| ClientError::Protocol("short program id".into()))
        })?;
        self.programs.push(ProgramSlot {
            wire,
            program: prog.clone(),
            pid: Some(pid),
        });
        Ok(ProgramHandle(self.programs.len() - 1))
    }

    /// Runs an uploaded program with retries, binding `inputs` by
    /// declaration name; returns the outputs in program output order.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`]; unbound or mis-shaped inputs
    /// fail immediately as [`ClientError::Protocol`].
    pub fn run_program(
        &mut self,
        handle: ProgramHandle,
        inputs: &ExecInputs,
    ) -> Result<Vec<Ciphertext>, ClientError> {
        let slot = self
            .programs
            .get(handle.0)
            .ok_or_else(|| ClientError::Protocol("unknown program handle".into()))?;
        let payload = encode_program_inputs(&slot.program, inputs)?;
        let n_outputs = slot.program.outputs.len();
        let ctx = self.ctx.clone();
        let resp = self.with_retry_program(handle, move |client, sid, pid| {
            let mut w = BodyWriter::new();
            w.u64(sid).u64(pid).raw(&payload);
            client.call_raw(Opcode::RunProgram as u8, &w.0)
        })?;
        decode_program_outputs(&ctx, n_outputs, &resp)
    }

    fn call_ct(
        &mut self,
        op: Opcode,
        make_body: impl Fn(u64) -> Vec<u8>,
    ) -> Result<Ciphertext, ClientError> {
        let ctx = self.ctx.clone();
        let resp = self.with_retry(|client, sid| client.call_raw(op as u8, &make_body(sid)))?;
        Ok(deserialize_ciphertext(&ctx, &resp)?)
    }

    /// Homomorphic addition, with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`].
    pub fn add(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, ClientError> {
        let (ab, bb) = (serialize_ciphertext(a), serialize_ciphertext(b));
        self.call_ct(Opcode::Add, move |sid| {
            let mut w = BodyWriter::new();
            w.u64(sid).blob(&ab).blob(&bb);
            w.0
        })
    }

    /// Ciphertext multiplication, with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`].
    pub fn mult(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, ClientError> {
        let (ab, bb) = (serialize_ciphertext(a), serialize_ciphertext(b));
        self.call_ct(Opcode::Mult, move |sid| {
            let mut w = BodyWriter::new();
            w.u64(sid).blob(&ab).blob(&bb);
            w.0
        })
    }

    /// Ciphertext × plaintext multiplication, with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`].
    pub fn pt_mult(&mut self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, ClientError> {
        let (cb, pb) = (serialize_ciphertext(ct), serialize_plaintext(pt));
        self.call_ct(Opcode::PtMult, move |sid| {
            let mut w = BodyWriter::new();
            w.u64(sid).blob(&cb).blob(&pb);
            w.0
        })
    }

    /// Slot rotation, with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`].
    pub fn rotate(&mut self, ct: &Ciphertext, steps: i64) -> Result<Ciphertext, ClientError> {
        let cb = serialize_ciphertext(ct);
        self.call_ct(Opcode::Rotate, move |sid| {
            let mut w = BodyWriter::new();
            w.u64(sid).i64(steps).raw(&cb);
            w.0
        })
    }

    /// Drops one scale limb, with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`].
    pub fn rescale(&mut self, ct: &Ciphertext) -> Result<Ciphertext, ClientError> {
        let cb = serialize_ciphertext(ct);
        self.call_ct(Opcode::Rescale, move |sid| {
            let mut w = BodyWriter::new();
            w.u64(sid).raw(&cb);
            w.0
        })
    }

    /// Fetches the server's metrics dump, with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let resp = self.with_retry(|client, sid| {
            let _ = sid; // metrics is session-free
            client.call_raw(Opcode::Metrics as u8, &[])
        })?;
        String::from_utf8(resp).map_err(|_| ClientError::Protocol("metrics not UTF-8".into()))
    }

    /// Closes the logical session and forgets the stored keys. A retried
    /// close that reconnects opens a throwaway session (re-uploading
    /// keys) and closes it, so the server never leaks the *current*
    /// incarnation; sessions orphaned by earlier crashes stay until an
    /// operator sweep.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::connect`].
    pub fn close(mut self) -> Result<(), ClientError> {
        let r = self.with_retry(|client, sid| {
            let mut w = BodyWriter::new();
            w.u64(sid);
            client
                .call_raw(Opcode::CloseSession as u8, &w.0)
                .map(|_| ())
        });
        self.conn = None;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_within_bounds() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        let mut rng = XorShift64::new(1);
        let mut prev_cap = Duration::ZERO;
        for retry in 0..12 {
            let exp = Duration::from_millis(4)
                .saturating_mul(1 << retry.min(31))
                .min(Duration::from_millis(100));
            let d = policy.backoff(retry, &mut rng);
            assert!(d >= exp / 2, "retry {retry}: {d:?} below half of {exp:?}");
            assert!(d <= exp, "retry {retry}: {d:?} above cap {exp:?}");
            assert!(exp >= prev_cap, "cap must be monotone");
            prev_cap = exp;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let mut a = XorShift64::new(99);
        let mut b = XorShift64::new(99);
        for retry in 0..20 {
            assert_eq!(policy.backoff(retry, &mut a), policy.backoff(retry, &mut b));
        }
    }

    #[test]
    fn classification_matches_retryability() {
        assert!(matches!(
            classify(&ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "t"
            ))),
            RetryClass::Reconnect
        ));
        assert!(matches!(
            classify(&ClientError::Protocol("server closed connection".into())),
            RetryClass::Reconnect
        ));
        let server = |code| ClientError::Server {
            code,
            message: String::new(),
        };
        assert!(matches!(
            classify(&server(ErrorCode::Overloaded)),
            RetryClass::Backoff
        ));
        assert!(matches!(
            classify(&server(ErrorCode::DeadlineExceeded)),
            RetryClass::Backoff
        ));
        assert!(matches!(
            classify(&server(ErrorCode::Internal)),
            RetryClass::Backoff
        ));
        assert!(matches!(
            classify(&server(ErrorCode::NoSession)),
            RetryClass::Reconnect
        ));
        for fatal in [
            ErrorCode::Malformed,
            ErrorCode::MissingKey,
            ErrorCode::UnknownOpcode,
            ErrorCode::UnsupportedVersion,
            ErrorCode::FrameTooLarge,
            ErrorCode::BadFrame,
        ] {
            assert!(matches!(classify(&server(fatal)), RetryClass::Fatal));
        }
    }
}
