//! Multi-tenant session state.
//!
//! A session owns nothing but its uploaded key material, and keeps it in
//! *compressed wire form only* — the 32-byte seed plus the `b`
//! polynomials, exactly as received. Expanded keys live exclusively in
//! the shared [`crate::cache::KeyCache`], so the per-tenant resident
//! footprint is the paper's halved key size and the expansion budget is
//! a single server-wide knob.

use crate::cache::KeyKind;
use crate::protocol::{BatchHint, ErrorCode};
use fhe_program::program::{Program, ProgramInfo};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// A validated encrypted program uploaded to a session: the decoded IR,
/// its static-analysis summary (levels, scales, key manifest), and the
/// wire size it occupies for the stored-bytes accounting.
pub struct StoredProgram {
    /// The decoded program.
    pub program: Program,
    /// `validate()` output: per-instruction metadata plus the key
    /// manifest the batching scheduler pins from.
    pub info: ProgramInfo,
    /// Size of the `MADP` wire form as uploaded.
    pub wire_len: usize,
}

/// One tenant's uploaded keys, in compressed serialized form, plus the
/// batching hint it declared in Hello and any uploaded programs.
#[derive(Default)]
pub struct Session {
    relin: Mutex<Option<Arc<Vec<u8>>>>,
    galois: Mutex<HashMap<u64, Arc<Vec<u8>>>>,
    programs: Mutex<HashMap<u64, Arc<StoredProgram>>>,
    next_program: AtomicU64,
    hint: AtomicU8,
}

impl Session {
    /// The batching hint declared at Hello.
    pub fn batch_hint(&self) -> BatchHint {
        BatchHint::from_u8(self.hint.load(Ordering::Relaxed))
    }
    /// Stores (or replaces) the relinearization key bytes.
    pub fn set_relin(&self, bytes: Vec<u8>) {
        *self.relin.lock().expect("session poisoned") = Some(Arc::new(bytes));
    }

    /// Stores (or replaces) the Galois key bytes for one element.
    pub fn set_galois(&self, element: u64, bytes: Vec<u8>) {
        self.galois
            .lock()
            .expect("session poisoned")
            .insert(element, Arc::new(bytes));
    }

    /// The compressed bytes backing `kind`, or [`ErrorCode::MissingKey`].
    pub fn key_bytes(&self, kind: KeyKind) -> Result<Arc<Vec<u8>>, ErrorCode> {
        match kind {
            KeyKind::Relin => self
                .relin
                .lock()
                .expect("session poisoned")
                .clone()
                .ok_or(ErrorCode::MissingKey),
            KeyKind::Galois(element) => self
                .galois
                .lock()
                .expect("session poisoned")
                .get(&element)
                .cloned()
                .ok_or(ErrorCode::MissingKey),
        }
    }

    /// Stores a validated program and returns its id (ids start at 1 so
    /// 0 never names a program).
    pub fn store_program(&self, stored: StoredProgram) -> u64 {
        let id = 1 + self.next_program.fetch_add(1, Ordering::Relaxed);
        self.programs
            .lock()
            .expect("session poisoned")
            .insert(id, Arc::new(stored));
        id
    }

    /// Resolves a program id, or [`ErrorCode::Malformed`] (running a
    /// never-uploaded program is a client mistake, not a transient).
    pub fn program(&self, id: u64) -> Result<Arc<StoredProgram>, ErrorCode> {
        self.programs
            .lock()
            .expect("session poisoned")
            .get(&id)
            .cloned()
            .ok_or(ErrorCode::Malformed)
    }

    /// Total compressed key + program wire bytes this session stores.
    pub fn stored_bytes(&self) -> u64 {
        let relin = self
            .relin
            .lock()
            .expect("session poisoned")
            .as_ref()
            .map_or(0, |b| b.len() as u64);
        let galois: u64 = self
            .galois
            .lock()
            .expect("session poisoned")
            .values()
            .map(|b| b.len() as u64)
            .sum();
        let programs: u64 = self
            .programs
            .lock()
            .expect("session poisoned")
            .values()
            .map(|p| p.wire_len as u64)
            .sum();
        relin + galois + programs
    }
}

/// Allocates session ids and resolves them to sessions.
///
/// In a sharded server every shard runs its own manager over a shared
/// id counter discipline: a manager built with
/// [`SessionManager::new_for_shard`] only ever *mints* ids that
/// [`crate::shard::shard_of`] maps back to its shard, so a session's
/// placement is decided at Hello and every later frame naming that id
/// hashes to the owning shard. Managers for different shards of the
/// same count mint disjoint id sets by construction.
pub struct SessionManager {
    next_id: AtomicU64,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    /// The shard this manager mints ids for, of `shards` total.
    shard: usize,
    shards: usize,
}

impl Default for SessionManager {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionManager {
    /// An empty manager; ids start at 1 so 0 never names a session.
    /// Equivalent to [`SessionManager::new_for_shard`]`(0, 1)` — the
    /// single-shard topology where every id is local.
    pub fn new() -> Self {
        Self::new_for_shard(0, 1)
    }

    /// An empty manager minting only ids that
    /// [`crate::shard::shard_of`] places on `shard` (of `shards`).
    /// Shards of one server share no state but mint from the same
    /// global sequence shape: each skips candidates owned elsewhere,
    /// so ids stay unique *and* self-locating across the fleet.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards`.
    pub fn new_for_shard(shard: usize, shards: usize) -> Self {
        assert!(shard < shards, "shard {shard} out of range 0..{shards}");
        // Stagger the counters so concurrent shards don't scan the same
        // candidate prefix; any starting point works, the filter below
        // is what enforces placement.
        Self {
            next_id: AtomicU64::new(1 + shard as u64),
            sessions: Mutex::new(HashMap::new()),
            shard,
            shards,
        }
    }

    /// Opens a session with the default [`BatchHint::Auto`] hint.
    pub fn create(&self) -> u64 {
        self.create_with_hint(BatchHint::Auto)
    }

    /// Opens a session carrying the tenant's declared batching hint and
    /// returns its id. The id is drawn from the candidate sequence
    /// until one hashes to this manager's shard — with one shard every
    /// candidate matches, reproducing the historical dense sequence.
    pub fn create_with_hint(&self, hint: BatchHint) -> u64 {
        let id = loop {
            let candidate = self.next_id.fetch_add(1, Ordering::Relaxed);
            if crate::shard::shard_of(candidate, self.shards) == self.shard {
                break candidate;
            }
        };
        let session = Session::default();
        session.hint.store(hint as u8, Ordering::Relaxed);
        self.sessions
            .lock()
            .expect("sessions poisoned")
            .insert(id, Arc::new(session));
        id
    }

    /// Resolves an id, or [`ErrorCode::NoSession`].
    pub fn get(&self, id: u64) -> Result<Arc<Session>, ErrorCode> {
        self.sessions
            .lock()
            .expect("sessions poisoned")
            .get(&id)
            .cloned()
            .ok_or(ErrorCode::NoSession)
    }

    /// Closes a session; the caller must also purge the key cache.
    pub fn close(&self, id: u64) -> Result<(), ErrorCode> {
        self.sessions
            .lock()
            .expect("sessions poisoned")
            .remove(&id)
            .map(|_| ())
            .ok_or(ErrorCode::NoSession)
    }

    /// Drops every open session at once (a chaos session-table loss, or
    /// an operator reset); returns how many were closed. Callers must
    /// also purge the key cache, exactly as with [`SessionManager::close`].
    pub fn close_all(&self) -> usize {
        let mut sessions = self.sessions.lock().expect("sessions poisoned");
        let n = sessions.len();
        sessions.clear();
        n
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().expect("sessions poisoned").len()
    }

    /// True when no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of compressed key bytes across all open sessions.
    pub fn stored_bytes(&self) -> u64 {
        self.sessions
            .lock()
            .expect("sessions poisoned")
            .values()
            .map(|s| s.stored_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_key_lookup() {
        let mgr = SessionManager::new();
        assert!(mgr.is_empty());
        let id = mgr.create();
        assert_ne!(id, 0);
        let s = mgr.get(id).unwrap();
        assert!(matches!(
            s.key_bytes(KeyKind::Relin),
            Err(ErrorCode::MissingKey)
        ));
        s.set_relin(vec![1, 2, 3]);
        s.set_galois(9, vec![4, 5]);
        assert_eq!(*s.key_bytes(KeyKind::Relin).unwrap(), vec![1, 2, 3]);
        assert_eq!(*s.key_bytes(KeyKind::Galois(9)).unwrap(), vec![4, 5]);
        assert!(matches!(
            s.key_bytes(KeyKind::Galois(10)),
            Err(ErrorCode::MissingKey)
        ));
        assert_eq!(s.stored_bytes(), 5);
        assert_eq!(mgr.stored_bytes(), 5);
        mgr.close(id).unwrap();
        assert!(matches!(mgr.get(id), Err(ErrorCode::NoSession)));
        assert!(matches!(mgr.close(id), Err(ErrorCode::NoSession)));
    }

    #[test]
    fn programs_are_stored_per_session_and_counted() {
        use fhe_program::program::KeyManifest;
        let mgr = SessionManager::new();
        let s = mgr.get(mgr.create()).unwrap();
        assert!(matches!(s.program(1), Err(ErrorCode::Malformed)));
        let stored = StoredProgram {
            program: Program::default(),
            info: ProgramInfo {
                manifest: KeyManifest::default(),
                instrs: Vec::new(),
                outputs: Vec::new(),
            },
            wire_len: 42,
        };
        let id = s.store_program(stored);
        assert_ne!(id, 0);
        assert_eq!(s.program(id).unwrap().wire_len, 42);
        assert_eq!(s.stored_bytes(), 42);
        assert_eq!(mgr.stored_bytes(), 42);
    }

    #[test]
    fn hints_stick_to_their_session() {
        let mgr = SessionManager::new();
        let a = mgr.create();
        let b = mgr.create_with_hint(BatchHint::Throughput);
        let c = mgr.create_with_hint(BatchHint::Interactive);
        assert_eq!(mgr.get(a).unwrap().batch_hint(), BatchHint::Auto);
        assert_eq!(mgr.get(b).unwrap().batch_hint(), BatchHint::Throughput);
        assert_eq!(mgr.get(c).unwrap().batch_hint(), BatchHint::Interactive);
    }

    #[test]
    fn sharded_managers_mint_self_locating_disjoint_ids() {
        let shards = 4;
        let managers: Vec<SessionManager> = (0..shards)
            .map(|s| SessionManager::new_for_shard(s, shards))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for (shard, mgr) in managers.iter().enumerate() {
            for _ in 0..16 {
                let id = mgr.create();
                assert_eq!(
                    crate::shard::shard_of(id, shards),
                    shard,
                    "id {id} minted by shard {shard} hashes elsewhere"
                );
                assert!(seen.insert(id), "id {id} minted twice across shards");
            }
        }
    }

    #[test]
    fn close_all_empties_the_table() {
        let mgr = SessionManager::new();
        let a = mgr.create();
        let b = mgr.create();
        assert_eq!(mgr.close_all(), 2);
        assert!(mgr.is_empty());
        assert!(matches!(mgr.get(a), Err(ErrorCode::NoSession)));
        assert!(matches!(mgr.get(b), Err(ErrorCode::NoSession)));
        // Ids keep monotonically increasing across a reset.
        let c = mgr.create();
        assert!(c > b);
        assert_eq!(mgr.close_all(), 1);
    }
}
