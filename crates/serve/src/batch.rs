//! Key-reuse-aware batching: configuration, the grouping key, and cheap
//! request-body peeks for the scheduler.
//!
//! The paper's thesis is that FHE serving time is dominated by moving
//! switching keys, not arithmetic — and the biggest server-side lever is
//! *inter-operation key reuse*: run requests that need the same keys
//! back-to-back so each expansion is paid for once (ARK's insight,
//! applied cross-request). The scheduler sits between the readers and the
//! worker pool, groups keyed requests by `(session, KeyClass)`, and
//! dispatches a whole group to one worker as a unit. The worker pins the
//! group's expanded key-set in the [`crate::cache::KeyCache`] for the
//! batch's duration and shares one hoisted ModUp decomposition across
//! rotations of the same ciphertext.
//!
//! Everything here is policy-free bookkeeping; the scheduler loop and the
//! batch executor live in `server.rs` next to the threads they run on.

use crate::protocol::Opcode;
use std::time::Duration;

/// Knobs for the batching scheduler, part of
/// [`crate::server::ServeConfig`]. [`BatchConfig::default`] reads the
/// `MAD_SERVE_BATCHING`, `MAD_SERVE_BATCH_SIZE` and
/// `MAD_SERVE_BATCH_DELAY_MS` environment variables so deployments (and
/// the CI matrix) can flip the scheduler without a rebuild; explicit
/// struct values always win over the environment.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Run the scheduler at all. Off means every request goes straight
    /// to the worker queue, byte-identically to the pre-batching server.
    pub enabled: bool,
    /// A group dispatches as soon as it holds this many requests.
    pub max_batch: usize,
    /// A group dispatches at latest this long after its first request
    /// (the hold applies to `Auto` sessions only while the worker pool
    /// is busy, and to `Throughput` sessions always).
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

impl BatchConfig {
    /// Built-in defaults: enabled, groups of up to 8, 2 ms window.
    pub const fn baseline() -> Self {
        Self {
            enabled: true,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
        }
    }

    /// The baseline overridden by `MAD_SERVE_BATCHING` (`on`/`off`,
    /// `1`/`0`, `true`/`false`), `MAD_SERVE_BATCH_SIZE` (requests) and
    /// `MAD_SERVE_BATCH_DELAY_MS` (milliseconds). Unparseable values are
    /// ignored.
    pub fn from_env() -> Self {
        let mut cfg = Self::baseline();
        if let Ok(v) = std::env::var("MAD_SERVE_BATCHING") {
            match v.to_ascii_lowercase().as_str() {
                "on" | "1" | "true" | "yes" => cfg.enabled = true,
                "off" | "0" | "false" | "no" => cfg.enabled = false,
                _ => {}
            }
        }
        if let Some(n) = std::env::var("MAD_SERVE_BATCH_SIZE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.max_batch = n.max(1);
        }
        if let Some(ms) = std::env::var("MAD_SERVE_BATCH_DELAY_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            cfg.max_delay = Duration::from_millis(ms);
        }
        cfg
    }
}

/// Which shared key material a batchable opcode needs — the second half
/// of the scheduler's grouping key `(session, KeyClass)`. Ops in the
/// same class on the same session reuse each other's pinned expansions;
/// ops with no class (session management, key-free arithmetic) bypass
/// the scheduler entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyClass {
    /// Needs the relinearization key (`Mult`).
    Relin,
    /// Needs Galois keys (`Rotate`, `Bsgs`).
    Galois,
    /// Needs both (`HelrStep`: relin + the fold rotations; `RunProgram`:
    /// whatever its key manifest names, refined at pin time).
    RelinGalois,
}

impl KeyClass {
    /// The key class of an opcode, or `None` if it holds no keys and
    /// must never be held back for batching.
    ///
    /// `RunProgram` is classed conservatively as [`KeyClass::RelinGalois`]
    /// — the exact key set is per-program (its manifest), and the batch
    /// executor resolves the actual pins from the stored program when the
    /// group dispatches.
    pub fn of(op: Opcode) -> Option<Self> {
        match op {
            Opcode::Mult => Some(KeyClass::Relin),
            Opcode::Rotate | Opcode::Bsgs => Some(KeyClass::Galois),
            Opcode::HelrStep | Opcode::RunProgram => Some(KeyClass::RelinGalois),
            _ => None,
        }
    }
}

/// The session id every keyed request body leads with, or `None` for a
/// truncated body (which then bypasses batching and fails in the
/// handler as before).
pub(crate) fn peek_session(body: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(body.get(..8)?.try_into().ok()?))
}

/// The rotation amount of a `Rotate` body (`sid:u64, steps:i64, ct`).
pub(crate) fn peek_rotate_steps(body: &[u8]) -> Option<i64> {
    Some(i64::from_le_bytes(body.get(8..16)?.try_into().ok()?))
}

/// The program id of a `RunProgram` body (`sid:u64, pid:u64, inputs…`).
pub(crate) fn peek_program_id(body: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(body.get(8..16)?.try_into().ok()?))
}

/// The ciphertext bytes of a `Rotate` body — the grouping key for
/// hoist-sharing: rotations of bit-identical ciphertexts share one
/// ModUp decomposition.
pub(crate) fn peek_rotate_ct(body: &[u8]) -> Option<&[u8]> {
    body.get(16..)
}

/// The rotation steps a `Bsgs` body will require, mirroring
/// `bsgs_required_steps` without materializing the diagonals: baby steps
/// `1..n1` plus the deduped nonzero giant steps `(offset/n1)*n1`. The
/// diagonal payloads (`slots` complex f64s each) are skipped, not
/// parsed. Returns `None` on any truncation or bound violation — the
/// handler will produce the structured error.
pub(crate) fn peek_bsgs_steps(body: &[u8], slots: usize) -> Option<Vec<i64>> {
    let mut off = 8usize; // past the session id
    let u32_at = |body: &[u8], off: usize| -> Option<u32> {
        Some(u32::from_le_bytes(body.get(off..off + 4)?.try_into().ok()?))
    };
    let n1 = u32_at(body, off)? as usize;
    off += 4;
    let diag_count = u32_at(body, off)? as usize;
    off += 4;
    if n1 == 0 || n1 > slots || diag_count == 0 || diag_count > slots {
        return None;
    }
    let mut steps: Vec<i64> = (1..n1 as i64).collect();
    let mut giants = Vec::new();
    for _ in 0..diag_count {
        let offset = u32_at(body, off)? as usize;
        off += 4 + slots * 16;
        if offset >= slots {
            return None;
        }
        let g = ((offset / n1) * n1) as i64;
        if g != 0 {
            giants.push(g);
        }
    }
    body.get(..off)?; // the diagonals must actually be present
    giants.sort_unstable();
    giants.dedup();
    steps.extend(giants);
    Some(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BodyWriter;

    #[test]
    fn key_classes_partition_the_opcodes() {
        assert_eq!(KeyClass::of(Opcode::Mult), Some(KeyClass::Relin));
        assert_eq!(KeyClass::of(Opcode::Rotate), Some(KeyClass::Galois));
        assert_eq!(KeyClass::of(Opcode::Bsgs), Some(KeyClass::Galois));
        assert_eq!(KeyClass::of(Opcode::HelrStep), Some(KeyClass::RelinGalois));
        assert_eq!(
            KeyClass::of(Opcode::RunProgram),
            Some(KeyClass::RelinGalois)
        );
        for op in [
            Opcode::Hello,
            Opcode::UploadRelin,
            Opcode::UploadGalois,
            Opcode::CloseSession,
            Opcode::UploadProgram,
            Opcode::Add,
            Opcode::PtMult,
            Opcode::Rescale,
            Opcode::Metrics,
        ] {
            assert_eq!(KeyClass::of(op), None, "{op:?} must bypass batching");
        }
    }

    #[test]
    fn peeks_match_the_wire_layout() {
        let mut w = BodyWriter::new();
        w.u64(7); // sid
        w.i64(-3); // steps
        w.raw(b"ciphertext");
        assert_eq!(peek_session(&w.0), Some(7));
        assert_eq!(peek_rotate_steps(&w.0), Some(-3));
        assert_eq!(peek_rotate_ct(&w.0), Some(&b"ciphertext"[..]));
        assert_eq!(peek_session(&[1, 2, 3]), None);
        assert_eq!(peek_rotate_steps(&[0; 12]), None);
        let mut p = BodyWriter::new();
        p.u64(7).u64(11).raw(b"inputs");
        assert_eq!(peek_program_id(&p.0), Some(11));
        assert_eq!(peek_program_id(&[0; 12]), None);
    }

    #[test]
    fn bsgs_peek_skips_diagonals_and_collects_baby_and_giant_steps() {
        let slots = 4;
        let mut w = BodyWriter::new();
        w.u64(9); // sid
        w.u32(2); // n1
        w.u32(3); // diag_count
        for offset in [0u32, 2, 3] {
            w.u32(offset);
            for _ in 0..slots * 2 {
                w.f64(0.5);
            }
        }
        w.raw(b"ct");
        // Baby steps 1..2, giants {2} (offsets 2 and 3 both map to 2).
        assert_eq!(peek_bsgs_steps(&w.0, slots), Some(vec![1, 2]));
        // Truncated diagonals: no steps.
        assert_eq!(peek_bsgs_steps(&w.0[..w.0.len() - slots * 16], slots), None);
        // Out-of-range offset: no steps.
        let mut bad = BodyWriter::new();
        bad.u64(9);
        bad.u32(2);
        bad.u32(1);
        bad.u32(99);
        for _ in 0..slots * 2 {
            bad.f64(0.0);
        }
        assert_eq!(peek_bsgs_steps(&bad.0, slots), None);
    }

    #[test]
    fn env_overrides_are_parsed_leniently() {
        // Note: avoids std::env mutation (process-global); exercises the
        // parser through the baseline instead.
        let cfg = BatchConfig::baseline();
        assert!(cfg.enabled);
        assert!(cfg.max_batch >= 1);
        assert!(cfg.max_delay > Duration::ZERO);
    }
}
