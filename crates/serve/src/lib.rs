#![warn(missing_docs)]

//! A multi-tenant FHE evaluation server built on the `ckks` crate —
//! the MAD paper's memory-aware techniques turned into a service.
//!
//! The paper's key observation is that FHE at scale is bound by key and
//! ciphertext *bytes*, not modular multiplies. A serving runtime faces
//! the same wall one level up: every tenant brings megabytes of
//! switching keys, and the host cannot keep them all expanded. This
//! crate operationalizes the paper's two memory levers:
//!
//! - **Key compression (§3.2)** on the wire and at rest: clients upload
//!   seeded keys at half size, sessions store only that compressed form,
//!   and the [`cache::KeyCache`] regenerates full keys from seeds on
//!   demand under a server-wide byte budget — trading compute for
//!   resident key memory, with LRU or pin-hot eviction mirroring the
//!   trace simulator's cache policies.
//! - **Deterministic evaluation** end to end: seeded expansion is
//!   bit-exact and every evaluator op is deterministic, so a result
//!   computed through the server is *bit-identical* to the same calls
//!   made locally — which the loopback integration test asserts.
//!
//! The stack is std-only: a framed TCP protocol ([`protocol`]) over the
//! `MADf` serialization, a session manager ([`session`]), a key-reuse
//! batching scheduler ([`batch`]) grouping requests that share switching
//! keys, and a scale-out server ([`server`]) of N independent shard
//! loops driving nonblocking sockets — sessions are placed on shards by
//! consistent hashing of the session id ([`shard`]), so a tenant's
//! compressed keys, cache slice, batching groups, and programs live on
//! exactly one shard. Plain-text metrics ([`metrics`]) aggregate across
//! shards with per-shard labels, and request-scoped tracing attributes
//! per-stage latency with the owning shard stamped on every timeline
//! ([`obs`]). [`client::Client`]
//! is the matching blocking client, and [`client::RetryingClient`] wraps
//! it with capped exponential backoff, per-op timeouts, and transparent
//! reconnect with session re-setup and compressed-key re-upload.
//!
//! Building with `--features chaos` adds a deterministic fault-injection
//! layer ([`fault`]): a seeded [`fault::FaultPlan`] wired into
//! [`ServeConfig`] injects I/O errors, torn frames, latency, eviction
//! storms, overload rejections, and worker panics on a fixed schedule,
//! so every failure a test observes replays bit-for-bit from its seed.
//! The default build compiles none of the injection sites.
//!
//! ```no_run
//! use fhe_serve::{Client, ServeConfig, Server};
//! use ckks::{CkksContext, CkksParams};
//!
//! let ctx = CkksContext::new(
//!     CkksParams::builder()
//!         .log_degree(5)
//!         .levels(3)
//!         .scale_bits(30)
//!         .first_modulus_bits(36)
//!         .dnum(2)
//!         .build()
//!         .unwrap(),
//! );
//! let server = Server::start(ctx.clone(), ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr(), ctx).unwrap();
//! let session = client.hello().unwrap();
//! // … upload keys, evaluate, then:
//! client.close_session(session).unwrap();
//! server.shutdown();
//! ```

pub mod batch;
pub mod cache;
pub mod client;
pub mod fault;
pub mod metrics;
pub mod obs;
pub mod protocol;
pub mod server;
pub mod session;
pub mod shard;

pub use batch::{BatchConfig, KeyClass};
pub use cache::{CacheStats, EvictionPolicy, KeyCache, KeyKind};
pub use client::{
    Client, ClientError, HelloInfo, ProgramHandle, RetryPolicy, RetryStats, RetryingClient,
};
pub use fault::{FaultDecision, FaultMix, FaultPlan, InjectedFault};
pub use obs::{chrome_trace_json, FinishedTrace, ObsConfig, Stage, SubSpan};
pub use protocol::{BatchHint, ErrorCode, Opcode, PROTOCOL_VERSION};
pub use server::{ServeConfig, Server};
pub use session::{Session, SessionManager, StoredProgram};
pub use shard::{shard_of, shards_from_env, MAX_SHARDS};
