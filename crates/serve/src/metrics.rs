//! Server observability: per-op latency histograms, queue and wire
//! gauges, and a plain-text dump in a Prometheus-flavoured format.
//!
//! Everything is lock-free atomics so the hot path (one histogram update
//! and a few counter bumps per request) never contends. The dump also
//! folds in the key cache's counters and, when the `telemetry` feature is
//! on, the `fhe-math` key-expansion totals — tying the serving layer's
//! view ("cache miss") to the library's view ("bytes regenerated").

use crate::cache::CacheStats;
use crate::protocol::Opcode;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 microsecond buckets: bucket `i` counts latencies in
/// `[2^i, 2^{i+1})` µs, with the last bucket open-ended (≈ 35 minutes).
const BUCKETS: usize = 22;

/// A log2 latency histogram with total count and sum.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, d: Duration) {
        let us = d.as_micros() as u64;
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded latencies in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    fn dump_into(&self, out: &mut String, op: &str) {
        let mut cumulative = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            let le = 1u64 << (i + 1);
            let _ = writeln!(
                out,
                "serve_op_latency_us_bucket{{op=\"{op}\",le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "serve_op_latency_us_count{{op=\"{op}\"}} {}",
            self.count()
        );
        let _ = writeln!(
            out,
            "serve_op_latency_us_sum{{op=\"{op}\"}} {}",
            self.sum_us()
        );
    }
}

/// All server-side counters; one instance shared by every thread.
#[derive(Default)]
pub struct Metrics {
    latency: [Histogram; Opcode::ALL.len()],
    /// Requests accepted into the queue.
    pub requests_total: AtomicU64,
    /// Responses carrying a non-zero status.
    pub errors_total: AtomicU64,
    /// Requests rejected at enqueue because the queue was full.
    pub rejected_overload: AtomicU64,
    /// Requests dropped at dequeue because their deadline had passed.
    pub rejected_deadline: AtomicU64,
    /// Frame bytes read off the wire (including headers).
    pub bytes_read: AtomicU64,
    /// Frame bytes written to the wire (including headers).
    pub bytes_written: AtomicU64,
    /// Requests currently queued (enqueued, not yet picked up).
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub queue_peak: AtomicU64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latency histogram for one opcode.
    pub fn latency(&self, op: Opcode) -> &Histogram {
        let idx = Opcode::ALL.iter().position(|&o| o == op).expect("in table");
        &self.latency[idx]
    }

    /// Marks a request entering the queue.
    pub fn enqueued(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Marks a request leaving the queue.
    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Undoes [`Metrics::enqueued`] when the bounded queue rejected the
    /// request (callers count the enqueue *before* the send so a worker
    /// can never observe a negative depth).
    pub fn retracted(&self) {
        self.requests_total.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Renders every counter, plus the cache's, as plain text. Lines are
    /// `name{labels} value`, one metric per line, stable names.
    pub fn dump(&self, cache: &CacheStats) -> String {
        let mut out = String::new();
        let g = |out: &mut String, name: &str, v: u64| {
            let _ = writeln!(out, "{name} {v}");
        };
        g(
            &mut out,
            "serve_requests_total",
            self.requests_total.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_errors_total",
            self.errors_total.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_rejected_overload_total",
            self.rejected_overload.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_rejected_deadline_total",
            self.rejected_deadline.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_bytes_read_total",
            self.bytes_read.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_bytes_written_total",
            self.bytes_written.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_queue_depth",
            self.queue_depth.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_queue_depth_peak",
            self.queue_peak.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_connections_total",
            self.connections_total.load(Ordering::Relaxed),
        );
        g(&mut out, "serve_key_cache_hits_total", cache.hits);
        g(&mut out, "serve_key_cache_misses_total", cache.misses);
        g(&mut out, "serve_key_cache_evictions_total", cache.evictions);
        g(
            &mut out,
            "serve_key_cache_resident_bytes",
            cache.resident_bytes,
        );
        g(
            &mut out,
            "serve_key_cache_resident_keys",
            cache.resident_keys,
        );
        let (expansions, expansion_bytes) = fhe_math::telemetry::key_expansion_totals();
        g(&mut out, "serve_key_expansions_total", expansions);
        g(&mut out, "serve_key_expansion_bytes_total", expansion_bytes);
        for op in Opcode::ALL {
            let h = self.latency(op);
            if h.count() > 0 {
                h.dump_into(&mut out, op.name());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(1));
        h.observe(Duration::from_micros(3));
        h.observe(Duration::from_micros(1000));
        h.observe(Duration::from_secs(7200)); // clamps to the last bucket
        assert_eq!(h.count(), 4);
        let m = Metrics::new();
        m.latency(Opcode::Add).observe(Duration::from_micros(5));
        let dump = m.dump(&CacheStats::default());
        assert!(dump.contains("serve_op_latency_us_count{op=\"add\"} 1"));
        assert!(dump.contains("serve_requests_total 0"));
        assert!(dump.contains("serve_key_cache_hits_total 0"));
    }

    #[test]
    fn queue_gauges_track_depth_and_peak() {
        let m = Metrics::new();
        m.enqueued();
        m.enqueued();
        m.dequeued();
        m.enqueued();
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 2);
        assert_eq!(m.queue_peak.load(Ordering::Relaxed), 2);
        assert_eq!(m.requests_total.load(Ordering::Relaxed), 3);
    }
}
