//! Server observability: per-op latency histograms, queue and wire
//! gauges, and a plain-text dump in a Prometheus-flavoured format.
//!
//! Everything is lock-free atomics so the hot path (one histogram update
//! and a few counter bumps per request) never contends. The dump also
//! folds in the key cache's counters and, when the `telemetry` feature is
//! on, the `fhe-math` key-expansion totals — tying the serving layer's
//! view ("cache miss") to the library's view ("bytes regenerated").

use crate::cache::CacheStats;
use crate::protocol::Opcode;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 microsecond buckets. Bucket 0 is the labeled floor:
/// everything at or below 1 µs (sub-microsecond requests included, not
/// collapsed into an unlabeled slot). Bucket `i ≥ 1` counts latencies in
/// `(2^{i-1}, 2^i]` µs, so every bucket's upper bound is its `le` label.
/// The final slot is an unlabeled overflow (> 2^{BUCKETS-2} µs ≈ 4.2 s)
/// that only ever surfaces through the `le="+Inf"` line of the dump.
const BUCKETS: usize = 24;

/// A log2 latency histogram with total count and sum.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one observation, clamping sub-microsecond durations into
    /// the labeled `le="1"` floor bucket.
    pub fn observe(&self, d: Duration) {
        let us = d.as_micros() as u64;
        let idx = if us <= 1 {
            0
        } else {
            (64 - (us - 1).leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded latencies in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    fn dump_into(&self, out: &mut String, op: &str) {
        let mut cumulative = 0;
        // The last slot is the unlabeled overflow bucket: it is rendered
        // only through the `+Inf` line below, never with a numeric `le`
        // it would violate.
        for (i, b) in self.buckets.iter().take(BUCKETS - 1).enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            let le = 1u64 << i;
            let _ = writeln!(
                out,
                "serve_op_latency_us_bucket{{op=\"{op}\",le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "serve_op_latency_us_bucket{{op=\"{op}\",le=\"+Inf\"}} {}",
            self.count()
        );
        let _ = writeln!(
            out,
            "serve_op_latency_us_count{{op=\"{op}\"}} {}",
            self.count()
        );
        let _ = writeln!(
            out,
            "serve_op_latency_us_sum{{op=\"{op}\"}} {}",
            self.sum_us()
        );
    }
}

/// Number of pow-2 batch-size buckets: `le = 1, 2, 4, …, 2^10`, plus an
/// unlabeled overflow rendered only through `+Inf`.
const SIZE_BUCKETS: usize = 12;

/// A log2 histogram over small counts (batch sizes), mirroring
/// [`Histogram`]'s cumulative dump format.
#[derive(Default)]
pub struct CountHistogram {
    buckets: [AtomicU64; SIZE_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl CountHistogram {
    /// Records one observation (`n ≥ 1`; zero clamps to the floor bucket).
    pub fn observe(&self, n: u64) {
        let idx = if n <= 1 {
            0
        } else {
            (64 - (n - 1).leading_zeros() as usize).min(SIZE_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(n, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn dump_into(&self, out: &mut String, name: &str) {
        let mut cumulative = 0;
        for (i, b) in self.buckets.iter().take(SIZE_BUCKETS - 1).enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            let le = 1u64 << i;
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count());
        let _ = writeln!(out, "{name}_count {}", self.count());
        let _ = writeln!(out, "{name}_sum {}", self.sum());
    }
}

/// All server-side counters; one instance shared by every thread.
#[derive(Default)]
pub struct Metrics {
    latency: [Histogram; Opcode::ALL.len()],
    /// Requests accepted into the queue.
    pub requests_total: AtomicU64,
    /// Responses carrying a non-zero status.
    pub errors_total: AtomicU64,
    /// Requests rejected at enqueue because the queue was full.
    pub rejected_overload: AtomicU64,
    /// Requests dropped at dequeue because their deadline had passed.
    pub rejected_deadline: AtomicU64,
    /// Frame bytes read off the wire (including headers).
    pub bytes_read: AtomicU64,
    /// Frame bytes written to the wire (including headers).
    pub bytes_written: AtomicU64,
    /// Requests currently queued (enqueued, not yet picked up).
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub queue_peak: AtomicU64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Faults deliberately injected by a chaos [`crate::fault::FaultPlan`]
    /// (always present in the dump; stays zero outside `chaos` builds).
    pub faults_injected: AtomicU64,
    /// 1 when the batching scheduler is active, 0 otherwise.
    pub batching_enabled: AtomicU64,
    /// Batches dispatched to the worker pool (singletons included).
    pub batches_total: AtomicU64,
    /// Requests that travelled inside a batch.
    pub batch_jobs_total: AtomicU64,
    /// Distribution of dispatched batch sizes.
    pub batch_size: CountHistogram,
    /// Keys pinned in the cache on behalf of a batch (one per key per
    /// batch).
    pub batch_keys_pinned: AtomicU64,
    /// Cache fetches short-circuited because the key was already pinned
    /// for the executing batch — each one is a lookup that, unbatched and
    /// under budget pressure, could have been a fresh expansion.
    pub batch_expansions_avoided: AtomicU64,
    /// Rotations that reused another request's hoisted ModUp
    /// decomposition (batch size minus one, per hoist-shared group).
    pub batch_hoist_shared: AtomicU64,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latency histogram for one opcode.
    pub fn latency(&self, op: Opcode) -> &Histogram {
        let idx = Opcode::ALL.iter().position(|&o| o == op).expect("in table");
        &self.latency[idx]
    }

    /// Marks a request entering the queue.
    pub fn enqueued(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Marks a request leaving the queue.
    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Undoes [`Metrics::enqueued`] when the bounded queue rejected the
    /// request (callers count the enqueue *before* the send so a worker
    /// can never observe a negative depth).
    pub fn retracted(&self) {
        self.requests_total.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Renders every counter, plus the cache's, as plain text. Lines are
    /// `name{labels} value`, one metric per line, stable names. `backend`
    /// is the context's active kernel backend, exported as an info-style
    /// gauge so dashboards can attribute latency shifts to kernel changes.
    pub fn dump(&self, cache: &CacheStats, backend: &str) -> String {
        let mut out = String::new();
        let g = |out: &mut String, name: &str, v: u64| {
            let _ = writeln!(out, "{name} {v}");
        };
        let _ = writeln!(out, "serve_kernel_backend{{backend=\"{backend}\"}} 1");
        g(
            &mut out,
            "serve_requests_total",
            self.requests_total.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_errors_total",
            self.errors_total.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_rejected_overload_total",
            self.rejected_overload.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_rejected_deadline_total",
            self.rejected_deadline.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_bytes_read_total",
            self.bytes_read.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_bytes_written_total",
            self.bytes_written.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_queue_depth",
            self.queue_depth.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_queue_depth_peak",
            self.queue_peak.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_connections_total",
            self.connections_total.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_faults_injected_total",
            self.faults_injected.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_batching_enabled",
            self.batching_enabled.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_batches_total",
            self.batches_total.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_batch_jobs_total",
            self.batch_jobs_total.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_batch_keys_pinned_total",
            self.batch_keys_pinned.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_batch_expansions_avoided_total",
            self.batch_expansions_avoided.load(Ordering::Relaxed),
        );
        g(
            &mut out,
            "serve_batch_hoist_shared_total",
            self.batch_hoist_shared.load(Ordering::Relaxed),
        );
        if self.batch_size.count() > 0 {
            self.batch_size.dump_into(&mut out, "serve_batch_size");
        }
        g(&mut out, "serve_key_cache_hits_total", cache.hits);
        g(&mut out, "serve_key_cache_misses_total", cache.misses);
        g(&mut out, "serve_key_cache_evictions_total", cache.evictions);
        g(
            &mut out,
            "serve_key_cache_resident_bytes",
            cache.resident_bytes,
        );
        g(
            &mut out,
            "serve_key_cache_resident_keys",
            cache.resident_keys,
        );
        g(&mut out, "serve_key_cache_pinned_keys", cache.pinned_keys);
        let (expansions, expansion_bytes) = fhe_math::telemetry::key_expansion_totals();
        g(&mut out, "serve_key_expansions_total", expansions);
        g(&mut out, "serve_key_expansion_bytes_total", expansion_bytes);
        for op in Opcode::ALL {
            let h = self.latency(op);
            if h.count() > 0 {
                h.dump_into(&mut out, op.name());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(1));
        h.observe(Duration::from_micros(3));
        h.observe(Duration::from_micros(1000));
        h.observe(Duration::from_secs(7200)); // lands in the +Inf overflow
        assert_eq!(h.count(), 4);
        let m = Metrics::new();
        m.latency(Opcode::Add).observe(Duration::from_micros(5));
        let dump = m.dump(&CacheStats::default(), "scalar");
        assert!(dump.contains("serve_op_latency_us_count{op=\"add\"} 1"));
        assert!(dump.contains("serve_op_latency_us_bucket{op=\"add\",le=\"+Inf\"} 1"));
        assert!(dump.contains("serve_requests_total 0"));
        assert!(dump.contains("serve_faults_injected_total 0"));
        assert!(dump.contains("serve_key_cache_hits_total 0"));
    }

    /// Parses `(le, cumulative)` pairs for one op out of a dump.
    fn bucket_lines(dump: &str, op: &str) -> Vec<(Option<u64>, u64)> {
        let prefix = format!("serve_op_latency_us_bucket{{op=\"{op}\",le=\"");
        dump.lines()
            .filter_map(|l| l.strip_prefix(&prefix))
            .map(|rest| {
                let (le, val) = rest.split_once("\"} ").expect("well-formed bucket line");
                (le.parse::<u64>().ok(), val.parse::<u64>().unwrap())
            })
            .collect()
    }

    #[test]
    fn sub_microsecond_lands_in_labeled_floor_bucket() {
        let m = Metrics::new();
        let h = m.latency(Opcode::Rotate);
        h.observe(Duration::from_nanos(0));
        h.observe(Duration::from_nanos(300));
        h.observe(Duration::from_micros(1));
        let dump = m.dump(&CacheStats::default(), "scalar");
        let lines = bucket_lines(&dump, "rotate");
        assert_eq!(
            lines.first(),
            Some(&(Some(1), 3)),
            "all three observations belong to the le=\"1\" floor bucket: {lines:?}"
        );
    }

    #[test]
    fn bucket_labels_are_monotone_and_cover_every_observation() {
        let m = Metrics::new();
        let h = m.latency(Opcode::Mult);
        // One observation per decade from sub-µs into the overflow range.
        let samples_us: [u64; 9] = [0, 1, 2, 17, 999, 65_000, 1 << 19, 1 << 20, 1 << 30];
        for us in samples_us {
            h.observe(Duration::from_micros(us));
        }
        let dump = m.dump(&CacheStats::default(), "scalar");
        let lines = bucket_lines(&dump, "mult");
        assert!(lines.len() >= 2);
        // Every rendered bucket is labeled except the final +Inf; labels
        // strictly increase and cumulative counts never decrease.
        let (last_le, last_cum) = lines.last().unwrap();
        assert!(last_le.is_none(), "dump must end with le=\"+Inf\"");
        assert_eq!(*last_cum, h.count(), "+Inf must cover every observation");
        let mut prev_le = 0u64;
        let mut prev_cum = 0u64;
        for (le, cum) in &lines[..lines.len() - 1] {
            let le = le.expect("only the final bucket may be +Inf");
            assert!(le > prev_le, "le labels must strictly increase");
            assert!(*cum >= prev_cum, "cumulative counts must not decrease");
            prev_le = le;
            prev_cum = *cum;
        }
        // Each labeled observation sits in a bucket whose le bounds it:
        // cumulative at le must count exactly the samples ≤ le.
        for (le, cum) in &lines[..lines.len() - 1] {
            let le = le.unwrap();
            let expect = samples_us.iter().filter(|&&s| s <= le).count() as u64;
            assert_eq!(
                *cum, expect,
                "cumulative at le={le} miscounts the samples ≤ {le}"
            );
        }
    }

    #[test]
    fn batch_size_histogram_buckets_by_pow2_and_dumps() {
        let m = Metrics::new();
        m.batch_size.observe(1);
        m.batch_size.observe(3);
        m.batch_size.observe(4);
        m.batch_size.observe(9000); // overflow, +Inf only
        m.batches_total.fetch_add(4, Ordering::Relaxed);
        m.batch_jobs_total.fetch_add(9008, Ordering::Relaxed);
        assert_eq!(m.batch_size.count(), 4);
        assert_eq!(m.batch_size.sum(), 9008);
        let dump = m.dump(&CacheStats::default(), "scalar");
        assert!(dump.contains("serve_batch_size_bucket{le=\"1\"} 1"));
        // 3 and 4 both land in le="4"; cumulative counts 1+2.
        assert!(dump.contains("serve_batch_size_bucket{le=\"4\"} 3"));
        assert!(dump.contains("serve_batch_size_bucket{le=\"+Inf\"} 4"));
        assert!(dump.contains("serve_batch_size_count 4"));
        assert!(dump.contains("serve_batches_total 4"));
        assert!(dump.contains("serve_batch_jobs_total 9008"));
        assert!(dump.contains("serve_batching_enabled 0"));
        assert!(dump.contains("serve_key_cache_pinned_keys 0"));
    }

    #[test]
    fn queue_gauges_track_depth_and_peak() {
        let m = Metrics::new();
        m.enqueued();
        m.enqueued();
        m.dequeued();
        m.enqueued();
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 2);
        assert_eq!(m.queue_peak.load(Ordering::Relaxed), 2);
        assert_eq!(m.requests_total.load(Ordering::Relaxed), 3);
    }
}
