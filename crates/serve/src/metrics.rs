//! Server observability: per-op latency histograms, queue and wire
//! gauges, and a plain-text dump in a Prometheus-flavoured format.
//!
//! Everything is lock-free atomics so the hot path (one histogram update
//! and a few counter bumps per request) never contends. The dump also
//! folds in the key cache's counters and, when the `telemetry` feature is
//! on, the `fhe-math` key-expansion totals — tying the serving layer's
//! view ("cache miss") to the library's view ("bytes regenerated").

use crate::cache::CacheStats;
use crate::obs::Stage;
use crate::protocol::Opcode;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 microsecond buckets. Bucket 0 is the labeled floor:
/// everything at or below 1 µs (sub-microsecond requests included, not
/// collapsed into an unlabeled slot). Bucket `i ≥ 1` counts latencies in
/// `(2^{i-1}, 2^i]` µs, so every bucket's upper bound is its `le` label.
/// The final slot is an unlabeled overflow (> 2^{BUCKETS-2} µs ≈ 4.2 s)
/// that only ever surfaces through the `le="+Inf"` line of the dump.
const BUCKETS: usize = 24;

/// A log2 latency histogram with total count and sum.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one observation, clamping sub-microsecond durations into
    /// the labeled `le="1"` floor bucket.
    pub fn observe(&self, d: Duration) {
        let us = d.as_micros() as u64;
        let idx = if us <= 1 {
            0
        } else {
            (64 - (us - 1).leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded latencies in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// The `[lo, hi]` µs range bucket `i` covers, with the overflow
    /// bucket assigned a pseudo upper bound of twice its lower bound so
    /// interpolation stays finite.
    fn bucket_bounds(i: usize) -> (f64, f64) {
        if i == 0 {
            (0.0, 1.0)
        } else {
            let lo = (1u64 << (i - 1)) as f64;
            (lo, lo * 2.0)
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in µs, linearly interpolated inside
    /// the log2 bucket holding the target rank — the classic Prometheus
    /// `histogram_quantile` estimate, bounded by the bucket resolution.
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = (rank - cum) as f64 / n as f64;
                return Some(lo + (hi - lo) * frac);
            }
            cum += n;
        }
        None
    }

    /// Emits the cumulative bucket/count/sum sample lines for family
    /// `name`. `labels` is either empty or a `key="value"` fragment
    /// spliced before the `le` label.
    fn dump_into(&self, out: &mut String, name: &str, labels: &str) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0;
        // The last slot is the unlabeled overflow bucket: it is rendered
        // only through the `+Inf` line below, never with a numeric `le`
        // it would violate.
        for (i, b) in self.buckets.iter().take(BUCKETS - 1).enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            let le = 1u64 << i;
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
            self.count()
        );
        let braces = |s: &str| {
            if s.is_empty() {
                String::new()
            } else {
                format!("{{{s}}}")
            }
        };
        let _ = writeln!(out, "{name}_count{} {}", braces(labels), self.count());
        let _ = writeln!(out, "{name}_sum{} {}", braces(labels), self.sum_us());
    }

    /// Emits `p50`/`p95`/`p99` gauge samples for family `name` (empty
    /// histograms emit nothing).
    fn dump_quantiles_into(&self, out: &mut String, name: &str, labels: &str) {
        if self.count() == 0 {
            return;
        }
        let sep = if labels.is_empty() { "" } else { "," };
        for q in [0.5, 0.95, 0.99] {
            let v = self.quantile(q).expect("non-empty");
            let _ = writeln!(out, "{name}{{{labels}{sep}q=\"{q}\"}} {v:.1}");
        }
    }
}

/// Number of pow-2 batch-size buckets: `le = 1, 2, 4, …, 2^10`, plus an
/// unlabeled overflow rendered only through `+Inf`.
const SIZE_BUCKETS: usize = 12;

/// A log2 histogram over small counts (batch sizes), mirroring
/// [`Histogram`]'s cumulative dump format.
#[derive(Default)]
pub struct CountHistogram {
    buckets: [AtomicU64; SIZE_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl CountHistogram {
    /// Records one observation (`n ≥ 1`; zero clamps to the floor bucket).
    pub fn observe(&self, n: u64) {
        let idx = if n <= 1 {
            0
        } else {
            (64 - (n - 1).leading_zeros() as usize).min(SIZE_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(n, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn dump_into(&self, out: &mut String, name: &str) {
        let mut cumulative = 0;
        for (i, b) in self.buckets.iter().take(SIZE_BUCKETS - 1).enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            let le = 1u64 << i;
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count());
        let _ = writeln!(out, "{name}_count {}", self.count());
        let _ = writeln!(out, "{name}_sum {}", self.sum());
    }
}

/// One shard's contribution to the sharded metrics dump: its request
/// count, open sessions, and key-cache slice, captured together so the
/// per-shard lines in [`Metrics::dump_sharded`] describe one moment.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardSnapshot {
    /// The shard index (the `shard="i"` label value).
    pub shard: usize,
    /// Requests this shard has accepted into its queue.
    pub requests: u64,
    /// Sessions currently open on this shard.
    pub sessions: u64,
    /// This shard's key-cache counters.
    pub cache: CacheStats,
    /// This shard's slice of the global cache byte budget.
    pub budget_bytes: u64,
}

/// One row of the per-shard family table in
/// [`Metrics::dump_sharded`]: family name, Prometheus type, help text,
/// and the [`ShardSnapshot`] field it reads.
type ShardFamily = (
    &'static str,
    &'static str,
    &'static str,
    fn(&ShardSnapshot) -> u64,
);

/// All server-side counters; one instance shared by every thread.
#[derive(Default)]
pub struct Metrics {
    latency: [Histogram; Opcode::ALL.len()],
    /// Attributed latency per lifecycle [`Stage`], fed by the tracing
    /// layer at request finish.
    stage_latency: [Histogram; Stage::ALL.len()],
    /// End-to-end request latency (accept → reply written).
    e2e_latency: Histogram,
    /// Requests accepted into the queue.
    pub requests_total: AtomicU64,
    /// Responses carrying a non-zero status.
    pub errors_total: AtomicU64,
    /// Requests rejected at enqueue because the queue was full.
    pub rejected_overload: AtomicU64,
    /// Requests dropped at dequeue because their deadline had passed.
    pub rejected_deadline: AtomicU64,
    /// Frame bytes read off the wire (including headers).
    pub bytes_read: AtomicU64,
    /// Frame bytes written to the wire (including headers).
    pub bytes_written: AtomicU64,
    /// Requests currently queued (enqueued, not yet picked up).
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub queue_peak: AtomicU64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Faults deliberately injected by a chaos [`crate::fault::FaultPlan`]
    /// (always present in the dump; stays zero outside `chaos` builds).
    pub faults_injected: AtomicU64,
    /// 1 when the batching scheduler is active, 0 otherwise.
    pub batching_enabled: AtomicU64,
    /// Batches dispatched to the worker pool (singletons included).
    pub batches_total: AtomicU64,
    /// Requests that travelled inside a batch.
    pub batch_jobs_total: AtomicU64,
    /// Distribution of dispatched batch sizes.
    pub batch_size: CountHistogram,
    /// Keys pinned in the cache on behalf of a batch (one per key per
    /// batch).
    pub batch_keys_pinned: AtomicU64,
    /// Cache fetches short-circuited because the key was already pinned
    /// for the executing batch — each one is a lookup that, unbatched and
    /// under budget pressure, could have been a fresh expansion.
    pub batch_expansions_avoided: AtomicU64,
    /// Rotations that reused another request's hoisted ModUp
    /// decomposition (batch size minus one, per hoist-shared group).
    pub batch_hoist_shared: AtomicU64,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latency histogram for one opcode.
    pub fn latency(&self, op: Opcode) -> &Histogram {
        let idx = Opcode::ALL.iter().position(|&o| o == op).expect("in table");
        &self.latency[idx]
    }

    /// The attributed-latency histogram for one lifecycle stage.
    pub fn stage_latency(&self, stage: Stage) -> &Histogram {
        let idx = Stage::ALL.iter().position(|&s| s == stage).expect("listed");
        &self.stage_latency[idx]
    }

    /// The end-to-end request latency histogram.
    pub fn e2e_latency(&self) -> &Histogram {
        &self.e2e_latency
    }

    /// Marks a request entering the queue.
    pub fn enqueued(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Marks a request leaving the queue.
    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Undoes [`Metrics::enqueued`] when the bounded queue rejected the
    /// request (callers count the enqueue *before* the send so a worker
    /// can never observe a negative depth).
    pub fn retracted(&self) {
        self.requests_total.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Renders every counter, plus the cache's, as plain text in the
    /// Prometheus exposition format: every family gets a `# HELP` and
    /// `# TYPE` header immediately before its samples, families appear
    /// in a fixed order regardless of traffic, and histogram families
    /// additionally derive `p50`/`p95`/`p99` gauge estimates from their
    /// log2 buckets. `backend` is the context's active kernel backend,
    /// exported as an info-style gauge so dashboards can attribute
    /// latency shifts to kernel changes.
    pub fn dump(&self, cache: &CacheStats, backend: &str) -> String {
        let mut out = String::new();
        let family = |out: &mut String, name: &str, ty: &str, help: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {ty}");
        };
        let g = |out: &mut String, name: &str, ty: &str, help: &str, v: u64| {
            family(out, name, ty, help);
            let _ = writeln!(out, "{name} {v}");
        };

        family(
            &mut out,
            "serve_kernel_backend",
            "gauge",
            "Active kernel backend (info-style, value always 1).",
        );
        let _ = writeln!(out, "serve_kernel_backend{{backend=\"{backend}\"}} 1");

        let rel = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let counters: [(&str, &str, &str, u64); 22] = [
            (
                "serve_requests_total",
                "counter",
                "Requests accepted into the queue.",
                rel(&self.requests_total),
            ),
            (
                "serve_errors_total",
                "counter",
                "Responses carrying a non-zero status.",
                rel(&self.errors_total),
            ),
            (
                "serve_rejected_overload_total",
                "counter",
                "Requests rejected because the queue was full.",
                rel(&self.rejected_overload),
            ),
            (
                "serve_rejected_deadline_total",
                "counter",
                "Requests dropped because their deadline passed while queued.",
                rel(&self.rejected_deadline),
            ),
            (
                "serve_bytes_read_total",
                "counter",
                "Frame bytes read off the wire, headers included.",
                rel(&self.bytes_read),
            ),
            (
                "serve_bytes_written_total",
                "counter",
                "Frame bytes written to the wire, headers included.",
                rel(&self.bytes_written),
            ),
            (
                "serve_queue_depth",
                "gauge",
                "Requests currently queued (enqueued, not yet picked up).",
                rel(&self.queue_depth),
            ),
            (
                "serve_queue_depth_peak",
                "gauge",
                "High-water mark of serve_queue_depth.",
                rel(&self.queue_peak),
            ),
            (
                "serve_connections_total",
                "counter",
                "Connections accepted.",
                rel(&self.connections_total),
            ),
            (
                "serve_faults_injected_total",
                "counter",
                "Faults deliberately injected by a chaos plan.",
                rel(&self.faults_injected),
            ),
            (
                "serve_batching_enabled",
                "gauge",
                "1 when the batching scheduler is active.",
                rel(&self.batching_enabled),
            ),
            (
                "serve_batches_total",
                "counter",
                "Batches dispatched to the worker pool, singletons included.",
                rel(&self.batches_total),
            ),
            (
                "serve_batch_jobs_total",
                "counter",
                "Requests that travelled inside a batch.",
                rel(&self.batch_jobs_total),
            ),
            (
                "serve_batch_keys_pinned_total",
                "counter",
                "Keys pinned in the cache on behalf of a batch.",
                rel(&self.batch_keys_pinned),
            ),
            (
                "serve_batch_expansions_avoided_total",
                "counter",
                "Cache fetches short-circuited by a batch's pinned key-set.",
                rel(&self.batch_expansions_avoided),
            ),
            (
                "serve_batch_hoist_shared_total",
                "counter",
                "Rotations that reused another request's hoisted decomposition.",
                rel(&self.batch_hoist_shared),
            ),
            (
                "serve_key_cache_hits_total",
                "counter",
                "Key-cache hits.",
                cache.hits,
            ),
            (
                "serve_key_cache_misses_total",
                "counter",
                "Key-cache misses (each one a seeded expansion).",
                cache.misses,
            ),
            (
                "serve_key_cache_evictions_total",
                "counter",
                "Expanded keys evicted under budget pressure.",
                cache.evictions,
            ),
            (
                "serve_key_cache_resident_bytes",
                "gauge",
                "Bytes of expanded keys currently resident.",
                cache.resident_bytes,
            ),
            (
                "serve_key_cache_resident_keys",
                "gauge",
                "Expanded keys currently resident.",
                cache.resident_keys,
            ),
            (
                "serve_key_cache_pinned_keys",
                "gauge",
                "Keys currently pinned by executing batches.",
                cache.pinned_keys,
            ),
        ];
        for (name, ty, help, v) in counters {
            g(&mut out, name, ty, help, v);
        }

        family(
            &mut out,
            "serve_batch_size",
            "histogram",
            "Distribution of dispatched batch sizes.",
        );
        if self.batch_size.count() > 0 {
            self.batch_size.dump_into(&mut out, "serve_batch_size");
        }

        let (expansions, expansion_bytes) = fhe_math::telemetry::key_expansion_totals();
        g(
            &mut out,
            "serve_key_expansions_total",
            "counter",
            "Switching-key expansions performed by the math layer.",
            expansions,
        );
        g(
            &mut out,
            "serve_key_expansion_bytes_total",
            "counter",
            "Bytes of switching-key material regenerated from seeds.",
            expansion_bytes,
        );

        family(
            &mut out,
            "serve_op_latency_us",
            "histogram",
            "Handler latency per opcode, log2 µs buckets.",
        );
        for op in Opcode::ALL {
            let h = self.latency(op);
            if h.count() > 0 {
                h.dump_into(
                    &mut out,
                    "serve_op_latency_us",
                    &format!("op=\"{}\"", op.name()),
                );
            }
        }
        family(
            &mut out,
            "serve_op_latency_us_quantile",
            "gauge",
            "Per-opcode latency quantiles interpolated from the log2 buckets.",
        );
        for op in Opcode::ALL {
            self.latency(op).dump_quantiles_into(
                &mut out,
                "serve_op_latency_us_quantile",
                &format!("op=\"{}\"", op.name()),
            );
        }

        family(
            &mut out,
            "serve_stage_latency_us",
            "histogram",
            "Attributed latency per request lifecycle stage, log2 µs buckets.",
        );
        for s in Stage::ALL {
            let h = self.stage_latency(s);
            if h.count() > 0 {
                h.dump_into(
                    &mut out,
                    "serve_stage_latency_us",
                    &format!("stage=\"{}\"", s.name()),
                );
            }
        }
        family(
            &mut out,
            "serve_stage_latency_us_quantile",
            "gauge",
            "Per-stage latency quantiles interpolated from the log2 buckets.",
        );
        for s in Stage::ALL {
            self.stage_latency(s).dump_quantiles_into(
                &mut out,
                "serve_stage_latency_us_quantile",
                &format!("stage=\"{}\"", s.name()),
            );
        }

        family(
            &mut out,
            "serve_e2e_latency_us",
            "histogram",
            "End-to-end request latency (accept to reply written), log2 µs buckets.",
        );
        if self.e2e_latency.count() > 0 {
            self.e2e_latency
                .dump_into(&mut out, "serve_e2e_latency_us", "");
        }
        family(
            &mut out,
            "serve_e2e_latency_us_quantile",
            "gauge",
            "End-to-end latency quantiles interpolated from the log2 buckets.",
        );
        self.e2e_latency
            .dump_quantiles_into(&mut out, "serve_e2e_latency_us_quantile", "");
        out
    }

    /// [`Metrics::dump`] plus the per-shard families of a sharded
    /// server: the shard count, then per-shard request counters, open
    /// sessions, and each shard's key-cache slice (`shard="i"` labels).
    /// `cache` must be the *aggregate* of every shard's stats so the
    /// global families keep reading as one fleet-wide cache; family
    /// order is fixed and traffic-independent, exactly like
    /// [`Metrics::dump`].
    pub fn dump_sharded(
        &self,
        cache: &CacheStats,
        backend: &str,
        shards: &[ShardSnapshot],
    ) -> String {
        let mut out = self.dump(cache, backend);
        let family = |out: &mut String, name: &str, ty: &str, help: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {ty}");
        };
        family(
            &mut out,
            "serve_shards",
            "gauge",
            "Number of independent shard loops.",
        );
        let _ = writeln!(out, "serve_shards {}", shards.len());
        let labeled: [ShardFamily; 7] = [
            (
                "serve_shard_requests_total",
                "counter",
                "Requests accepted by this shard's loop.",
                |s| s.requests,
            ),
            (
                "serve_shard_sessions",
                "gauge",
                "Sessions currently open on this shard.",
                |s| s.sessions,
            ),
            (
                "serve_shard_key_cache_hits_total",
                "counter",
                "Key-cache hits on this shard's slice.",
                |s| s.cache.hits,
            ),
            (
                "serve_shard_key_cache_misses_total",
                "counter",
                "Key-cache misses on this shard's slice.",
                |s| s.cache.misses,
            ),
            (
                "serve_shard_key_cache_resident_bytes",
                "gauge",
                "Expanded-key bytes resident on this shard's slice.",
                |s| s.cache.resident_bytes,
            ),
            (
                "serve_shard_key_cache_budget_bytes",
                "gauge",
                "This shard's slice of the global cache byte budget.",
                |s| s.budget_bytes,
            ),
            (
                "serve_shard_key_cache_evictions_total",
                "counter",
                "Expanded keys evicted from this shard's slice.",
                |s| s.cache.evictions,
            ),
        ];
        for (name, ty, help, get) in labeled {
            family(&mut out, name, ty, help);
            for s in shards {
                let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", s.shard, get(s));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(1));
        h.observe(Duration::from_micros(3));
        h.observe(Duration::from_micros(1000));
        h.observe(Duration::from_secs(7200)); // lands in the +Inf overflow
        assert_eq!(h.count(), 4);
        let m = Metrics::new();
        m.latency(Opcode::Add).observe(Duration::from_micros(5));
        let dump = m.dump(&CacheStats::default(), "scalar");
        assert!(dump.contains("serve_op_latency_us_count{op=\"add\"} 1"));
        assert!(dump.contains("serve_op_latency_us_bucket{op=\"add\",le=\"+Inf\"} 1"));
        assert!(dump.contains("serve_requests_total 0"));
        assert!(dump.contains("serve_faults_injected_total 0"));
        assert!(dump.contains("serve_key_cache_hits_total 0"));
    }

    /// Parses `(le, cumulative)` pairs for one op out of a dump.
    fn bucket_lines(dump: &str, op: &str) -> Vec<(Option<u64>, u64)> {
        let prefix = format!("serve_op_latency_us_bucket{{op=\"{op}\",le=\"");
        dump.lines()
            .filter_map(|l| l.strip_prefix(&prefix))
            .map(|rest| {
                let (le, val) = rest.split_once("\"} ").expect("well-formed bucket line");
                (le.parse::<u64>().ok(), val.parse::<u64>().unwrap())
            })
            .collect()
    }

    #[test]
    fn sub_microsecond_lands_in_labeled_floor_bucket() {
        let m = Metrics::new();
        let h = m.latency(Opcode::Rotate);
        h.observe(Duration::from_nanos(0));
        h.observe(Duration::from_nanos(300));
        h.observe(Duration::from_micros(1));
        let dump = m.dump(&CacheStats::default(), "scalar");
        let lines = bucket_lines(&dump, "rotate");
        assert_eq!(
            lines.first(),
            Some(&(Some(1), 3)),
            "all three observations belong to the le=\"1\" floor bucket: {lines:?}"
        );
    }

    #[test]
    fn bucket_labels_are_monotone_and_cover_every_observation() {
        let m = Metrics::new();
        let h = m.latency(Opcode::Mult);
        // One observation per decade from sub-µs into the overflow range.
        let samples_us: [u64; 9] = [0, 1, 2, 17, 999, 65_000, 1 << 19, 1 << 20, 1 << 30];
        for us in samples_us {
            h.observe(Duration::from_micros(us));
        }
        let dump = m.dump(&CacheStats::default(), "scalar");
        let lines = bucket_lines(&dump, "mult");
        assert!(lines.len() >= 2);
        // Every rendered bucket is labeled except the final +Inf; labels
        // strictly increase and cumulative counts never decrease.
        let (last_le, last_cum) = lines.last().unwrap();
        assert!(last_le.is_none(), "dump must end with le=\"+Inf\"");
        assert_eq!(*last_cum, h.count(), "+Inf must cover every observation");
        let mut prev_le = 0u64;
        let mut prev_cum = 0u64;
        for (le, cum) in &lines[..lines.len() - 1] {
            let le = le.expect("only the final bucket may be +Inf");
            assert!(le > prev_le, "le labels must strictly increase");
            assert!(*cum >= prev_cum, "cumulative counts must not decrease");
            prev_le = le;
            prev_cum = *cum;
        }
        // Each labeled observation sits in a bucket whose le bounds it:
        // cumulative at le must count exactly the samples ≤ le.
        for (le, cum) in &lines[..lines.len() - 1] {
            let le = le.unwrap();
            let expect = samples_us.iter().filter(|&&s| s <= le).count() as u64;
            assert_eq!(
                *cum, expect,
                "cumulative at le={le} miscounts the samples ≤ {le}"
            );
        }
    }

    #[test]
    fn batch_size_histogram_buckets_by_pow2_and_dumps() {
        let m = Metrics::new();
        m.batch_size.observe(1);
        m.batch_size.observe(3);
        m.batch_size.observe(4);
        m.batch_size.observe(9000); // overflow, +Inf only
        m.batches_total.fetch_add(4, Ordering::Relaxed);
        m.batch_jobs_total.fetch_add(9008, Ordering::Relaxed);
        assert_eq!(m.batch_size.count(), 4);
        assert_eq!(m.batch_size.sum(), 9008);
        let dump = m.dump(&CacheStats::default(), "scalar");
        assert!(dump.contains("serve_batch_size_bucket{le=\"1\"} 1"));
        // 3 and 4 both land in le="4"; cumulative counts 1+2.
        assert!(dump.contains("serve_batch_size_bucket{le=\"4\"} 3"));
        assert!(dump.contains("serve_batch_size_bucket{le=\"+Inf\"} 4"));
        assert!(dump.contains("serve_batch_size_count 4"));
        assert!(dump.contains("serve_batches_total 4"));
        assert!(dump.contains("serve_batch_jobs_total 9008"));
        assert!(dump.contains("serve_batching_enabled 0"));
        assert!(dump.contains("serve_key_cache_pinned_keys 0"));
    }

    #[test]
    fn quantiles_interpolate_inside_log2_buckets() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        // 100 observations spread uniformly over (256, 512] land in one
        // bucket; interpolation should place p50 near its middle and
        // p99 near its top.
        for i in 1..=100u64 {
            h.observe(Duration::from_micros(256 + i * 256 / 100));
        }
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 > 256.0 && p50 < 512.0, "p50 = {p50}");
        assert!(p50 <= p95 && p95 <= p99, "p50 {p50} p95 {p95} p99 {p99}");
        assert!((p50 - 384.0).abs() < 32.0, "p50 ≈ bucket midpoint: {p50}");
        assert!(p99 > 500.0 && p99 <= 512.0, "p99 ≈ bucket top: {p99}");
        // A bimodal distribution: quantiles pick the right bucket.
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.observe(Duration::from_micros(100_000));
        }
        assert!(h.quantile(0.5).unwrap() <= 16.0);
        assert!(h.quantile(0.95).unwrap() > 65_536.0);
    }

    /// Strips a sample line down to its family name: label block and
    /// value dropped, histogram suffixes folded into the family.
    fn family_of(line: &str) -> String {
        let name = line
            .split(['{', ' '])
            .next()
            .expect("non-empty line")
            .to_string();
        for suffix in ["_bucket", "_count", "_sum"] {
            if let Some(stripped) = name.strip_suffix(suffix) {
                return stripped.to_string();
            }
        }
        name
    }

    #[test]
    fn dump_has_help_and_type_for_every_series_in_stable_order() {
        let m = Metrics::new();
        m.latency(Opcode::Rotate)
            .observe(Duration::from_micros(700));
        m.stage_latency(Stage::Kernel)
            .observe(Duration::from_micros(650));
        m.e2e_latency().observe(Duration::from_micros(800));
        m.batch_size.observe(3);
        m.enqueued();
        let dump = m.dump(&CacheStats::default(), "scalar");

        let mut families_in_order = Vec::new();
        let mut typed = std::collections::HashSet::new();
        let mut helped = std::collections::HashSet::new();
        for line in dump.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, ty) = rest.split_once(' ').expect("TYPE name ty");
                assert!(
                    matches!(ty, "counter" | "gauge" | "histogram"),
                    "unknown type: {line}"
                );
                assert!(typed.insert(name.to_string()), "duplicate TYPE for {name}");
                families_in_order.push(name.to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(helped.insert(name.to_string()), "duplicate HELP for {name}");
                continue;
            }
            if line.is_empty() {
                continue;
            }
            // Every sample line's family must have been declared above it,
            // quantile gauges included.
            let fam = family_of(line);
            assert!(
                typed.contains(&fam),
                "sample before its TYPE header: {line} (family {fam})"
            );
        }
        assert_eq!(typed, helped, "HELP and TYPE must pair up exactly");

        // Ordering is structural, not traffic-dependent: a dump from a
        // metrics instance with different traffic declares the same
        // families in the same order.
        let m2 = Metrics::new();
        m2.latency(Opcode::Add).observe(Duration::from_micros(5));
        let dump2 = m2.dump(&CacheStats::default(), "unrolled");
        let families2: Vec<String> = dump2
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(|r| r.split(' ').next().unwrap().to_string())
            .collect();
        assert_eq!(families_in_order, families2, "family order must be stable");

        // Quantile estimates honour the bucket that fed them.
        assert!(dump.contains("serve_stage_latency_us_quantile{stage=\"kernel\",q=\"0.5\"}"));
        assert!(dump.contains("serve_e2e_latency_us_quantile{q=\"0.99\"}"));
        assert!(dump.contains("serve_op_latency_us_quantile{op=\"rotate\",q=\"0.95\"}"));
    }

    #[test]
    fn sharded_dump_appends_per_shard_families_after_the_global_ones() {
        let m = Metrics::new();
        m.enqueued();
        let agg = CacheStats {
            hits: 3,
            misses: 2,
            accesses: 5,
            ..CacheStats::default()
        };
        let shards = [
            ShardSnapshot {
                shard: 0,
                requests: 1,
                sessions: 2,
                cache: CacheStats {
                    hits: 3,
                    misses: 1,
                    accesses: 4,
                    ..CacheStats::default()
                },
                budget_bytes: 512,
            },
            ShardSnapshot {
                shard: 1,
                requests: 0,
                sessions: 0,
                cache: CacheStats {
                    misses: 1,
                    accesses: 1,
                    ..CacheStats::default()
                },
                budget_bytes: 512,
            },
        ];
        let dump = m.dump_sharded(&agg, "scalar", &shards);
        // The global families are the plain dump, byte for byte.
        assert!(dump.starts_with(&m.dump(&agg, "scalar")));
        assert!(dump.contains("serve_shards 2"));
        assert!(dump.contains("serve_shard_requests_total{shard=\"0\"} 1"));
        assert!(dump.contains("serve_shard_requests_total{shard=\"1\"} 0"));
        assert!(dump.contains("serve_shard_sessions{shard=\"0\"} 2"));
        assert!(dump.contains("serve_shard_key_cache_hits_total{shard=\"0\"} 3"));
        assert!(dump.contains("serve_shard_key_cache_budget_bytes{shard=\"1\"} 512"));
        // Every appended family is declared before its samples.
        for name in [
            "serve_shards",
            "serve_shard_requests_total",
            "serve_shard_sessions",
            "serve_shard_key_cache_hits_total",
            "serve_shard_key_cache_misses_total",
            "serve_shard_key_cache_resident_bytes",
            "serve_shard_key_cache_budget_bytes",
            "serve_shard_key_cache_evictions_total",
        ] {
            assert!(dump.contains(&format!("# HELP {name} ")), "{name}");
            assert!(dump.contains(&format!("# TYPE {name} ")), "{name}");
        }
    }

    #[test]
    fn queue_gauges_track_depth_and_peak() {
        let m = Metrics::new();
        m.enqueued();
        m.enqueued();
        m.dequeued();
        m.enqueued();
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 2);
        assert_eq!(m.queue_peak.load(Ordering::Relaxed), 2);
        assert_eq!(m.requests_total.load(Ordering::Relaxed), 3);
    }
}
