//! The byte-budgeted switching-key cache — the paper's compute-for-memory
//! trade made operational.
//!
//! Sessions store keys only in their seeded-compressed wire form (half
//! size, §3.2). An evaluation op asks the cache for the *expanded* key;
//! on a miss the cache regenerates the `a_j` polynomials from the seed,
//! charges the expanded bytes against its budget, and evicts other
//! entries until it fits. A later request for an evicted key pays the
//! expansion again — exactly the regenerate-from-seed cost the
//! `serve_loopback` bench measures against a cache hit.
//!
//! Two eviction policies mirror the `simfhe` trace cache's
//! `CachePolicy::{Lru, PinKeys}`: plain LRU, and a pin-hot-keys variant
//! that keeps frequently used keys (bootstrapping's working set in the
//! paper) and sheds cold ones first.

use crate::protocol::ErrorCode;
use ckks::serialize::deserialize_switching_key;
use ckks::{CkksContext, SwitchingKey};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Which key a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyKind {
    /// The session's relinearization key (`s² → s`).
    Relin,
    /// The Galois key for this element.
    Galois(u64),
}

/// Eviction policy for [`KeyCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used expansion.
    Lru,
    /// Pin hot keys: evict the entry with the fewest hits, breaking ties
    /// toward the least recently used — the serving analogue of the trace
    /// simulator's pin-keys cache policy.
    PinHot,
}

struct Entry {
    key: Arc<SwitchingKey>,
    bytes: u64,
    last_used: u64,
    hits: u64,
    /// Active batch pins. A pinned entry is never evicted — not by budget
    /// pressure, not by an eviction storm — so a batch executing against
    /// it cannot lose the expansion mid-flight. Pinned bytes may push the
    /// cache transiently over budget; [`KeyCache::unpin`] re-evicts.
    pins: u32,
}

struct Inner {
    entries: HashMap<(u64, KeyKind), Entry>,
    bytes: u64,
    clock: u64,
}

/// Counters exported by [`KeyCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an existing expansion.
    pub hits: u64,
    /// Lookups that had to expand from the compressed form.
    pub misses: u64,
    /// Total lookups. Always `hits + misses`; kept as its own counter so
    /// the per-shard invariant check can assert the partition instead of
    /// assuming it.
    pub accesses: u64,
    /// Expansions evicted to fit the budget.
    pub evictions: u64,
    /// Expanded bytes currently resident.
    pub resident_bytes: u64,
    /// Number of resident expansions.
    pub resident_keys: u64,
    /// Resident expansions currently pinned by an executing batch.
    pub pinned_keys: u64,
}

impl CacheStats {
    /// Folds another shard's counters into this one. Monotone counters
    /// (`hits`/`misses`/`accesses`/`evictions`) and residency gauges
    /// (`resident_bytes`/`resident_keys`/`pinned_keys`) all sum: the
    /// aggregate reads as one fleet-wide cache.
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.accesses += other.accesses;
        self.evictions += other.evictions;
        self.resident_bytes += other.resident_bytes;
        self.resident_keys += other.resident_keys;
        self.pinned_keys += other.pinned_keys;
    }
}

/// A byte-budgeted cache of expanded switching keys, shared by every
/// worker.
///
/// One mutex guards the whole cache, held across expansion on a miss.
/// That serializes concurrent misses — a deliberate simplification at
/// this scale (it also prevents two workers from expanding the same key
/// twice); a production server would expand outside the lock with a
/// per-entry in-flight marker.
pub struct KeyCache {
    budget_bytes: u64,
    policy: EvictionPolicy,
    inner: Mutex<Inner>,
    stats: Mutex<CacheStats>,
}

impl KeyCache {
    /// A cache that keeps at most `budget_bytes` of expanded key material.
    pub fn new(budget_bytes: u64, policy: EvictionPolicy) -> Self {
        Self {
            budget_bytes,
            policy,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                bytes: 0,
                clock: 0,
            }),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Returns the expanded key for `(session, kind)`, expanding
    /// `compressed` (a serialized switching-key message, typically seeded)
    /// on a miss and evicting per policy to stay within budget.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Malformed`] if the stored compressed bytes fail to
    /// deserialize against `ctx`.
    pub fn get_or_expand(
        &self,
        ctx: &CkksContext,
        session: u64,
        kind: KeyKind,
        compressed: &[u8],
    ) -> Result<Arc<SwitchingKey>, ErrorCode> {
        self.lookup(ctx, session, kind, compressed, false)
    }

    /// Like [`KeyCache::get_or_expand`], but additionally takes a pin on
    /// the entry before releasing the cache lock. A pinned entry survives
    /// budget eviction, eviction storms, and policy pressure until every
    /// pin is released via [`KeyCache::unpin`]. The batch executor pins a
    /// group's whole key-set up front so back-to-back requests in the
    /// batch can never re-expand a key mid-flight.
    pub fn get_or_expand_pinned(
        &self,
        ctx: &CkksContext,
        session: u64,
        kind: KeyKind,
        compressed: &[u8],
    ) -> Result<Arc<SwitchingKey>, ErrorCode> {
        self.lookup(ctx, session, kind, compressed, true)
    }

    fn lookup(
        &self,
        ctx: &CkksContext,
        session: u64,
        kind: KeyKind,
        compressed: &[u8],
        pin: bool,
    ) -> Result<Arc<SwitchingKey>, ErrorCode> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.clock += 1;
        let now = inner.clock;
        if let Some(e) = inner.entries.get_mut(&(session, kind)) {
            e.last_used = now;
            e.hits += 1;
            if pin {
                e.pins += 1;
            }
            let pinned = Self::pinned_count(&inner);
            let key = inner.entries[&(session, kind)].key.clone();
            let mut stats = self.stats.lock().expect("stats poisoned");
            stats.hits += 1;
            stats.accesses += 1;
            stats.pinned_keys = pinned;
            return Ok(key);
        }
        // Miss: regenerate the full key from its compressed form. The
        // telemetry counter records the compute-for-memory price paid.
        let key = deserialize_switching_key(ctx, compressed).map_err(|_| ErrorCode::Malformed)?;
        let bytes = key.size_bytes();
        fhe_math::telemetry::record_key_expansion(bytes);
        let key = Arc::new(key);
        inner.entries.insert(
            (session, kind),
            Entry {
                key: key.clone(),
                bytes,
                last_used: now,
                hits: 1,
                pins: u32::from(pin),
            },
        );
        inner.bytes += bytes;
        let evicted = self.evict_to_budget(&mut inner, Some((session, kind)));
        let mut stats = self.stats.lock().expect("stats poisoned");
        stats.misses += 1;
        stats.accesses += 1;
        stats.evictions += evicted;
        stats.resident_bytes = inner.bytes;
        stats.resident_keys = inner.entries.len() as u64;
        stats.pinned_keys = Self::pinned_count(&inner);
        Ok(key)
    }

    fn pinned_count(inner: &Inner) -> u64 {
        inner.entries.values().filter(|e| e.pins > 0).count() as u64
    }

    /// Releases one pin on `(session, kind)`. Dropping the last pin makes
    /// the entry evictable again and immediately re-evicts to budget, so
    /// any transient pinned overage ends with the batch that caused it.
    /// Unpinning an entry that was purged or never pinned is a no-op.
    pub fn unpin(&self, session: u64, kind: KeyKind) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(e) = inner.entries.get_mut(&(session, kind)) {
            e.pins = e.pins.saturating_sub(1);
        }
        let evicted = self.evict_to_budget(&mut inner, None);
        let mut stats = self.stats.lock().expect("stats poisoned");
        stats.evictions += evicted;
        stats.resident_bytes = inner.bytes;
        stats.resident_keys = inner.entries.len() as u64;
        stats.pinned_keys = Self::pinned_count(&inner);
    }

    /// Evicts unpinned entries (never `keep`) until within budget; returns
    /// how many were dropped. If the surviving set — `keep` plus anything
    /// pinned — alone exceeds the budget it stays resident (the in-flight
    /// requests need those keys regardless) and everything else goes.
    fn evict_to_budget(&self, inner: &mut Inner, keep: Option<(u64, KeyKind)>) -> u64 {
        let mut evicted = 0;
        while inner.bytes > self.budget_bytes {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, e)| Some(**k) != keep && e.pins == 0)
                .min_by_key(|(_, e)| match self.policy {
                    EvictionPolicy::Lru => (e.last_used, 0),
                    EvictionPolicy::PinHot => (e.hits, e.last_used),
                })
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let e = inner.entries.remove(&k).expect("victim exists");
                    inner.bytes -= e.bytes;
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }

    /// Forcibly evicts every resident *unpinned* expansion (a chaos
    /// "eviction storm", or an operator flushing the cache). Entries
    /// pinned by an in-flight batch survive — the batch holds `Arc`s to
    /// them anyway, so evicting would only lie about residency. Later
    /// lookups re-expand from the compressed forms bit-exactly; only the
    /// compute price is paid again. Returns how many expansions were
    /// dropped.
    pub fn evict_all(&self) -> u64 {
        let mut inner = self.inner.lock().expect("cache poisoned");
        let before = inner.entries.len() as u64;
        inner.entries.retain(|_, e| e.pins > 0);
        inner.bytes = inner.entries.values().map(|e| e.bytes).sum();
        let dropped = before - inner.entries.len() as u64;
        let mut stats = self.stats.lock().expect("stats poisoned");
        stats.evictions += dropped;
        stats.resident_bytes = inner.bytes;
        stats.resident_keys = inner.entries.len() as u64;
        stats.pinned_keys = Self::pinned_count(&inner);
        dropped
    }

    /// Asserts the cache's internal invariants and returns a consistent
    /// stats snapshot. Both locks are taken in writer order, so the view
    /// cannot tear against a concurrent insert, storm, or purge:
    ///
    /// - the byte ledger equals the sum of resident entry sizes,
    /// - the stats mirror (`resident_bytes`/`resident_keys`/`pinned_keys`)
    ///   matches,
    /// - the *unpinned* bytes fit the budget, except when a single
    ///   unpinned entry alone exceeds it (the in-flight request needs
    ///   that key regardless). Pinned bytes are exempt: a batch may pin a
    ///   key-set larger than the budget for its duration, and
    ///   [`KeyCache::unpin`] re-evicts the moment the batch ends.
    ///
    /// Used by the concurrency stress and chaos suites; cheap enough to
    /// call mid-storm.
    pub fn check_invariants(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache poisoned");
        let sum: u64 = inner.entries.values().map(|e| e.bytes).sum();
        assert_eq!(
            sum, inner.bytes,
            "byte ledger diverged from resident entries"
        );
        let stats = *self.stats.lock().expect("stats poisoned");
        assert_eq!(
            stats.hits + stats.misses,
            stats.accesses,
            "lookups must partition into hits and misses"
        );
        assert_eq!(
            stats.resident_bytes, inner.bytes,
            "stats byte mirror diverged"
        );
        assert_eq!(
            stats.resident_keys,
            inner.entries.len() as u64,
            "stats key-count mirror diverged"
        );
        assert_eq!(
            stats.pinned_keys,
            Self::pinned_count(&inner),
            "stats pin-count mirror diverged"
        );
        let unpinned: Vec<&Entry> = inner.entries.values().filter(|e| e.pins == 0).collect();
        let unpinned_bytes: u64 = unpinned.iter().map(|e| e.bytes).sum();
        assert!(
            unpinned_bytes <= self.budget_bytes || unpinned.len() == 1,
            "budget exceeded by {} unpinned keys: {} > {}",
            unpinned.len(),
            unpinned_bytes,
            self.budget_bytes
        );
        stats
    }

    /// Drops every expansion belonging to `session` (session close),
    /// pinned or not — the session is gone, and any batch still executing
    /// against it keeps its `Arc`s alive independently of residency.
    pub fn purge_session(&self, session: u64) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        let gone: Vec<(u64, KeyKind)> = inner
            .entries
            .keys()
            .filter(|(s, _)| *s == session)
            .copied()
            .collect();
        for k in gone {
            let e = inner.entries.remove(&k).expect("key exists");
            inner.bytes -= e.bytes;
        }
        let mut stats = self.stats.lock().expect("stats poisoned");
        stats.resident_bytes = inner.bytes;
        stats.resident_keys = inner.entries.len() as u64;
        stats.pinned_keys = Self::pinned_count(&inner);
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("stats poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckks::serialize::serialize_switching_key;
    use ckks::{CkksParams, KeyGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Arc<CkksContext>, Vec<Vec<u8>>) {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_degree(5)
                .levels(3)
                .scale_bits(30)
                .first_modulus_bits(36)
                .dnum(2)
                .build()
                .unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(42);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let gk = kg.galois_keys_compressed(&mut rng, &sk, &[1, 2, 4], false);
        let blobs = gk.iter().map(|(_, k)| serialize_switching_key(k)).collect();
        (ctx, blobs)
    }

    #[test]
    fn hit_after_miss_and_eviction_under_budget() {
        let (ctx, blobs) = setup();
        let one_key = deserialize_switching_key(&ctx, &blobs[0])
            .unwrap()
            .size_bytes();
        // Budget fits exactly two expanded keys.
        let cache = KeyCache::new(2 * one_key, EvictionPolicy::Lru);
        for (i, b) in blobs.iter().enumerate() {
            cache
                .get_or_expand(&ctx, 1, KeyKind::Galois(i as u64), b)
                .unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 1, "third insert evicts the LRU entry");
        assert!(s.resident_bytes <= 2 * one_key);
        // Key 0 was evicted; key 2 is resident.
        cache
            .get_or_expand(&ctx, 1, KeyKind::Galois(2), &blobs[2])
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
        cache
            .get_or_expand(&ctx, 1, KeyKind::Galois(0), &blobs[0])
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.misses, 4, "evicted key must be re-expanded");
        assert_eq!(
            s.hits + s.misses,
            5,
            "accesses partition into hits and misses"
        );
    }

    #[test]
    fn pin_hot_keeps_the_frequently_used_key() {
        let (ctx, blobs) = setup();
        let one_key = deserialize_switching_key(&ctx, &blobs[0])
            .unwrap()
            .size_bytes();
        let cache = KeyCache::new(2 * one_key, EvictionPolicy::PinHot);
        // Make key 0 hot, then stream keys 1 and 2 through.
        for _ in 0..5 {
            cache
                .get_or_expand(&ctx, 1, KeyKind::Galois(0), &blobs[0])
                .unwrap();
        }
        cache
            .get_or_expand(&ctx, 1, KeyKind::Galois(1), &blobs[1])
            .unwrap();
        cache
            .get_or_expand(&ctx, 1, KeyKind::Galois(2), &blobs[2])
            .unwrap();
        // Key 0 must still be a hit (LRU would have evicted it as oldest).
        let before = cache.stats().misses;
        cache
            .get_or_expand(&ctx, 1, KeyKind::Galois(0), &blobs[0])
            .unwrap();
        assert_eq!(cache.stats().misses, before, "hot key stayed pinned");
    }

    #[test]
    fn purge_drops_only_that_session() {
        let (ctx, blobs) = setup();
        let cache = KeyCache::new(u64::MAX, EvictionPolicy::Lru);
        cache
            .get_or_expand(&ctx, 1, KeyKind::Galois(0), &blobs[0])
            .unwrap();
        cache
            .get_or_expand(&ctx, 2, KeyKind::Galois(0), &blobs[0])
            .unwrap();
        assert_eq!(cache.stats().resident_keys, 2);
        cache.purge_session(1);
        assert_eq!(cache.stats().resident_keys, 1);
        cache
            .get_or_expand(&ctx, 2, KeyKind::Galois(0), &blobs[0])
            .unwrap();
        assert_eq!(cache.stats().hits, 1, "session 2's expansion survived");
    }

    #[test]
    fn evict_all_zeroes_residency_and_counts_evictions() {
        let (ctx, blobs) = setup();
        let cache = KeyCache::new(u64::MAX, EvictionPolicy::Lru);
        for (i, b) in blobs.iter().enumerate() {
            cache
                .get_or_expand(&ctx, 1, KeyKind::Galois(i as u64), b)
                .unwrap();
        }
        assert_eq!(cache.check_invariants().resident_keys, 3);
        assert_eq!(cache.evict_all(), 3);
        let s = cache.check_invariants();
        assert_eq!(s.resident_keys, 0);
        assert_eq!(s.resident_bytes, 0);
        assert_eq!(s.evictions, 3);
        // The storm is not destructive: the next lookup re-expands.
        cache
            .get_or_expand(&ctx, 1, KeyKind::Galois(0), &blobs[0])
            .unwrap();
        assert_eq!(cache.check_invariants().misses, 4);
    }

    #[test]
    fn pinned_keys_survive_storms_and_budget_pressure_until_unpinned() {
        let (ctx, blobs) = setup();
        let one_key = deserialize_switching_key(&ctx, &blobs[0])
            .unwrap()
            .size_bytes();
        // Budget fits a single key; pinning two must hold both resident.
        let cache = KeyCache::new(one_key, EvictionPolicy::Lru);
        cache
            .get_or_expand_pinned(&ctx, 1, KeyKind::Galois(0), &blobs[0])
            .unwrap();
        cache
            .get_or_expand_pinned(&ctx, 1, KeyKind::Galois(1), &blobs[1])
            .unwrap();
        let s = cache.check_invariants();
        assert_eq!(s.resident_keys, 2, "both pinned keys resident over budget");
        assert_eq!(s.pinned_keys, 2);
        // A storm mid-batch drops nothing pinned.
        assert_eq!(cache.evict_all(), 0);
        assert_eq!(cache.check_invariants().resident_keys, 2);
        // A pinned hit takes a second pin; one unpin leaves it pinned.
        cache
            .get_or_expand_pinned(&ctx, 1, KeyKind::Galois(0), &blobs[0])
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
        cache.unpin(1, KeyKind::Galois(0));
        assert_eq!(cache.evict_all(), 0, "second pin still held");
        // Releasing the last pins re-applies the budget.
        cache.unpin(1, KeyKind::Galois(0));
        cache.unpin(1, KeyKind::Galois(1));
        let s = cache.check_invariants();
        assert!(s.resident_bytes <= one_key, "unpin re-evicted to budget");
        assert_eq!(s.pinned_keys, 0);
        // Unpinning a purged entry is a harmless no-op.
        cache.unpin(1, KeyKind::Galois(2));
        cache.check_invariants();
    }

    #[test]
    fn check_invariants_fails_on_a_deliberately_overfull_shard() {
        let (ctx, blobs) = setup();
        let one_key = deserialize_switching_key(&ctx, &blobs[0])
            .unwrap()
            .size_bytes();
        // A shard whose budget slice fits one key, force-fed three
        // expansions behind the eviction logic's back — the state an
        // eviction bug would leave behind. The per-shard invariant
        // check must refuse it (two or more unpinned entries over
        // budget is never legal; only a single oversized in-flight
        // key is excused).
        let cache = KeyCache::new(one_key, EvictionPolicy::Lru);
        {
            let mut inner = cache.inner.lock().unwrap();
            for (i, b) in blobs.iter().enumerate() {
                let key = Arc::new(deserialize_switching_key(&ctx, b).unwrap());
                let bytes = key.size_bytes();
                inner.entries.insert(
                    (1, KeyKind::Galois(i as u64)),
                    Entry {
                        key,
                        bytes,
                        last_used: i as u64,
                        hits: 0,
                        pins: 0,
                    },
                );
                inner.bytes += bytes;
            }
            let mut stats = cache.stats.lock().unwrap();
            stats.resident_bytes = inner.bytes;
            stats.resident_keys = inner.entries.len() as u64;
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.check_invariants();
        }))
        .expect_err("overfull shard must fail the invariant check");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("budget exceeded"),
            "panic names the violated invariant: {msg}"
        );
    }

    #[test]
    fn check_invariants_fails_when_accesses_diverge_from_hits_plus_misses() {
        let (ctx, blobs) = setup();
        let cache = KeyCache::new(u64::MAX, EvictionPolicy::Lru);
        cache
            .get_or_expand(&ctx, 1, KeyKind::Galois(0), &blobs[0])
            .unwrap();
        cache.stats.lock().unwrap().accesses += 1;
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cache.check_invariants();
            }))
            .is_err(),
            "a torn access counter must fail the partition invariant"
        );
    }

    #[test]
    fn stats_accumulate_sums_every_counter() {
        let a = CacheStats {
            hits: 1,
            misses: 2,
            accesses: 3,
            evictions: 4,
            resident_bytes: 100,
            resident_keys: 5,
            pinned_keys: 1,
        };
        let mut total = CacheStats::default();
        total.accumulate(&a);
        total.accumulate(&a);
        assert_eq!(
            total,
            CacheStats {
                hits: 2,
                misses: 4,
                accesses: 6,
                evictions: 8,
                resident_bytes: 200,
                resident_keys: 10,
                pinned_keys: 2,
            }
        );
    }

    #[test]
    fn garbage_compressed_bytes_are_malformed_not_panic() {
        let (ctx, _) = setup();
        let cache = KeyCache::new(u64::MAX, EvictionPolicy::Lru);
        assert!(matches!(
            cache.get_or_expand(&ctx, 1, KeyKind::Relin, b"not a key"),
            Err(ErrorCode::Malformed)
        ));
    }
}
