//! Protocol fuzzing: throw random bytes and mutated-but-plausible frames
//! at a live server and assert the connection handler's contract — every
//! reply is either a success frame or a structured [`ErrorCode`], the
//! connection closes cleanly, the server never panics, and it keeps
//! serving well-formed clients afterwards. Runs under the default
//! feature set; no chaos plumbing involved.

use ckks::{CkksContext, CkksParams};
use fhe_serve::protocol::{frame_bytes, read_frame, FrameRead, DEFAULT_MAX_FRAME_BYTES};
use fhe_serve::{Client, ErrorCode, Opcode, ServeConfig, Server};
use proptest::prelude::*;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One server shared by every fuzz case: surviving hundreds of hostile
/// connections *on the same instance* is exactly the property under test.
fn shared() -> &'static (Arc<CkksContext>, Server) {
    static SHARED: OnceLock<(Arc<CkksContext>, Server)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_degree(5)
                .levels(3)
                .scale_bits(30)
                .first_modulus_bits(36)
                .dnum(2)
                .build()
                .unwrap(),
        );
        let server = Server::start(ctx.clone(), ServeConfig::default()).unwrap();
        (ctx, server)
    })
}

/// Writes `bytes` to a fresh connection, half-closes, and drains replies.
/// Fails the case on a panic-shaped outcome: an unstructured status tag,
/// a reply that never arrives (hang), or a server that stops accepting
/// healthy clients afterwards.
fn exercise(bytes: &[u8]) {
    let (ctx, server) = shared();
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("server must keep accepting");
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    // The server may legally slam the connection mid-write (e.g. after an
    // unrecoverable framing error); only a hang or a malformed reply is a
    // failure.
    match stream.write_all(bytes) {
        Ok(()) => {}
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset
            ) => {}
        Err(e) => panic!("unexpected write failure: {e}"),
    }
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Write);

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(
            Instant::now() < deadline,
            "server kept the connection open past the drain deadline"
        );
        match read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES) {
            Ok(FrameRead::Frame(f)) => {
                assert!(
                    f.tag == 0 || ErrorCode::from_u8(f.tag).is_some(),
                    "unstructured status tag {} in reply",
                    f.tag
                );
            }
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::TooLarge(n)) => panic!("server sent an oversize frame ({n} bytes)"),
            // A reset counts as a close; a timeout is a hang.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::UnexpectedEof
                ) =>
            {
                break
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                panic!("server hung instead of replying or closing")
            }
            Err(e) => panic!("unexpected read failure: {e}"),
        }
    }

    // The instance must still serve a well-formed client.
    let mut healthy = Client::connect(addr, ctx.clone()).expect("post-fuzz connect");
    let sid = healthy.hello().expect("post-fuzz hello");
    healthy.close_session(sid).expect("post-fuzz close");
}

/// A plausible frame to mutate: real opcodes, bodies from valid-ish to
/// garbage.
fn base_frame(which: usize, garbage: &[u8]) -> Vec<u8> {
    match which {
        0 => frame_bytes(Opcode::Hello as u8, &[]),
        1 => frame_bytes(Opcode::Add as u8, garbage),
        2 => frame_bytes(Opcode::Metrics as u8, &[]),
        3 => frame_bytes(Opcode::UploadRelin as u8, garbage),
        4 => {
            // UploadProgram: a session id followed by garbage where the
            // MADP program bytes belong.
            let mut body = 1u64.to_le_bytes().to_vec();
            body.extend_from_slice(garbage);
            frame_bytes(Opcode::UploadProgram as u8, &body)
        }
        5 => {
            // RunProgram: session + program ids (the latter almost
            // certainly unknown) followed by garbage inputs.
            let mut body = 1u64.to_le_bytes().to_vec();
            body.extend_from_slice(&7u64.to_le_bytes());
            body.extend_from_slice(garbage);
            frame_bytes(Opcode::RunProgram as u8, &body)
        }
        _ => frame_bytes(0xEE, garbage), // unknown opcode
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pure noise: arbitrary byte strings of arbitrary length.
    #[test]
    fn random_bytes_never_wedge_the_server(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        exercise(&bytes);
    }

    /// Structured hostility: take a plausible frame and truncate it,
    /// flip one bit, or append trailing garbage — the mutations a flaky
    /// network or a buggy client actually produces.
    #[test]
    fn mutated_frames_yield_structured_errors_or_clean_close(
        which in 0usize..7,
        mode in 0usize..3,
        cut in any::<u16>(),
        flip in any::<u16>(),
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut frame = base_frame(which, &garbage);
        match mode {
            0 => {
                // Truncate: a torn frame mid-length-prefix or mid-body.
                let keep = (cut as usize) % (frame.len() + 1);
                frame.truncate(keep);
            }
            1 => {
                // Flip one bit anywhere, including inside the length
                // prefix (declares a wrong body size).
                if !frame.is_empty() {
                    let i = (flip as usize) % frame.len();
                    frame[i] ^= 1 << (flip % 8);
                }
            }
            _ => {
                // Trailing garbage after a complete frame: the server
                // answers the valid frame, then must survive the tail.
                frame.extend_from_slice(&garbage);
            }
        }
        exercise(&frame);
    }
}
