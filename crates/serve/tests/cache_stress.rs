//! KeyCache concurrency stress: worker threads hammer `get_or_expand`
//! across many sessions and key kinds while a chaos thread repeatedly
//! force-evicts everything, and the byte-accounting invariants are
//! checked live from every thread. Runs under default features — the
//! cache's thread-safety contract is a production property, not a chaos
//! one.

use ckks::serialize::{deserialize_switching_key, serialize_switching_key};
use ckks::{CkksContext, CkksParams, KeyGenerator};
use fhe_serve::{EvictionPolicy, KeyCache, KeyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const WORKERS: u64 = 4;
const SESSIONS: u64 = 3;
const ITERS: u64 = 200;

#[test]
fn concurrent_expansion_under_eviction_storms_keeps_invariants() {
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(3)
            .scale_bits(30)
            .first_modulus_bits(36)
            .dnum(2)
            .build()
            .unwrap(),
    );
    // One compressed key per (session, kind): every session uploads a
    // relin key and Galois keys for two rotation offsets, like a real
    // tenant. Seeded keys expand deterministically, so repeated
    // expansions are bit-identical and safe to race.
    let mut rng = StdRng::seed_from_u64(42);
    let kg = KeyGenerator::new(ctx.clone());
    let mut kinds = vec![KeyKind::Relin];
    let mut compressed: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut key_bytes = 0u64;
    for session in 0..SESSIONS {
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key_compressed(&mut rng, &sk);
        let gk = kg.galois_keys_compressed(&mut rng, &sk, &[3, 9], false);
        let mut elements: Vec<u64> = gk.iter().map(|(e, _)| e).collect();
        elements.sort_unstable();
        if session == 0 {
            kinds.extend(elements.iter().map(|&e| KeyKind::Galois(e)));
        }
        let mut per_kind = vec![serialize_switching_key(rlk.switching_key())];
        per_kind.extend(
            elements
                .iter()
                .map(|&e| serialize_switching_key(gk.get(e).unwrap())),
        );
        // Budget in *expanded* key units: deserializing regenerates the
        // full key from the seed.
        key_bytes = deserialize_switching_key(&ctx, &per_kind[0])
            .unwrap()
            .size_bytes();
        compressed.push(per_kind);
    }
    let kinds = Arc::new(kinds);
    let compressed = Arc::new(compressed);

    // Budget three expanded keys against a working set of nine: the
    // workers force steady policy eviction even without the storms.
    let budget = 3 * key_bytes;
    let cache = Arc::new(KeyCache::new(budget, EvictionPolicy::Lru));
    let accesses = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Chaos thread: evict everything, as fast as possible, and verify
    // the counters stay consistent at every step.
    let chaos = {
        let cache = cache.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut storms = 0u64;
            while !stop.load(Ordering::Relaxed) {
                cache.evict_all();
                cache.check_invariants();
                storms += 1;
            }
            storms
        })
    };

    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let ctx = ctx.clone();
            let cache = cache.clone();
            let compressed = compressed.clone();
            let kinds = kinds.clone();
            let accesses = accesses.clone();
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let session = (w + i) % SESSIONS;
                    let kind_idx = ((w * 7 + i * 3) % kinds.len() as u64) as usize;
                    let kind = kinds[kind_idx];
                    let key = cache
                        .get_or_expand(&ctx, session, kind, &compressed[session as usize][kind_idx])
                        .expect("stored bytes always deserialize");
                    assert!(key.size_bytes() > 0);
                    accesses.fetch_add(1, Ordering::Relaxed);
                    // Periodically drop a whole session mid-flight, like a
                    // tenant disconnecting, and check the books.
                    if i % 50 == 49 {
                        cache.purge_session(session);
                        cache.check_invariants();
                    }
                }
            })
        })
        .collect();
    for h in workers {
        h.join().expect("worker panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let storms = chaos.join().expect("chaos thread panicked");

    let stats = cache.check_invariants();
    let total = accesses.load(Ordering::Relaxed);
    assert_eq!(total, WORKERS * ITERS);
    // Every access was either a hit or a miss, none lost to races.
    assert_eq!(
        stats.hits + stats.misses,
        total,
        "hit/miss accounting diverged: {stats:?}"
    );
    assert!(stats.resident_bytes <= budget, "budget overrun: {stats:?}");
    assert!(
        stats.evictions > 0,
        "working set exceeds budget, evictions required: {stats:?}"
    );
    assert!(storms > 0, "chaos thread never ran");

    // The cache must still work after the abuse.
    let key = cache
        .get_or_expand(&ctx, 0, KeyKind::Relin, &compressed[0][0])
        .unwrap();
    assert!(key.size_bytes() > 0);
}
