//! End-to-end contracts of the request-tracing layer (`fhe_serve::obs`):
//!
//! 1. **Perfetto loadability**: `TraceDump` returns Chrome trace-event
//!    JSON whose stage slices nest inside their request slice with
//!    monotonic, non-negative timestamps — the structure Perfetto needs
//!    to render a timeline.
//! 2. **Attribution adds up**: the per-stage latency histograms sum
//!    (within a scheduling-gap tolerance) to the end-to-end histogram,
//!    and the derived p50/p95/p99 are ordered.
//! 3. **Gauge integrity**: `serve_queue_depth` returns to zero after a
//!    churn of deadline-expired and overload-rejected requests — the
//!    accounting audit of the dequeue paths.
//! 4. **Hold attribution**: a request held by the batching scheduler
//!    reports that hold under `batch_hold`, not `queue`.
//! 5. (With `--features telemetry`) **deep sampling**: a deep-sampled
//!    request's timeline carries kernel sub-spans bridged from
//!    `fhe_math::telemetry`.

use ckks::{
    Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, GaloisKeys, KeyGenerator, SecretKey,
};
use fhe_math::cfft::Complex;
use fhe_serve::{
    BatchConfig, BatchHint, Client, EvictionPolicy, ObsConfig, ServeConfig, Server, Stage,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn test_ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(3)
            .scale_bits(30)
            .first_modulus_bits(36)
            .dnum(2)
            .build()
            .unwrap(),
    )
}

struct Tenant {
    gk: GaloisKeys,
    a: Ciphertext,
    b: Ciphertext,
}

fn make_tenant(ctx: &Arc<CkksContext>, seed: u64) -> Tenant {
    let slots = ctx.params().slots();
    let mut rng = StdRng::seed_from_u64(seed);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let gk = kg.galois_keys_compressed(&mut rng, &sk, &[1], false);
    let va: Vec<f64> = (0..slots).map(|i| (i as f64 * 0.31).sin() * 0.4).collect();
    let vb: Vec<f64> = (0..slots).map(|i| (i as f64 * 0.17).cos() * 0.4).collect();
    let a = encrypt_vec(ctx, &sk, &mut rng, &va);
    let b = encrypt_vec(ctx, &sk, &mut rng, &vb);
    Tenant { gk, a, b }
}

fn encrypt_vec(ctx: &Arc<CkksContext>, sk: &SecretKey, rng: &mut StdRng, v: &[f64]) -> Ciphertext {
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let pt = encoder
        .encode(&cv, ctx.params().levels(), ctx.params().scale())
        .unwrap();
    encryptor.encrypt_symmetric(rng, &pt, sk)
}

/// A server with tracing pinned to explicit knobs (the env matrix must
/// not leak into these assertions).
fn start_server(
    ctx: &Arc<CkksContext>,
    workers: usize,
    batch: BatchConfig,
    obs: ObsConfig,
) -> Server {
    Server::start(
        ctx.clone(),
        ServeConfig {
            workers,
            queue_capacity: 32,
            key_cache_budget: 64 << 20,
            eviction: EvictionPolicy::Lru,
            batch,
            obs,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

fn obs_on() -> ObsConfig {
    ObsConfig {
        enabled: true,
        ring_capacity: 64,
        deep_sample_every: 0,
        slow_threshold: Duration::ZERO,
    }
}

fn batch_off() -> BatchConfig {
    BatchConfig {
        enabled: false,
        ..BatchConfig::baseline()
    }
}

/// Pulls `"key": <integer>` out of one trace-event line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": \"");
    let at = line.find(&needle)? + needle.len();
    line[at..].split('"').next()
}

/// The value of a plain (label-less or exactly-labeled) metric sample.
fn metric(dump: &str, name: &str) -> u64 {
    dump.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("metric {name} missing from dump"))
        .trim()
        .parse()
        .unwrap()
}

fn metric_f64(dump: &str, name: &str) -> f64 {
    dump.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("metric {name} missing from dump"))
        .trim()
        .parse()
        .unwrap()
}

#[test]
fn trace_dump_is_perfetto_loadable_with_contained_slices() {
    let ctx = test_ctx();
    let tenant = make_tenant(&ctx, 1001);
    let server = start_server(&ctx, 2, batch_off(), obs_on());
    let mut client = Client::connect(server.local_addr(), ctx.clone()).unwrap();
    let info = client.hello_ext(BatchHint::Auto).unwrap();
    client.upload_galois(info.session, &tenant.gk).unwrap();
    for _ in 0..4 {
        client.add(info.session, &tenant.a, &tenant.b).unwrap();
        client.rotate(info.session, &tenant.a, 1).unwrap();
    }

    let json = client.trace_dump().unwrap();
    assert!(json.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"));
    assert!(json.trim_end().ends_with("]}"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("\"request:add (status 0)\""), "{json}");
    assert!(json.contains("\"request:rotate (status 0)\""));
    // The rotate path must surface its stage structure in the timeline.
    for stage in ["queue", "key", "kernel", "serialize", "write"] {
        assert!(
            json.contains(&format!("\"name\": \"{stage}\"")),
            "stage {stage} missing from the exported trace"
        );
    }

    // Every "X" slice nests inside its track's request slice, and all
    // timestamps are monotonic non-negative offsets — what Perfetto
    // needs to draw the timeline without clipping.
    let slices: Vec<&str> = json
        .lines()
        .filter(|l| l.contains("\"ph\": \"X\""))
        .collect();
    assert!(slices.len() >= 8, "expected a slice per request at least");
    let mut requests = 0usize;
    for req in &slices {
        let name = field_str(req, "name").unwrap();
        if !name.starts_with("request:") {
            continue;
        }
        requests += 1;
        let tid = field_u64(req, "tid").unwrap();
        let ts = field_u64(req, "ts").unwrap();
        let dur = field_u64(req, "dur").unwrap();
        for s in &slices {
            if field_u64(s, "tid") != Some(tid) || field_str(s, "name") == Some(name) {
                continue;
            }
            let sts = field_u64(s, "ts").unwrap();
            let sdur = field_u64(s, "dur").unwrap();
            let sname = field_str(s, "name").unwrap();
            assert!(
                sts >= ts && sts + sdur <= ts + dur.max(1),
                "slice {sname} [{sts}, {}] escapes request slice [{ts}, {}]",
                sts + sdur,
                ts + dur
            );
        }
    }
    assert_eq!(
        requests,
        slices
            .iter()
            .filter(|s| field_str(s, "name").unwrap().starts_with("request:"))
            .count()
    );
    assert!(requests >= 8, "one request slice per op, got {requests}");

    // Zero slow threshold: every request is in the structured log, each
    // line carrying the full stage breakdown and a dominant stage.
    let slow = client.slow_log().unwrap();
    let lines: Vec<&str> = slow.lines().collect();
    assert!(lines.len() >= 8, "slow log missing requests:\n{slow}");
    for line in &lines {
        assert!(line.starts_with("slow_request id="), "{line}");
        assert!(line.contains(" dominant="), "{line}");
        for s in Stage::ALL {
            assert!(line.contains(&format!(" {}_us=", s.name())), "{line}");
        }
    }

    // The dedicated slowest slot agrees with the ring.
    let slowest = server.slowest_trace().expect("traffic was recorded");
    let max_seen = server
        .recent_traces()
        .iter()
        .map(|t| t.total_us)
        .max()
        .unwrap();
    assert_eq!(slowest.total_us, max_seen);
    server.shutdown();
}

#[test]
fn stage_latencies_sum_to_end_to_end_with_ordered_quantiles() {
    let ctx = test_ctx();
    let tenant = make_tenant(&ctx, 2002);
    // One worker: no cross-request concurrency inside the pool, so the
    // stage attribution has nothing racing it.
    let server = start_server(&ctx, 1, batch_off(), obs_on());
    let mut client = Client::connect(server.local_addr(), ctx.clone()).unwrap();
    let info = client.hello_ext(BatchHint::Auto).unwrap();
    client.upload_galois(info.session, &tenant.gk).unwrap();
    let reqs = 16u64;
    for _ in 0..reqs {
        client.rotate(info.session, &tenant.a, 1).unwrap();
    }
    let dump = client.metrics().unwrap();
    server.shutdown();

    // Every finished request observed e2e and all seven stages.
    let e2e_count = metric(&dump, "serve_e2e_latency_us_count");
    assert!(e2e_count >= reqs, "e2e count {e2e_count} < {reqs}");
    let mut stage_sum = 0u64;
    for s in Stage::ALL {
        let label = format!("serve_stage_latency_us_count{{stage=\"{}\"}}", s.name());
        assert_eq!(metric(&dump, &label), e2e_count, "{label}");
        let label = format!("serve_stage_latency_us_sum{{stage=\"{}\"}}", s.name());
        stage_sum += metric(&dump, &label);
    }
    let e2e_sum = metric(&dump, "serve_e2e_latency_us_sum");

    // The taxonomy partitions e2e latency. Attribution can only lose
    // time (µs truncation per stamp, thread-wakeup gaps between
    // stages), never invent it.
    assert!(
        stage_sum <= e2e_sum + 8 * e2e_count,
        "stages ({stage_sum} µs) exceed end-to-end ({e2e_sum} µs)"
    );
    // And the gaps stay small: the stages must explain the bulk of the
    // measured end-to-end time. The bound is deliberately loose — CI
    // scheduling jitter lands in the unattributed gaps.
    assert!(
        stage_sum * 2 >= e2e_sum,
        "stages ({stage_sum} µs) explain under half of end-to-end ({e2e_sum} µs)"
    );

    // Derived quantiles exist and are ordered for the end-to-end and
    // per-stage families.
    let p50 = metric_f64(&dump, "serve_e2e_latency_us_quantile{q=\"0.5\"}");
    let p95 = metric_f64(&dump, "serve_e2e_latency_us_quantile{q=\"0.95\"}");
    let p99 = metric_f64(&dump, "serve_e2e_latency_us_quantile{q=\"0.99\"}");
    assert!(p50 > 0.0);
    assert!(p50 <= p95 && p95 <= p99, "p50 {p50} p95 {p95} p99 {p99}");
    let k50 = metric_f64(
        &dump,
        "serve_stage_latency_us_quantile{stage=\"kernel\",q=\"0.5\"}",
    );
    let k99 = metric_f64(
        &dump,
        "serve_stage_latency_us_quantile{stage=\"kernel\",q=\"0.99\"}",
    );
    assert!(k50 <= k99);
    // Rotate is kernel-bound on the cached path: its median can't
    // exceed the end-to-end median.
    assert!(k50 <= p50, "kernel p50 {k50} above e2e p50 {p50}");
}

#[test]
fn queue_depth_returns_to_zero_under_deadline_churn_and_overload() {
    let ctx = test_ctx();
    let tenant = Arc::new(make_tenant(&ctx, 3003));
    // A zero deadline expires every queued job deterministically (the
    // stamp-to-pickup gap is never literally zero), so every dequeue
    // runs the deadline-expired path; a tiny queue forces overload
    // rejections on top. Batching is on so keyed ops also cross the
    // scheduler's restamp-and-dispatch path.
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            key_cache_budget: 64 << 20,
            eviction: EvictionPolicy::Lru,
            request_deadline: Duration::ZERO,
            batch: BatchConfig {
                enabled: true,
                max_batch: 4,
                max_delay: Duration::from_millis(5),
            },
            obs: obs_on(),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for t in 0..4 {
        let (ctx, tenant) = (ctx.clone(), tenant.clone());
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr, ctx).unwrap();
            let mut rejected = 0usize;
            for i in 0..8 {
                // Bogus session: irrelevant, the deadline rejects the
                // job before the handler ever looks at it.
                let r = if (t + i) % 2 == 0 {
                    client.add(9999, &tenant.a, &tenant.b)
                } else {
                    client.rotate(9999, &tenant.a, 1)
                };
                if r.is_err() {
                    rejected += 1;
                }
            }
            rejected
        }));
    }
    let rejected: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(rejected, 32, "a zero deadline must reject everything");

    // All replies were delivered, so the gauge must have settled: every
    // enqueue was matched by a dequeue on some rejection path.
    let dump = server.metrics_dump();
    assert_eq!(
        metric(&dump, "serve_queue_depth"),
        0,
        "queue depth leaked:\n{dump}"
    );
    assert!(metric(&dump, "serve_queue_depth_peak") >= 1);
    assert!(metric(&dump, "serve_rejected_deadline_total") >= 1);
    server.shutdown();
}

#[test]
fn batch_hold_is_attributed_to_its_own_stage() {
    let ctx = test_ctx();
    let tenant = make_tenant(&ctx, 4004);
    // A Throughput session's lone rotate cannot fill a group of 64, so
    // it waits out the full 80 ms window — all of which must land in
    // `batch_hold`, not `queue`.
    let server = start_server(
        &ctx,
        1,
        BatchConfig {
            enabled: true,
            max_batch: 64,
            max_delay: Duration::from_millis(80),
        },
        obs_on(),
    );
    let mut client = Client::connect(server.local_addr(), ctx.clone()).unwrap();
    let info = client.hello_ext(BatchHint::Throughput).unwrap();
    client.upload_galois(info.session, &tenant.gk).unwrap();
    client.rotate(info.session, &tenant.a, 1).unwrap();

    let traces = server.recent_traces();
    let t = traces
        .iter()
        .filter(|t| t.op == "rotate")
        .max_by_key(|t| t.total_us)
        .expect("rotate was traced");
    let hold = t.stage_us(Stage::BatchHold);
    assert!(
        hold >= 50_000,
        "the 80 ms batching hold is missing from batch_hold ({hold} µs)"
    );
    assert!(
        t.stage_us(Stage::Queue) < hold,
        "the hold leaked into queue time ({} µs queue, {hold} µs hold)",
        t.stage_us(Stage::Queue)
    );
    assert!(t.total_us >= hold, "e2e below its own hold");
    // The hold is visible in the exported timeline too.
    assert!(server.trace_json().contains("\"name\": \"batch_hold\""));
    server.shutdown();
}

/// Deep sampling bridges the math layer's spans into the request
/// timeline — only meaningful when the spans are compiled in.
#[cfg(feature = "telemetry")]
#[test]
fn deep_sample_bridges_kernel_subspans() {
    let ctx = test_ctx();
    let tenant = make_tenant(&ctx, 5005);
    let server = start_server(
        &ctx,
        1,
        batch_off(),
        ObsConfig {
            deep_sample_every: 1,
            ..obs_on()
        },
    );
    let mut client = Client::connect(server.local_addr(), ctx.clone()).unwrap();
    let info = client.hello_ext(BatchHint::Auto).unwrap();
    client.upload_galois(info.session, &tenant.gk).unwrap();
    for _ in 0..4 {
        client.rotate(info.session, &tenant.a, 1).unwrap();
    }
    let json = client.trace_dump().unwrap();
    server.shutdown();

    // Every request was eligible; serial requests mean the single
    // global trace slot was always free, so the rotates deep-sampled
    // and captured the hoisted-rotation span stack.
    assert!(
        json.contains("kernels"),
        "no kernel companion track:\n{json}"
    );
    // The hoisted rotation decomposes into ModUp → key-switch inner
    // product → ModDown; at least one of those spans must have bridged.
    assert!(
        [
            "ModUp",
            "KSKInnerProd",
            "ModDown",
            "HoistedMatVec",
            "KeySwitch"
        ]
        .iter()
        .any(|n| json.contains(&format!("\"name\": \"{n}\""))),
        "no kernel sub-span in the deep-sampled timeline:\n{json}"
    );
    // Sub-spans sit inside the request's execution window on the
    // companion track (tid offset by the kernel-track constant).
    let ktrack = fhe_serve::obs::KERNEL_TRACK_OFFSET;
    assert!(
        json.lines()
            .filter(|l| l.contains("\"ph\": \"X\""))
            .any(|l| field_u64(l, "tid").is_some_and(|t| t >= ktrack)),
        "kernel spans not on the companion track"
    );
}
