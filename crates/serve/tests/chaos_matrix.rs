//! Deterministic chaos matrix: replay a grid of seeds × fault mixes
//! against a loopback server and assert that the retrying client always
//! converges to the fault-free answer.
//!
//! Per cell the suite asserts:
//! - every retried response is **byte-identical** to the fault-free
//!   evaluation of the same call (server ops are pure, seeded key
//!   expansion is bit-exact, so retries re-send rather than re-apply);
//! - no panic escapes the server (`catch_unwind` turns injected worker
//!   panics into structured `Internal` errors);
//! - the key cache's byte budget and counter invariants hold after the
//!   storm ([`Server::assert_cache_consistent`]);
//! - the `serve_faults_injected_total` metric agrees exactly with the
//!   plan's own injection log;
//! - wall time stays within the injected latency plus a fixed slack, so
//!   no request silently outlives its deadline.
//!
//! A failing cell writes a replay artifact (seed, mix, injection log) to
//! `target/chaos/` and names the seed in the panic, so
//! `CHAOS_SEEDS=<seed> cargo test -p fhe-serve --features chaos --test
//! chaos_matrix` reproduces it in isolation.

#![cfg(feature = "chaos")]

use ckks::hoisting::rotate_hoisted;
use ckks::serialize::{deserialize_switching_key, serialize_ciphertext, serialize_switching_key};
use ckks::{
    Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, GaloisKeys, KeyGenerator,
    RelinKey,
};
use fhe_math::cfft::Complex;
use fhe_program::program::Program;
use fhe_program::{execute, workloads, ExecInputs, ExecKeys};
use fhe_serve::{
    EvictionPolicy, FaultDecision, FaultMix, FaultPlan, RetryPolicy, RetryingClient, ServeConfig,
    Server,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// Everything keygen-derived, built once for the whole grid.
struct Setup {
    ctx: Arc<CkksContext>,
    rlk: RelinKey,
    gk: GaloisKeys,
    a: Ciphertext,
    b: Ciphertext,
    /// The program the cells upload and run (sha stress: relin + the
    /// same {1, 4} Galois steps the direct ops use).
    prog: Program,
    prog_inputs: ExecInputs,
    /// (label, expected response bytes) for each op the cells replay.
    expected: Vec<(&'static str, Vec<u8>)>,
    /// Bytes of one expanded switching key, for budget sizing.
    key_bytes: u64,
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_degree(5)
                .levels(3)
                .scale_bits(30)
                .first_modulus_bits(36)
                .dnum(2)
                .build()
                .unwrap(),
        );
        let slots = ctx.params().slots();
        let mut rng = StdRng::seed_from_u64(0x000C_4A05);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key_compressed(&mut rng, &sk);
        let gk = kg.galois_keys_compressed(&mut rng, &sk, &[1, 4], false);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let encrypt = |rng: &mut StdRng, v: &[f64]| {
            let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
            let pt = encoder
                .encode(&cv, ctx.params().levels(), ctx.params().scale())
                .unwrap();
            encryptor.encrypt_symmetric(rng, &pt, &sk)
        };
        let va: Vec<f64> = (0..slots).map(|i| (i as f64 * 0.31).sin() * 0.5).collect();
        let vb: Vec<f64> = (0..slots).map(|i| (i as f64 * 0.17).cos() * 0.5).collect();
        let a = encrypt(&mut rng, &va);
        let b = encrypt(&mut rng, &vb);

        // A whole program as one opcode: the sha stress round's manifest
        // (relin + Galois {1, 4}) matches the keys the cells upload.
        let prog = workloads::sha256_stress_program(ctx.params().levels(), 1, 4);
        let bits = |seed: usize| -> Vec<f64> {
            (0..slots)
                .map(|b| f64::from((b * 31 + seed * 17).is_multiple_of(3)))
                .collect()
        };
        let mut prog_inputs = ExecInputs::default();
        for (seed, name) in ["x", "y", "z", "w"].iter().enumerate() {
            let ct = encrypt(&mut rng, &bits(seed));
            prog_inputs.cts.insert((*name).into(), ct);
        }

        // The fault-free ground truth, straight from the library.
        let ev = Evaluator::new(ctx.clone());
        let prog_out = execute(
            &ev,
            &encoder,
            &prog,
            &prog_inputs,
            ExecKeys {
                relin: Some(rlk.switching_key()),
                galois: Some(&gk),
            },
        )
        .expect("sha stress executes fault-free");
        let expected = vec![
            ("add", serialize_ciphertext(&ev.add(&a, &b))),
            ("mult", serialize_ciphertext(&ev.mul(&a, &b, &rlk))),
            ("mult_again", serialize_ciphertext(&ev.mul(&a, &b, &rlk))),
            // The server rotates through the hoisted path; match it.
            (
                "rotate_1",
                serialize_ciphertext(&rotate_hoisted(&ev, &a, &[1], &gk)[0]),
            ),
            (
                "rotate_4",
                serialize_ciphertext(&rotate_hoisted(&ev, &a, &[4], &gk)[0]),
            ),
            ("rescale", serialize_ciphertext(&ev.rescale(&a))),
            ("run_program", serialize_ciphertext(&prog_out[0].1)),
        ];

        let wire = serialize_switching_key(rlk.switching_key());
        let key_bytes = deserialize_switching_key(&ctx, &wire).unwrap().size_bytes();
        Setup {
            ctx,
            rlk,
            gk,
            a,
            b,
            prog,
            prog_inputs,
            expected,
            key_bytes,
        }
    })
}

fn seeds() -> Vec<u64> {
    if let Ok(list) = std::env::var("CHAOS_SEEDS") {
        return list
            .split(',')
            .map(|s| s.trim().parse().expect("CHAOS_SEEDS must be u64s"))
            .collect();
    }
    // 32 committed seeds: deliberately plain so a failure report reads
    // naturally, spread enough that the xorshift streams decorrelate.
    (0..32).map(|i| 1000 + 37 * i).collect()
}

struct CellReport {
    faults: u64,
    injected_delay: Duration,
    elapsed: Duration,
}

/// Runs one (seed, mix, shards) cell and panics with the seed on any
/// divergence.
fn run_cell(seed: u64, mix_name: &str, mix: FaultMix, shards: usize) -> CellReport {
    let s = setup();
    let plan = Arc::new(FaultPlan::new(seed, mix, 6));
    let server = Server::start(
        s.ctx.clone(),
        ServeConfig {
            shards,
            workers: 2,
            queue_capacity: 8,
            key_cache_budget: 2 * s.key_bytes,
            eviction: EvictionPolicy::Lru,
            request_deadline: Duration::from_secs(5),
            fault_plan: Some(plan.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let budget = 2 * s.key_bytes;
    let addr = server.local_addr();
    let policy = RetryPolicy {
        max_attempts: 30,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        op_timeout: Some(Duration::from_secs(2)),
        jitter_seed: seed.wrapping_mul(0x9E37_79B9),
    };

    let started = Instant::now();
    let mut client = RetryingClient::connect(addr, s.ctx.clone(), policy)
        .unwrap_or_else(|e| fail(seed, mix_name, &plan, &format!("connect: {e}")));
    client
        .upload_relin(s.rlk.switching_key())
        .unwrap_or_else(|e| fail(seed, mix_name, &plan, &format!("upload_relin: {e}")));
    client
        .upload_galois(&s.gk)
        .unwrap_or_else(|e| fail(seed, mix_name, &plan, &format!("upload_galois: {e}")));
    let ph = client
        .upload_program(&s.prog)
        .unwrap_or_else(|e| fail(seed, mix_name, &plan, &format!("upload_program: {e}")));

    for (label, want) in &s.expected {
        let got = match *label {
            "add" => client.add(&s.a, &s.b),
            "mult" | "mult_again" => client.mult(&s.a, &s.b),
            "rotate_1" => client.rotate(&s.a, 1),
            "rotate_4" => client.rotate(&s.a, 4),
            "rescale" => client.rescale(&s.a),
            "run_program" => client
                .run_program(ph, &s.prog_inputs)
                .map(|mut outs| outs.pop().expect("one digest output")),
            other => unreachable!("unknown op label {other}"),
        };
        let got = got.unwrap_or_else(|e| fail(seed, mix_name, &plan, &format!("{label}: {e}")));
        let got = serialize_ciphertext(&got);
        if &got != want {
            fail::<()>(
                seed,
                mix_name,
                &plan,
                &format!(
                    "{label}: response diverged from fault-free run \
                     ({} vs {} bytes, equal={})",
                    got.len(),
                    want.len(),
                    got == *want
                ),
            );
        }
    }

    // The metric was bumped at every decide() hit, so it must agree
    // exactly with the plan's own log — a cross-check that no injection
    // site fired without being recorded (or vice versa).
    let dump = client
        .metrics()
        .unwrap_or_else(|e| fail(seed, mix_name, &plan, &format!("metrics: {e}")));
    let elapsed = started.elapsed();
    let metric_faults: u64 = dump
        .lines()
        .find_map(|l| l.strip_prefix("serve_faults_injected_total "))
        .expect("faults counter always dumped")
        .trim()
        .parse()
        .unwrap();
    let faults = plan.injected_count();
    if metric_faults != faults {
        fail::<()>(
            seed,
            mix_name,
            &plan,
            &format!("metric says {metric_faults} faults, plan logged {faults}"),
        );
    }

    // Cache invariants after the storm: byte accounting consistent and
    // the budget respected. A batch delivers its replies before it
    // retires its pins, so the last response can race the final unpin —
    // wait (bounded) for in-flight pins to drain before judging the
    // budget, since pinned overage is documented transient behavior.
    let mut stats = server.assert_cache_consistent();
    let pin_drain = Instant::now() + Duration::from_secs(5);
    while stats.pinned_keys > 0 && Instant::now() < pin_drain {
        std::thread::sleep(Duration::from_millis(2));
        stats = server.assert_cache_consistent();
    }
    // One shard: the global budget is one cache's budget, enforced
    // exactly. Sharded: each slice gets budget/shards and keeps its most
    // recent key resident even when the slice is smaller than one key
    // (keep-1 residency), so the aggregate may exceed the global budget
    // by up to one key per shard — but never more.
    let budget_bound = if shards == 1 {
        budget
    } else {
        budget + shards as u64 * s.key_bytes
    };
    if stats.resident_bytes > budget_bound {
        fail::<()>(
            seed,
            mix_name,
            &plan,
            &format!(
                "cache overran budget: {} > {budget_bound} ({} keys, {} pinned, {shards} shards)",
                stats.resident_bytes, stats.resident_keys, stats.pinned_keys
            ),
        );
    }

    // Nothing may outlive its deadline by more than the injected latency:
    // the whole cell (10 round-trips plus bounded retries on a loopback
    // socket) must finish within the injected delays plus a fixed slack.
    let injected_delay: Duration = plan
        .injected()
        .iter()
        .map(|f| match f.fault {
            FaultDecision::Delay(d) => d,
            _ => Duration::ZERO,
        })
        .sum();
    let slack = Duration::from_secs(30);
    if elapsed > injected_delay + slack {
        fail::<()>(
            seed,
            mix_name,
            &plan,
            &format!("cell took {elapsed:?} (injected delay {injected_delay:?} + slack {slack:?})"),
        );
    }

    server.shutdown();
    CellReport {
        faults,
        injected_delay,
        elapsed,
    }
}

/// Writes the replay artifact and panics naming the seed.
fn fail<T>(seed: u64, mix: &str, plan: &FaultPlan, what: &str) -> T {
    let dir = std::path::Path::new("../../target/chaos");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("seed-{seed}-{mix}.txt"));
    let mut report =
        format!("chaos cell failed\nseed: {seed}\nmix: {mix}\nfailure: {what}\n\ninjection log:\n");
    for f in plan.injected() {
        report.push_str(&format!(
            "  frame {:>3}  {:?}  {:?}\n",
            f.frame, f.op, f.fault
        ));
    }
    report.push_str(&format!(
        "\nreproduce:\n  CHAOS_SEEDS={seed} cargo test -p fhe-serve --features chaos --test chaos_matrix\n"
    ));
    let _ = std::fs::write(&path, &report);
    panic!(
        "[chaos seed {seed}, mix {mix}] {what} (artifact: {})",
        path.display()
    );
}

type MixCtor = fn() -> FaultMix;

#[test]
fn chaos_matrix_converges_on_every_seed() {
    let seeds = seeds();
    let mixes: [(&str, MixCtor); 3] = [
        ("io", FaultMix::io),
        ("latency", FaultMix::latency),
        ("havoc", FaultMix::havoc),
    ];
    let mut total_faults = 0u64;
    for shards in [1usize, 4] {
        for &seed in &seeds {
            for (mix_name, mix) in mixes {
                // Each cell runs under a watchdog: a hang (lost wakeup,
                // deadlocked retry loop) fails the suite instead of
                // wedging CI until the job timeout.
                let (tx, rx) = mpsc::channel();
                let name = format!("{mix_name}-s{shards}");
                let handle = std::thread::spawn(move || {
                    let report = run_cell(seed, &name, mix(), shards);
                    let _ = tx.send(report);
                });
                match rx.recv_timeout(Duration::from_secs(120)) {
                    Ok(report) => {
                        total_faults += report.faults;
                        assert!(
                            report.elapsed < Duration::from_secs(120),
                            "watchdog arithmetic: {:?}",
                            report.injected_delay
                        );
                        handle.join().expect("cell thread exited uncleanly");
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        // The cell panicked: join propagates the
                        // seed-naming panic message.
                        handle.join().expect("chaos cell failed");
                        unreachable!("disconnected sender without panic");
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        panic!(
                            "[chaos seed {seed}, mix {mix_name}, shards {shards}] \
                             cell hung past 120s watchdog"
                        );
                    }
                }
            }
        }
    }
    // A grid that injected nothing proves nothing.
    assert!(
        total_faults > 0,
        "no faults injected across {} cells — plan or weights broken",
        seeds.len() * mixes.len() * 2
    );
}

/// Replaying one seed twice must inject the identical fault sequence and
/// converge both times — the determinism claim, end to end, on both the
/// single-shard and the sharded server.
#[test]
fn chaos_cell_replays_bit_for_bit() {
    for shards in [1usize, 4] {
        let first = run_cell(777, "havoc-replay-a", FaultMix::havoc(), shards).faults;
        let second = run_cell(777, "havoc-replay-b", FaultMix::havoc(), shards).faults;
        assert_eq!(
            first, second,
            "same seed must inject the same fault count ({shards} shards)"
        );
    }
}
