//! Sharded-serving integration: a 4-shard server must place sequential
//! tenants on distinct shards, migrate keyed frames from a foreign
//! connection to the session's owning shard, keep every op byte-identical
//! to direct library execution, stamp the owning shard into request
//! traces, and report per-shard metrics families alongside the global
//! aggregates.

use ckks::hoisting::rotate_hoisted;
use ckks::serialize::serialize_ciphertext;
use ckks::{Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_math::cfft::Complex;
use fhe_serve::{shard_of, Client, ObsConfig, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn small_ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(3)
            .scale_bits(30)
            .first_modulus_bits(36)
            .dnum(2)
            .build()
            .unwrap(),
    )
}

fn encrypt_vec(
    ctx: &Arc<CkksContext>,
    encoder: &Encoder,
    encryptor: &Encryptor,
    sk: &ckks::SecretKey,
    rng: &mut StdRng,
    v: &[f64],
) -> Ciphertext {
    let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let pt = encoder
        .encode(&cv, ctx.params().levels(), ctx.params().scale())
        .unwrap();
    encryptor.encrypt_symmetric(rng, &pt, sk)
}

fn sharded_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        workers: 1,
        obs: ObsConfig::baseline(),
        ..ServeConfig::default()
    }
}

/// Sequentially-connecting tenants land on distinct shards (the
/// acceptor round-robins and Hello mints a self-locating id), every op
/// stays bit-identical to the library, traces carry the owning shard,
/// and the metrics dump grows per-shard labeled families.
#[test]
fn four_shards_place_tenants_disjointly_and_stay_bit_identical() {
    const SHARDS: usize = 4;
    let ctx = small_ctx();
    let slots = ctx.params().slots();
    let server = Server::start(ctx.clone(), sharded_config(SHARDS)).unwrap();
    assert_eq!(server.shard_count(), SHARDS);
    let addr = server.local_addr();

    let mut owners = Vec::new();
    for tenant in 0..SHARDS as u64 {
        let mut rng = StdRng::seed_from_u64(100 + tenant);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key_compressed(&mut rng, &sk);
        let gk = kg.galois_keys_compressed(&mut rng, &sk, &[1, 4], false);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let ev = Evaluator::new(ctx.clone());

        let mut client = Client::connect(addr, ctx.clone()).unwrap();
        let sid = client.hello().unwrap();
        owners.push(shard_of(sid, SHARDS));
        client.upload_relin(sid, rlk.switching_key()).unwrap();
        client.upload_galois(sid, &gk).unwrap();

        let v: Vec<f64> = (0..slots)
            .map(|i| (i as f64 * 0.31 + tenant as f64).cos() * 0.3)
            .collect();
        let a = encrypt_vec(&ctx, &encoder, &encryptor, &sk, &mut rng, &v);

        let remote = client.mult(sid, &a, &a).unwrap();
        assert_eq!(
            serialize_ciphertext(&remote),
            serialize_ciphertext(&ev.mul(&a, &a, &rlk)),
            "tenant {tenant}: mult diverged on a sharded server"
        );
        for steps in [1i64, 4] {
            let remote = client.rotate(sid, &a, steps).unwrap();
            let local = rotate_hoisted(&ev, &a, &[steps], &gk)
                .pop()
                .expect("one rotation");
            assert_eq!(
                serialize_ciphertext(&remote),
                serialize_ciphertext(&local),
                "tenant {tenant}: rotate {steps} diverged on a sharded server"
            );
        }
        client.close_session(sid).unwrap();
    }

    // Round-robin accept + self-locating Hello ids: four sequential
    // tenants cover all four shards.
    let mut sorted = owners.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        vec![0, 1, 2, 3],
        "tenants were not spread across shards: {owners:?}"
    );

    // Every shard's cache ledger holds, and the summed lookup counters
    // partition into hits and misses.
    let stats = server.assert_cache_consistent();
    assert!(stats.misses > 0, "keyed ops must have expanded keys");

    // Traces carry the owning shard, and (with tenants on all four
    // shards) more than one shard shows up.
    let trace_shards: std::collections::BTreeSet<u32> =
        server.recent_traces().iter().map(|t| t.shard).collect();
    assert!(
        trace_shards.iter().all(|&s| (s as usize) < SHARDS),
        "trace stamped with an out-of-range shard: {trace_shards:?}"
    );
    assert!(
        trace_shards.len() >= 2,
        "expected traces from multiple shards, saw {trace_shards:?}"
    );

    // The dump keeps its global families and appends per-shard ones.
    let mut client = Client::connect(addr, ctx.clone()).unwrap();
    let dump = client.metrics().unwrap();
    for needle in [
        "serve_requests_total",
        "serve_shards 4",
        "serve_shard_requests_total{shard=\"0\"}",
        "serve_shard_requests_total{shard=\"3\"}",
        "serve_shard_key_cache_budget_bytes{shard=\"1\"}",
        "serve_shard_sessions{shard=\"2\"}",
    ] {
        assert!(
            dump.contains(needle),
            "metrics dump missing {needle}:\n{dump}"
        );
    }
    // The wire dump and the server-side dump are the same text modulo
    // counters that moved; both carry the shard families.
    assert!(server.metrics_dump().contains("serve_shards 4"));
    server.shutdown();
}

/// A keyed frame sent on a connection accepted by the *wrong* shard
/// must migrate to the session's owner and still answer byte-identical
/// results — the consistent-hash routing fabric under test.
#[test]
fn keyed_frames_migrate_to_the_owning_shard() {
    const SHARDS: usize = 4;
    let ctx = small_ctx();
    let slots = ctx.params().slots();
    let server = Server::start(ctx.clone(), sharded_config(SHARDS)).unwrap();
    let addr = server.local_addr();

    let mut rng = StdRng::seed_from_u64(42);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let rlk = kg.relin_key_compressed(&mut rng, &sk);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let ev = Evaluator::new(ctx.clone());

    // Session minted on the first accepted connection (shard 0 by
    // round-robin); keys uploaded there.
    let mut home = Client::connect(addr, ctx.clone()).unwrap();
    let sid = home.hello().unwrap();
    let owner = shard_of(sid, SHARDS);
    home.upload_relin(sid, rlk.switching_key()).unwrap();

    let v: Vec<f64> = (0..slots).map(|i| i as f64 * 0.05).collect();
    let a = encrypt_vec(&ctx, &encoder, &encryptor, &sk, &mut rng, &v);
    let expected = serialize_ciphertext(&ev.mul(&a, &a, &rlk));

    // Three more connections land on the three *other* shards; each
    // drives the same session, so every keyed frame must migrate to the
    // owner. Multiple calls per connection prove the connection keeps
    // working after it moved.
    for foreign in 0..SHARDS - 1 {
        let mut client = Client::connect(addr, ctx.clone()).unwrap();
        for round in 0..2 {
            let remote = client.mult(sid, &a, &a).unwrap();
            assert_eq!(
                serialize_ciphertext(&remote),
                expected,
                "foreign connection {foreign} round {round}: mult diverged after migration"
            );
        }
    }

    // All of those requests executed on the owning shard.
    let dump = server.metrics_dump();
    let needle = format!("serve_shard_requests_total{{shard=\"{owner}\"}}");
    let owner_requests: u64 = dump
        .lines()
        .find_map(|l| l.strip_prefix(needle.as_str()))
        .and_then(|v| v.trim().parse().ok())
        .expect("owner shard requests metric present");
    assert!(
        owner_requests >= 8,
        "expected the owner shard to have executed the migrated requests, saw {owner_requests}"
    );

    home.close_session(sid).unwrap();
    server.shutdown();
}
