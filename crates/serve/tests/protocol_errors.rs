//! Error-path coverage for the wire protocol: every structured error code
//! a client can provoke, plus the echo shortcut and deadline rejection.

use ckks::serialize::serialize_ciphertext;
use ckks::{CkksContext, CkksParams, Encoder, Encryptor, KeyGenerator};
use fhe_math::cfft::Complex;
use fhe_serve::protocol::{read_frame, BodyWriter, FrameRead, Opcode, DEFAULT_MAX_FRAME_BYTES};
use fhe_serve::{Client, ClientError, ErrorCode, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

fn small_ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(3)
            .scale_bits(30)
            .first_modulus_bits(36)
            .dnum(2)
            .build()
            .unwrap(),
    )
}

fn expect_code(result: Result<Vec<u8>, ClientError>, want: ErrorCode) {
    match result {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, want),
        other => panic!("expected {want:?}, got {other:?}"),
    }
}

#[test]
fn structured_errors_cover_the_misuse_space() {
    let ctx = small_ctx();
    let server = Server::start(ctx.clone(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), ctx.clone()).unwrap();

    // Unknown opcode.
    expect_code(client.call_raw(0xee, &[]), ErrorCode::UnknownOpcode);

    // Unknown session.
    let mut w = BodyWriter::new();
    w.u64(424242).blob(b"x").blob(b"y");
    expect_code(
        client.call_raw(Opcode::Add as u8, &w.0),
        ErrorCode::NoSession,
    );

    let sid = client.hello().unwrap();

    // Truncated body.
    let mut w = BodyWriter::new();
    w.u64(sid);
    expect_code(
        client.call_raw(Opcode::Add as u8, &w.0),
        ErrorCode::Malformed,
    );

    // Garbage ciphertext bytes.
    let mut w = BodyWriter::new();
    w.u64(sid).blob(b"not MADf").blob(b"also not");
    expect_code(
        client.call_raw(Opcode::Add as u8, &w.0),
        ErrorCode::Malformed,
    );

    // Garbage key upload.
    let mut w = BodyWriter::new();
    w.u64(sid).raw(b"garbage key");
    expect_code(
        client.call_raw(Opcode::UploadRelin as u8, &w.0),
        ErrorCode::Malformed,
    );

    // Ops needing keys the session never uploaded.
    let mut rng = StdRng::seed_from_u64(7);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let pt = encoder
        .encode(&[Complex::new(0.5, 0.0)], 3, ctx.params().scale())
        .unwrap();
    let ct = encryptor.encrypt_symmetric(&mut rng, &pt, &sk);
    match client.mult(sid, &ct, &ct) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::MissingKey),
        other => panic!("expected MissingKey, got {other:?}"),
    }
    match client.rotate(sid, &ct, 1) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::MissingKey),
        other => panic!("expected MissingKey, got {other:?}"),
    }

    // Rotation by zero needs no key at all and echoes the input.
    let echoed = client.rotate(sid, &ct, 0).unwrap();
    assert_eq!(serialize_ciphertext(&echoed), serialize_ciphertext(&ct));

    server.shutdown();
}

#[test]
fn version_mismatch_is_answered_not_dropped() {
    let ctx = small_ctx();
    let server = Server::start(ctx, ServeConfig::default()).unwrap();
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    // Hand-rolled frame with a bad version byte.
    let body = [0u8; 0];
    let len = (2 + body.len()) as u32;
    stream.write_all(&len.to_le_bytes()).unwrap();
    stream.write_all(&[99, Opcode::Hello as u8]).unwrap();
    stream.flush().unwrap();
    match read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).unwrap() {
        FrameRead::Frame(f) => {
            assert_eq!(f.tag, ErrorCode::UnsupportedVersion as u8);
        }
        other => panic!("expected a frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn oversize_frame_is_rejected_and_connection_closed() {
    let ctx = small_ctx();
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            max_frame_bytes: 1024,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), ctx).unwrap();
    expect_code(
        client.call_raw(Opcode::Hello as u8, &vec![0u8; 4096]),
        ErrorCode::FrameTooLarge,
    );
    // The server dropped the out-of-sync connection; the next call fails.
    assert!(client.call_raw(Opcode::Hello as u8, &[]).is_err());
    server.shutdown();
}

#[test]
fn zero_deadline_rejects_every_queued_request() {
    let ctx = small_ctx();
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            request_deadline: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), ctx).unwrap();
    expect_code(
        client.call_raw(Opcode::Hello as u8, &[]),
        ErrorCode::DeadlineExceeded,
    );
    let dump = server.metrics_dump();
    assert!(
        dump.contains("serve_rejected_deadline_total 1"),
        "deadline rejection must be counted:\n{dump}"
    );
    server.shutdown();
}
