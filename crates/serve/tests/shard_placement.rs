//! Property tests for consistent-hash shard placement: every session id
//! maps to exactly one in-range shard, the map is stable under
//! re-hashing, the distribution over random ids stays within 2× of
//! uniform for every supported ring size, and growing the ring only
//! ever *moves* keys onto the new shard (Lamping–Veach monotonicity) —
//! it never reshuffles keys between surviving shards.

use fhe_serve::{shard_of, MAX_SHARDS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Placement is a total function into `0..shards`, and calling it
    /// twice gives the same answer — the property the routing fabric
    /// leans on: a connection migrated to `shard_of(sid, n)` is never
    /// bounced back.
    #[test]
    fn every_sid_lands_on_exactly_one_in_range_shard(
        sid in any::<u64>(),
        shards in 1usize..=MAX_SHARDS,
    ) {
        let first = shard_of(sid, shards);
        prop_assert!(first < shards, "shard {first} out of range for {shards}");
        prop_assert_eq!(first, shard_of(sid, shards), "re-hash must be stable");
    }

    /// One shard owns everything — the degenerate ring the default
    /// config runs.
    #[test]
    fn single_shard_owns_every_sid(sid in any::<u64>()) {
        prop_assert_eq!(shard_of(sid, 1), 0);
    }

    /// Growing the ring is monotone: a key either stays put or moves to
    /// a brand-new shard, so adding capacity never swaps tenants between
    /// existing shards.
    #[test]
    fn growing_the_ring_never_moves_keys_between_old_shards(
        sid in any::<u64>(),
        small in 1usize..MAX_SHARDS,
    ) {
        let before = shard_of(sid, small);
        let after = shard_of(sid, small + 1);
        prop_assert!(
            after == before || after == small,
            "sid {sid}: {before} -> {after} when growing {small} -> {} reshuffled an old shard",
            small + 1
        );
    }
}

/// Distribution stays within 2× of uniform over 10k ids for every ring
/// size the issue names. Deterministic ids (a seeded xorshift walk), so
/// the bound is exact and replayable rather than flaky.
#[test]
fn distribution_is_within_2x_of_uniform_over_10k_ids() {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let ids: Vec<u64> = (0..10_000).map(|_| next()).collect();
    for shards in [1usize, 2, 4, 8] {
        let mut counts = vec![0u64; shards];
        for &sid in &ids {
            counts[shard_of(sid, shards)] += 1;
        }
        let ideal = ids.len() as u64 / shards as u64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c * 2 >= ideal && c <= ideal * 2,
                "shard {i}/{shards} holds {c} of {} ids (ideal {ideal}) — worse than 2x uniform",
                ids.len()
            );
        }
    }
}
