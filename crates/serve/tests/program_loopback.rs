//! `RunProgram` loopback identity: each of the three shipped program-IR
//! workloads, uploaded once and executed through the server, must return
//! ciphertexts byte-identical to `fhe_program::execute` run locally with
//! the same inputs and keys — with the batching scheduler on and off,
//! and under both kernel backends.

use ckks::hoisting::LinearTransform;
use ckks::serialize::serialize_ciphertext;
use ckks::{Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_math::backend::BackendKind;
use fhe_math::cfft::Complex;
use fhe_program::{execute, workloads, ExecInputs, ExecKeys};
use fhe_serve::{BatchConfig, Client, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

const LEVELS: usize = 10;

fn ctx_with(backend: BackendKind) -> Arc<CkksContext> {
    CkksContext::with_backend(
        CkksParams::builder()
            .log_degree(5)
            .levels(LEVELS)
            .scale_bits(30)
            .first_modulus_bits(40)
            .special_modulus_bits(34)
            .dnum(5)
            .build()
            .unwrap(),
        Some(backend),
    )
}

fn encrypt_vec(
    ctx: &Arc<CkksContext>,
    encoder: &Encoder,
    encryptor: &Encryptor,
    sk: &ckks::SecretKey,
    rng: &mut StdRng,
    v: &[f64],
) -> Ciphertext {
    let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let pt = encoder.encode(&cv, LEVELS, ctx.params().scale()).unwrap();
    encryptor.encrypt_symmetric(rng, &pt, sk)
}

/// Uploads all three workloads over one session and checks every remote
/// output against the local executor, byte for byte.
fn run_suite(backend: BackendKind, batching: bool) {
    let ctx = ctx_with(backend);
    let slots = ctx.params().slots();

    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 2,
            batch: BatchConfig {
                enabled: batching,
                ..BatchConfig::baseline()
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(4242);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let rlk = kg.relin_key_compressed(&mut rng, &sk);
    // One Galois key set covering the union of the three manifests:
    // aggregate's power-of-two fold, dot-product's BSGS steps, sha's
    // {1, 4}.
    let gk = kg.galois_keys_compressed(&mut rng, &sk, &[1, 2, 3, 4, 8], false);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let ev = Evaluator::new(ctx.clone());
    let keys = ExecKeys {
        relin: Some(rlk.switching_key()),
        galois: Some(&gk),
    };

    let mut client = Client::connect(server.local_addr(), ctx.clone()).unwrap();
    let sid = client.hello().unwrap();
    client.upload_relin(sid, rlk.switching_key()).unwrap();
    client.upload_galois(sid, &gk).unwrap();

    let check = |label: &str,
                 prog: &fhe_program::program::Program,
                 inputs: &ExecInputs,
                 client: &mut Client| {
        let pid = client.upload_program(sid, prog).unwrap();
        let remote = client.run_program(sid, pid, prog, inputs).unwrap();
        let local = execute(&ev, &encoder, prog, inputs, keys).unwrap();
        assert_eq!(remote.len(), local.len(), "{label}: output count");
        for ((name, want), got) in local.iter().zip(&remote) {
            assert_eq!(
                serialize_ciphertext(got),
                serialize_ciphertext(want),
                "{label}/{name}: RunProgram diverged from the library executor \
                 (backend {backend:?}, batching {batching})"
            );
        }
    };

    // Aggregate: three batched vectors in [0, 1].
    let agg = workloads::aggregate_program(slots, LEVELS);
    let mut inputs = ExecInputs::default();
    for d in 0..3 {
        let v: Vec<f64> = (0..slots)
            .map(|b| ((b * 5 + d) % 9) as f64 / 10.0)
            .collect();
        let ct = encrypt_vec(&ctx, &encoder, &encryptor, &sk, &mut rng, &v);
        inputs.cts.insert(format!("v{d}"), ct);
    }
    check("aggregate", &agg, &inputs, &mut client);

    // Dot-product: 8-diagonal plaintext database against one query.
    let diagonals = 8;
    let dot = workloads::dot_product_program(slots, LEVELS, diagonals);
    let mut diags = BTreeMap::new();
    for d in 0..diagonals {
        let diag: Vec<Complex> = (0..slots)
            .map(|j| Complex::new(((j * 3 + d * 5) % 7) as f64 * 0.1 - 0.2, 0.0))
            .collect();
        diags.insert(d, diag);
    }
    let query: Vec<f64> = (0..slots)
        .map(|b| ((b * 2 + 1) % 5) as f64 * 0.15)
        .collect();
    let mut inputs = ExecInputs::default();
    let q_ct = encrypt_vec(&ctx, &encoder, &encryptor, &sk, &mut rng, &query);
    inputs.cts.insert("query".into(), q_ct);
    inputs
        .mats
        .insert("db".into(), LinearTransform::from_diagonals(diags, slots));
    check("dot_product", &dot, &inputs, &mut client);

    // SHA stress round over 0/1 slot vectors.
    let sha = workloads::sha256_stress_program(LEVELS, 1, 4);
    let bits = |seed: usize| -> Vec<f64> {
        (0..slots)
            .map(|b| f64::from((b * 31 + seed * 17).is_multiple_of(3)))
            .collect()
    };
    let mut inputs = ExecInputs::default();
    for (seed, name) in ["x", "y", "z", "w"].iter().enumerate() {
        let ct = encrypt_vec(&ctx, &encoder, &encryptor, &sk, &mut rng, &bits(seed));
        inputs.cts.insert((*name).into(), ct);
    }
    check("sha256_stress", &sha, &inputs, &mut client);

    client.close_session(sid).unwrap();
    server.shutdown();
}

#[test]
fn run_program_matches_library_scalar_batched() {
    run_suite(BackendKind::Scalar, true);
}

#[test]
fn run_program_matches_library_scalar_unbatched() {
    run_suite(BackendKind::Scalar, false);
}

#[test]
fn run_program_matches_library_unrolled_batched() {
    run_suite(BackendKind::Unrolled, true);
}

#[test]
fn run_program_matches_library_unrolled_unbatched() {
    run_suite(BackendKind::Unrolled, false);
}
