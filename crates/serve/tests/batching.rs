//! The batching scheduler's two contracts, end to end:
//!
//! 1. **Byte identity**: a mixed Rotate/BSGS/Mult workload from multiple
//!    tenants produces bit-identical replies whether the scheduler is on
//!    or off, and both match the library executed directly — batching may
//!    only change *when* work runs, never *what* it computes.
//! 2. **Fewer expansions**: with a key-cache budget of one key, the
//!    unbatched server thrashes (every op re-expands), while the batched
//!    server pins each group's key-set once — so the batched run must
//!    show strictly fewer cache misses for the same workload.
//!
//! Plus the deadline-vs-hold regression: a request held by the batching
//! window must not have that hold double-counted against its deadline.

use ckks::hoisting::{apply_bsgs, rotate_hoisted, LinearTransform};
use ckks::serialize::{deserialize_switching_key, serialize_ciphertext, serialize_switching_key};
use ckks::{
    Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, GaloisKeys, KeyGenerator,
    RelinKey, SecretKey,
};
use fhe_math::cfft::Complex;
use fhe_serve::{
    BatchConfig, BatchHint, Client, EvictionPolicy, RetryPolicy, RetryingClient, ServeConfig,
    Server,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const TENANTS: usize = 2;
const LANES: usize = 3;
const CYCLES: usize = 2;

fn test_ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(3)
            .scale_bits(30)
            .first_modulus_bits(36)
            .dnum(2)
            .build()
            .unwrap(),
    )
}

struct Tenant {
    rlk: RelinKey,
    gk: GaloisKeys,
    a: Ciphertext,
    b: Ciphertext,
}

fn make_tenant(ctx: &Arc<CkksContext>, seed: u64) -> Tenant {
    let slots = ctx.params().slots();
    let mut rng = StdRng::seed_from_u64(seed);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let rlk = kg.relin_key_compressed(&mut rng, &sk);
    // Steps 1 and 2 cover the rotate lanes and the BSGS baby/giant set.
    let gk = kg.galois_keys_compressed(&mut rng, &sk, &[1, 2], false);
    let va: Vec<f64> = (0..slots)
        .map(|i| (i as f64 * 0.29 + seed as f64).sin() * 0.4)
        .collect();
    let vb: Vec<f64> = (0..slots)
        .map(|i| (i as f64 * 0.41 + seed as f64).cos() * 0.4)
        .collect();
    let a = encrypt_vec(ctx, &sk, &mut rng, &va);
    let b = encrypt_vec(ctx, &sk, &mut rng, &vb);
    Tenant { rlk, gk, a, b }
}

fn encrypt_vec(ctx: &Arc<CkksContext>, sk: &SecretKey, rng: &mut StdRng, v: &[f64]) -> Ciphertext {
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let pt = encoder
        .encode(&cv, ctx.params().levels(), ctx.params().scale())
        .unwrap();
    encryptor.encrypt_symmetric(rng, &pt, sk)
}

/// A 4-diagonal transform whose BSGS schedule (n1 = 2) needs exactly the
/// Galois keys for steps {1, 2}.
fn make_lt(slots: usize) -> LinearTransform {
    let mut diagonals = BTreeMap::new();
    for d in 0..4usize {
        let diag: Vec<Complex> = (0..slots)
            .map(|j| Complex::new(0.1 + (d as f64) * 0.05 + (j as f64) * 0.01, 0.0))
            .collect();
        diagonals.insert(d, diag);
    }
    LinearTransform::from_diagonals(diagonals, slots)
}

/// One lane's single call in one round; returns the serialized reply.
fn run_lane_op(
    client: &mut Client,
    sid: u64,
    tenant: &Tenant,
    lt: &LinearTransform,
    round: usize,
    lane: usize,
) -> Vec<u8> {
    let ct = match round % 3 {
        // Rotations [1, 2, 1] of the same ciphertext: lanes 0 and 2
        // share a hoisted decomposition when batched.
        0 => client.rotate(sid, &tenant.a, [1i64, 2, 1][lane]).unwrap(),
        // Relin lane: three identical mults group under (sid, Relin).
        1 => client.mult(sid, &tenant.a, &tenant.b).unwrap(),
        // BSGS plus two rotations — all Galois class, one group.
        _ => {
            if lane == 0 {
                client.bsgs(sid, &tenant.a, lt, 2).unwrap()
            } else {
                client.rotate(sid, &tenant.a, 1).unwrap()
            }
        }
    };
    serialize_ciphertext(&ct)
}

/// What the library itself computes for that lane — the byte-identity
/// reference. The server rotates through the hoisted path in both modes,
/// so the reference must too.
fn reference_op(
    ctx: &Arc<CkksContext>,
    tenant: &Tenant,
    lt: &LinearTransform,
    round: usize,
    lane: usize,
) -> Vec<u8> {
    let ev = Evaluator::new(ctx.clone());
    let encoder = Encoder::new(ctx.clone());
    let ct = match round % 3 {
        0 => rotate_hoisted(&ev, &tenant.a, &[[1i64, 2, 1][lane]], &tenant.gk)
            .pop()
            .unwrap(),
        1 => ev.mul(&tenant.a, &tenant.b, &tenant.rlk),
        _ => {
            if lane == 0 {
                apply_bsgs(&ev, &encoder, &tenant.a, lt, &tenant.gk, 2)
            } else {
                rotate_hoisted(&ev, &tenant.a, &[1], &tenant.gk)
                    .pop()
                    .unwrap()
            }
        }
    };
    serialize_ciphertext(&ct)
}

fn start_server(ctx: &Arc<CkksContext>, batch: BatchConfig) -> Server {
    // Budget of exactly one expanded key: the unbatched server must
    // re-expand almost every access; the batched server pins a group's
    // key-set once (pins may transiently exceed the budget by design).
    let probe_bytes = {
        let mut rng = StdRng::seed_from_u64(999);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key_compressed(&mut rng, &sk);
        let wire = serialize_switching_key(rlk.switching_key());
        deserialize_switching_key(ctx, &wire).unwrap().size_bytes()
    };
    Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 1,
            queue_capacity: 32,
            key_cache_budget: probe_bytes,
            eviction: EvictionPolicy::Lru,
            batch,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

fn metric(dump: &str, name: &str) -> u64 {
    dump.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("metric {name} missing from dump"))
        .trim()
        .parse()
        .unwrap()
}

#[test]
fn batched_replies_are_byte_identical_and_expand_fewer_keys() {
    let ctx = test_ctx();
    let slots = ctx.params().slots();
    let lt = Arc::new(make_lt(slots));
    let tenants: Vec<Arc<Tenant>> = (0..TENANTS)
        .map(|t| Arc::new(make_tenant(&ctx, 7000 + t as u64)))
        .collect();
    let rounds = CYCLES * 3;

    // ---- Phase A: scheduler off, one thread, interleaved lanes. ----
    // `enabled: false` is explicit so the CI env matrix cannot leak in.
    let server_a = start_server(
        &ctx,
        BatchConfig {
            enabled: false,
            ..BatchConfig::baseline()
        },
    );
    let addr_a = server_a.local_addr();
    let mut replies_a: Vec<Vec<u8>> = Vec::new();
    {
        let mut clients: Vec<(Client, u64)> = tenants
            .iter()
            .map(|t| {
                let mut c = Client::connect(addr_a, ctx.clone()).unwrap();
                let info = c.hello_ext(BatchHint::Auto).unwrap();
                assert!(!info.batching, "phase A server must report batching off");
                c.upload_relin(info.session, t.rlk.switching_key()).unwrap();
                c.upload_galois(info.session, &t.gk).unwrap();
                (c, info.session)
            })
            .collect();
        for round in 0..rounds {
            for (t, tenant) in tenants.iter().enumerate() {
                let (client, sid) = &mut clients[t];
                for lane in 0..LANES {
                    replies_a.push(run_lane_op(client, *sid, tenant, &lt, round, lane));
                }
            }
        }
    }
    let misses_a = server_a.cache_stats().misses;
    server_a.shutdown();

    // ---- Phase B: scheduler on, every round fills a group of 3. ----
    let server_b = start_server(
        &ctx,
        BatchConfig {
            enabled: true,
            max_batch: LANES,
            // Large window: Throughput sessions hold until the group
            // fills, so dispatch is count-triggered and deterministic.
            max_delay: Duration::from_secs(1),
        },
    );
    let addr_b = server_b.local_addr();
    let sids: Vec<u64> = tenants
        .iter()
        .map(|t| {
            let mut c = Client::connect(addr_b, ctx.clone()).unwrap();
            let info = c.hello_ext(BatchHint::Throughput).unwrap();
            assert!(info.batching, "phase B server must report batching on");
            c.upload_relin(info.session, t.rlk.switching_key()).unwrap();
            c.upload_galois(info.session, &t.gk).unwrap();
            info.session
        })
        .collect();

    let barrier = Arc::new(Barrier::new(TENANTS * LANES));
    let mut handles = Vec::new();
    for (t, tenant) in tenants.iter().enumerate() {
        for lane in 0..LANES {
            let (ctx, lt, tenant) = (ctx.clone(), lt.clone(), tenant.clone());
            let (barrier, sid) = (barrier.clone(), sids[t]);
            handles.push(std::thread::spawn(move || {
                let mut client = Client::connect(addr_b, ctx).unwrap();
                let mut out = Vec::new();
                for round in 0..rounds {
                    barrier.wait();
                    out.push(run_lane_op(&mut client, sid, &tenant, &lt, round, lane));
                }
                (t, lane, out)
            }));
        }
    }
    // Reindex the per-thread streams into phase A's flat order.
    let mut replies_b: Vec<Option<Vec<u8>>> = vec![None; replies_a.len()];
    for h in handles {
        let (t, lane, out) = h.join().unwrap();
        for (round, bytes) in out.into_iter().enumerate() {
            replies_b[(round * TENANTS + t) * LANES + lane] = Some(bytes);
        }
    }
    let misses_b = server_b.cache_stats().misses;
    let dump = server_b.metrics_dump();
    server_b.shutdown();

    // Byte identity: batched == unbatched == the library, everywhere.
    let mut i = 0;
    for round in 0..rounds {
        for (t, tenant) in tenants.iter().enumerate() {
            for lane in 0..LANES {
                let reference = reference_op(&ctx, tenant, &lt, round, lane);
                assert_eq!(
                    replies_a[i], reference,
                    "unbatched reply diverged from library (round {round}, tenant {t}, lane {lane})"
                );
                assert_eq!(
                    replies_b[i].as_deref(),
                    Some(&reference[..]),
                    "batched reply diverged (round {round}, tenant {t}, lane {lane})"
                );
                i += 1;
            }
        }
    }

    // The perf bar: same workload, strictly fewer key expansions.
    assert!(
        misses_b < misses_a,
        "batching must reduce key expansions (unbatched {misses_a}, batched {misses_b})"
    );

    // The scheduler actually grouped and shared work.
    assert_eq!(metric(&dump, "serve_batching_enabled"), 1);
    let batches = metric(&dump, "serve_batches_total");
    let batch_jobs = metric(&dump, "serve_batch_jobs_total");
    assert!(batches > 0, "no batches formed");
    assert!(
        batch_jobs > batches,
        "groups never exceeded one job (jobs {batch_jobs}, batches {batches})"
    );
    assert!(
        metric(&dump, "serve_batch_keys_pinned_total") > 0,
        "batches never pinned keys"
    );
    assert!(
        metric(&dump, "serve_batch_expansions_avoided_total") > 0,
        "pinned keys were never reused"
    );
    // Rotate rounds put lanes 0 and 2 (and in BSGS rounds, lanes 1 and
    // 2) on the same ciphertext: their ModUp decompositions are shared.
    assert!(
        metric(&dump, "serve_batch_hoist_shared_total") >= 2,
        "no hoisted decompositions were shared"
    );
}

#[test]
fn batching_hold_is_not_charged_against_the_deadline() {
    let ctx = test_ctx();
    let tenant = make_tenant(&ctx, 4242);

    // The batching window (400 ms) dwarfs the request deadline (120 ms):
    // a held request survives only because the scheduler restarts the
    // deadline clock at dispatch. Without that, the worker would see the
    // hold as queue time and reject with DeadlineExceeded.
    let mut rng = StdRng::seed_from_u64(31);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let rlk = kg.relin_key_compressed(&mut rng, &sk);
    let wire = serialize_switching_key(rlk.switching_key());
    let probe_bytes = deserialize_switching_key(&ctx, &wire).unwrap().size_bytes();
    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 1,
            queue_capacity: 32,
            key_cache_budget: 4 * probe_bytes,
            eviction: EvictionPolicy::Lru,
            request_deadline: Duration::from_millis(120),
            batch: BatchConfig {
                enabled: true,
                max_batch: 64,
                max_delay: Duration::from_millis(400),
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let policy = RetryPolicy {
        op_timeout: Some(Duration::from_secs(5)),
        ..RetryPolicy::default()
    };
    let mut client = RetryingClient::connect_with_hint(
        server.local_addr(),
        ctx.clone(),
        policy,
        BatchHint::Throughput,
    )
    .unwrap();
    client.upload_galois(&tenant.gk).unwrap();

    let start = Instant::now();
    let rotated = client.rotate(&tenant.a, 1).unwrap();
    let held = start.elapsed();

    let ev = Evaluator::new(ctx.clone());
    assert_eq!(
        serialize_ciphertext(&rotated),
        serialize_ciphertext(&rotate_hoisted(&ev, &tenant.a, &[1], &tenant.gk)[0]),
        "held rotation diverged"
    );
    // The lone request cannot fill a group of 64, so it waited out the
    // 400 ms window — far past the 120 ms deadline — and still succeeded
    // on the first attempt.
    assert!(
        held >= Duration::from_millis(300),
        "request was not actually held (took {held:?})"
    );
    assert_eq!(
        client.stats().retries,
        0,
        "a batching hold was double-counted against the deadline"
    );
    server.shutdown();
}
