//! End-to-end loopback test: K concurrent tenants share one server whose
//! key-cache budget is deliberately smaller than the tenants' aggregate
//! expanded key bytes, so the cache must evict and regenerate from seeds
//! mid-run — and every result must still be bit-identical to the same
//! operations executed directly against the library.

use ckks::hoisting::rotate_hoisted;
use ckks::serialize::{deserialize_switching_key, serialize_ciphertext, serialize_switching_key};
use ckks::{Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_apps::{encrypted_lr_step, lr_fold_steps};
use fhe_math::cfft::Complex;
use fhe_serve::{Client, EvictionPolicy, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn helr_ctx() -> Arc<CkksContext> {
    CkksContext::new(
        CkksParams::builder()
            .log_degree(5)
            .levels(10)
            .scale_bits(30)
            .first_modulus_bits(40)
            .special_modulus_bits(34)
            .dnum(5)
            .build()
            .unwrap(),
    )
}

fn encrypt_vec(
    ctx: &Arc<CkksContext>,
    encoder: &Encoder,
    encryptor: &Encryptor,
    sk: &ckks::SecretKey,
    rng: &mut StdRng,
    v: &[f64],
) -> Ciphertext {
    let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let pt = encoder
        .encode(&cv, ctx.params().levels(), ctx.params().scale())
        .unwrap();
    encryptor.encrypt_symmetric(rng, &pt, sk)
}

#[test]
fn concurrent_tenants_bit_identical_under_tight_budget() {
    const TENANTS: u64 = 4;
    let ctx = helr_ctx();
    let slots = ctx.params().slots();

    // Measure one expanded key so the budget can be set in key units:
    // every switching key here has the same full-basis shape.
    let probe_bytes = {
        let mut rng = StdRng::seed_from_u64(999);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key_compressed(&mut rng, &sk);
        let wire = serialize_switching_key(rlk.switching_key());
        deserialize_switching_key(&ctx, &wire).unwrap().size_bytes()
    };
    // Each tenant uploads 1 relin + 4 fold keys = 5 expanded keys; 4
    // tenants need 20. Six keys of budget forces steady eviction.
    let budget = 6 * probe_bytes;

    let server = Server::start(
        ctx.clone(),
        ServeConfig {
            workers: 3,
            queue_capacity: 16,
            key_cache_budget: budget,
            eviction: EvictionPolicy::Lru,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..TENANTS)
        .map(|tenant| {
            let ctx = ctx.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + tenant);
                let kg = KeyGenerator::new(ctx.clone());
                let sk = kg.secret_key(&mut rng);
                let rlk = kg.relin_key_compressed(&mut rng, &sk);
                let gk = kg.galois_keys_compressed(&mut rng, &sk, &lr_fold_steps(slots), false);
                let encoder = Encoder::new(ctx.clone());
                let encryptor = Encryptor::new(ctx.clone());
                let ev = Evaluator::new(ctx.clone());

                let mut client = Client::connect(addr, ctx.clone()).unwrap();
                let sid = client.hello().unwrap();
                client.upload_relin(sid, rlk.switching_key()).unwrap();
                client.upload_galois(sid, &gk).unwrap();

                let xs_plain: Vec<f64> = (0..slots)
                    .map(|i| (i as f64 * 0.37 + tenant as f64).sin() * 0.4)
                    .collect();
                let ys_plain: Vec<f64> = (0..slots).map(|i| ((i % 2) as f64) * 0.5).collect();
                let a = encrypt_vec(&ctx, &encoder, &encryptor, &sk, &mut rng, &xs_plain);
                let b = encrypt_vec(&ctx, &encoder, &encryptor, &sk, &mut rng, &ys_plain);

                // Each pair: remote result must equal the local library
                // call byte for byte.
                let remote = client.add(sid, &a, &b).unwrap();
                assert_eq!(
                    serialize_ciphertext(&remote),
                    serialize_ciphertext(&ev.add(&a, &b)),
                    "tenant {tenant}: add diverged"
                );

                let remote = client.mult(sid, &a, &b).unwrap();
                assert_eq!(
                    serialize_ciphertext(&remote),
                    serialize_ciphertext(&ev.mul(&a, &b, &rlk)),
                    "tenant {tenant}: mult diverged"
                );

                for steps in [1i64, 4, 8] {
                    let remote = client.rotate(sid, &a, steps).unwrap();
                    // The server rotates through the hoisted path
                    // (decompose-then-automorph), which differs bitwise
                    // from `Evaluator::rotate`'s automorph-then-decompose
                    // — so the reference must use the same path.
                    let local = rotate_hoisted(&ev, &a, &[steps], &gk)
                        .pop()
                        .expect("one rotation");
                    assert_eq!(
                        serialize_ciphertext(&remote),
                        serialize_ciphertext(&local),
                        "tenant {tenant}: rotate {steps} diverged"
                    );
                }

                let remote = client.rescale(sid, &a).unwrap();
                assert_eq!(
                    serialize_ciphertext(&remote),
                    serialize_ciphertext(&ev.rescale(&a)),
                    "tenant {tenant}: rescale diverged"
                );

                // A whole HELR training step server-side.
                let dim = 2;
                let cols: Vec<Vec<f64>> = (0..dim)
                    .map(|d| (0..slots).map(|i| ((i + d) % 5) as f64 * 0.1).collect())
                    .collect();
                let xs: Vec<Ciphertext> = cols
                    .iter()
                    .map(|c| encrypt_vec(&ctx, &encoder, &encryptor, &sk, &mut rng, c))
                    .collect();
                let y01 = encrypt_vec(&ctx, &encoder, &encryptor, &sk, &mut rng, &ys_plain);
                let weights: Vec<Ciphertext> = (0..dim)
                    .map(|_| {
                        encrypt_vec(&ctx, &encoder, &encryptor, &sk, &mut rng, &vec![0.0; slots])
                    })
                    .collect();
                let remote = client.helr_step(sid, &weights, &xs, &y01, 1.0).unwrap();
                let mut local = weights.clone();
                encrypted_lr_step(
                    &ev,
                    rlk.switching_key(),
                    &gk,
                    &mut local,
                    &xs,
                    &y01,
                    slots,
                    1.0,
                );
                for (d, (r, l)) in remote.iter().zip(&local).enumerate() {
                    assert_eq!(
                        serialize_ciphertext(r),
                        serialize_ciphertext(l),
                        "tenant {tenant}: HELR weight {d} diverged"
                    );
                }
                client.close_session(sid).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("tenant thread panicked");
    }

    // The budget was smaller than the working set, so the cache must have
    // both hit (within a tenant's burst) and evicted (across tenants).
    let stats = server.cache_stats();
    assert!(stats.misses >= TENANTS, "each tenant expands at least once");
    assert!(
        stats.evictions > 0,
        "aggregate keys exceed the budget, evictions required: {stats:?}"
    );
    assert!(
        stats.resident_bytes <= budget,
        "cache overran its budget: {} > {budget}",
        stats.resident_bytes
    );
    // Sessions were closed, so nothing of theirs should remain resident.
    assert_eq!(stats.resident_keys, 0, "closed sessions must purge");

    // With no contention, back-to-back key use must hit the cache: the
    // second MULT reuses the relin expansion the first one paid for.
    let mut client = Client::connect(addr, ctx.clone()).unwrap();
    {
        let mut rng = StdRng::seed_from_u64(5000);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key_compressed(&mut rng, &sk);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let sid = client.hello().unwrap();
        client.upload_relin(sid, rlk.switching_key()).unwrap();
        let v: Vec<f64> = (0..slots).map(|i| i as f64 * 0.01).collect();
        let ct = encrypt_vec(&ctx, &encoder, &encryptor, &sk, &mut rng, &v);
        let before = server.cache_stats();
        client.mult(sid, &ct, &ct).unwrap();
        client.mult(sid, &ct, &ct).unwrap();
        let after = server.cache_stats();
        assert_eq!(after.misses, before.misses + 1, "first mult expands");
        assert!(after.hits > before.hits, "second mult must hit");
        client.close_session(sid).unwrap();
    }
    let dump = client.metrics().unwrap();
    for needle in [
        "serve_requests_total",
        "serve_key_cache_evictions_total",
        "serve_op_latency_us_count{op=\"helr_step\"}",
        "serve_bytes_written_total",
    ] {
        assert!(
            dump.contains(needle),
            "metrics dump missing {needle}:\n{dump}"
        );
    }
    server.shutdown();
}

#[test]
fn graceful_drain_then_connect_refused() {
    let ctx = helr_ctx();
    let server = Server::start(ctx.clone(), ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr, ctx.clone()).unwrap();
    let sid = client.hello().unwrap();
    assert!(sid > 0);
    server.shutdown();
    // The listener is gone: a fresh connection must fail.
    assert!(
        std::net::TcpStream::connect(addr).is_err(),
        "post-shutdown connect should be refused"
    );
}
